//! Cluster topology and process placement.
//!
//! The paper runs on 64 nodes with 8 cores each; each MPI process gets a
//! dedicated core and the two replicas of a logical rank are placed on
//! *different* nodes (first replica set on the first half of the nodes, second
//! set on the other half). We reproduce that placement policy here so that the
//! cost model can distinguish intra-node from inter-node traffic and so that a
//! node crash can take out the right set of processes.

use serde::{Deserialize, Serialize};

/// Identifier of a simulated cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A homogeneous cluster: `nodes` nodes with `cores_per_node` cores each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores (process slots) per node.
    pub cores_per_node: usize,
}

impl Cluster {
    /// The Grid'5000 Nancy configuration used in the paper: 64 nodes, 2×4-core
    /// Xeon L5420 per node.
    pub fn grid5000_nancy() -> Self {
        Cluster {
            nodes: 64,
            cores_per_node: 8,
        }
    }

    /// Construct an arbitrary cluster.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0 && cores_per_node > 0, "cluster must be non-empty");
        Cluster {
            nodes,
            cores_per_node,
        }
    }

    /// Total process slots.
    pub fn capacity(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// How physical processes are assigned to nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Fill nodes one after the other (process `p` on node `p / cores_per_node`).
    Packed,
    /// Round-robin over nodes (process `p` on node `p % nodes`).
    RoundRobin,
    /// The paper's replica placement: with `n` logical ranks and replication
    /// degree `r`, replica set `k` (physical processes `k*n .. (k+1)*n`) is
    /// packed onto the `k`-th slice of the nodes. Different replicas of the
    /// same rank therefore never share a node.
    ReplicaSets {
        /// Number of logical ranks `n`.
        ranks: usize,
        /// Replication degree `r`.
        degree: usize,
    },
    /// Fully explicit assignment (process index → node).
    Explicit(Vec<NodeId>),
}

impl Placement {
    /// Node hosting physical process `proc` out of `total` processes on `cluster`.
    ///
    /// Panics if the placement cannot host `total` processes.
    pub fn node_of(&self, proc: usize, total: usize, cluster: &Cluster) -> NodeId {
        assert!(
            proc < total,
            "process index {proc} out of range (total {total})"
        );
        assert!(
            total <= cluster.capacity(),
            "cluster capacity {} cannot host {} processes",
            cluster.capacity(),
            total
        );
        match self {
            Placement::Packed => NodeId(proc / cluster.cores_per_node),
            Placement::RoundRobin => NodeId(proc % cluster.nodes),
            Placement::ReplicaSets { ranks, degree } => {
                assert_eq!(
                    total,
                    ranks * degree,
                    "ReplicaSets placement expects total = ranks * degree"
                );
                let replica = proc / ranks;
                let rank = proc % ranks;
                let nodes_per_set = cluster.nodes / degree;
                assert!(
                    nodes_per_set > 0,
                    "cluster has fewer nodes ({}) than replication degree ({degree})",
                    cluster.nodes
                );
                let within = rank / cluster.cores_per_node;
                NodeId(replica * nodes_per_set + (within % nodes_per_set))
            }
            Placement::Explicit(map) => {
                assert!(map.len() >= total, "explicit placement too short");
                map[proc]
            }
        }
    }

    /// Convenience: do two processes share a node under this placement?
    pub fn same_node(&self, a: usize, b: usize, total: usize, cluster: &Cluster) -> bool {
        self.node_of(a, total, cluster) == self.node_of(b, total, cluster)
    }

    /// All processes hosted by `node` (used by node-level failure injection).
    pub fn processes_on_node(&self, node: NodeId, total: usize, cluster: &Cluster) -> Vec<usize> {
        (0..total)
            .filter(|&p| self.node_of(p, total, cluster) == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_fills_nodes_in_order() {
        let c = Cluster::new(4, 2);
        let p = Placement::Packed;
        assert_eq!(p.node_of(0, 8, &c), NodeId(0));
        assert_eq!(p.node_of(1, 8, &c), NodeId(0));
        assert_eq!(p.node_of(2, 8, &c), NodeId(1));
        assert_eq!(p.node_of(7, 8, &c), NodeId(3));
    }

    #[test]
    fn round_robin_cycles() {
        let c = Cluster::new(3, 4);
        let p = Placement::RoundRobin;
        assert_eq!(p.node_of(0, 9, &c), NodeId(0));
        assert_eq!(p.node_of(4, 9, &c), NodeId(1));
        assert_eq!(p.node_of(5, 9, &c), NodeId(2));
    }

    #[test]
    fn replica_sets_separate_replicas() {
        // 8 ranks, degree 2, on 4 nodes x 4 cores.
        let c = Cluster::new(4, 4);
        let p = Placement::ReplicaSets {
            ranks: 8,
            degree: 2,
        };
        for rank in 0..8 {
            let a = p.node_of(rank, 16, &c);
            let b = p.node_of(8 + rank, 16, &c);
            assert_ne!(a, b, "replicas of rank {rank} must be on different nodes");
        }
    }

    #[test]
    fn replica_sets_matches_paper_halving() {
        // The paper: "the first set of 256 replicas run on the first half of
        // the nodes, and the second set on the other half."
        let c = Cluster::grid5000_nancy();
        let p = Placement::ReplicaSets {
            ranks: 256,
            degree: 2,
        };
        for rank in 0..256 {
            assert!(p.node_of(rank, 512, &c).0 < 32);
            assert!(p.node_of(256 + rank, 512, &c).0 >= 32);
        }
    }

    #[test]
    fn processes_on_node_inverse_of_node_of() {
        let c = Cluster::new(4, 2);
        let p = Placement::Packed;
        let procs = p.processes_on_node(NodeId(1), 8, &c);
        assert_eq!(procs, vec![2, 3]);
        for pr in procs {
            assert_eq!(p.node_of(pr, 8, &c), NodeId(1));
        }
    }

    #[test]
    fn explicit_placement_is_honoured() {
        let c = Cluster::new(4, 2);
        let p = Placement::Explicit(vec![NodeId(3), NodeId(1), NodeId(1)]);
        assert_eq!(p.node_of(0, 3, &c), NodeId(3));
        assert!(p.same_node(1, 2, 3, &c));
        assert!(!p.same_node(0, 1, 3, &c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let c = Cluster::new(2, 2);
        Placement::Packed.node_of(4, 4, &c);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_capacity_panics() {
        let c = Cluster::new(1, 2);
        Placement::Packed.node_of(0, 3, &c);
    }

    #[test]
    fn grid5000_capacity() {
        assert_eq!(Cluster::grid5000_nancy().capacity(), 512);
    }
}
