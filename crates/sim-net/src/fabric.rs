//! The fabric: reliable FIFO transport between physical processes, with
//! virtual-time delivery.
//!
//! Each physical process owns one [`Endpoint`]. Sending charges the sender's
//! clock with the model's send overhead and stamps the message with an arrival
//! time (`sender clock + wire time`). Receivers pop physically delivered
//! messages in virtual-arrival order; the receiver's clock is synchronised to
//! a message's arrival only when the layer above actually completes a request
//! that depends on it (see the `sim-mpi` PML), never by the mere act of
//! polling the queue.
//!
//! # The single-pass delivery pipeline
//!
//! A delivery crosses exactly one buffer on its way from sender to receiver
//! (DESIGN.md §5.3). The channel-era design (PRs 1–4) paid two hops per
//! message — a push through a per-destination crossbeam channel, then a
//! re-buffering into a receiver-side `BinaryHeap` with an O(log n) sift — and
//! at 256-rank class D that double buffering ran ~5.1 million times per job.
//! The pipeline now is:
//!
//! * **Inbox, lock-striped by source.** The fabric owns one inbox per
//!   endpoint: a small array of mutex-guarded vectors, a sender's stripe
//!   chosen by its endpoint id. A flush appends a whole per-destination batch
//!   under one stripe lock — senders from different stripes never contend
//!   with each other, and the receiver only ever takes a stripe lock to swap
//!   the vector out. Each message is stamped with a per-inbox atomic ingest
//!   sequence number at push time; this reproduces the exact global FIFO
//!   tie-break the channel used to provide (equal virtual arrivals pop in
//!   physical ingest order).
//! * **Delivery ladder with a heap fallback.** The receiver sweeps its
//!   stripes into an *in-order ladder* (a `VecDeque` sorted by
//!   `(arrival, ingest seq)`): because virtual arrival stamps are
//!   near-monotonic in ingest order (see [`crate::model`] for the contract),
//!   the overwhelmingly common case is an O(1) `push_back`
//!   (`deliveries_direct` in [`NetStats`]), and popping the earliest arrival
//!   is an O(1) `pop_front`. A message whose arrival runs behind the ladder
//!   tail — reordered wire times, a late-flushing sender — goes to a small
//!   fallback `BinaryHeap` instead (`heap_fallbacks`); a pop takes the
//!   smaller of the two structure heads, so pop order is *identical* to a
//!   single heap keyed by `(arrival, seq)`, only cheaper.
//!
//! Reliability and FIFO ordering per ordered process pair follow from the
//! stripe vectors (append order per stripe) plus the ingest stamp (global
//! order across stripes). Messages to a crashed process are silently kept in
//! its fabric-owned inbox — messages a process handed to the fabric *before*
//! crashing are still delivered, the paper's "channels are reliable"
//! assumption, and recovery can take a fresh [`Endpoint`] handle for the same
//! identity that reads the same inbox.
//!
//! # Batched delivery (the outbox)
//!
//! Scheduler-managed endpoints do not ingest every message into its
//! destination inbox the moment it is sent. Sends are *staged* in a
//! per-destination outbox and ingested — one stripe-lock acquisition and
//! **one scheduler wake per destination** — when the endpoint reaches a
//! blocking boundary: before it parks in [`Endpoint::recv_blocking`], before
//! a cooperative yield in [`Endpoint::idle_poll`], before a scheduled crash
//! unwinds the process, and when the endpoint is dropped at job exit. Because
//! progress in this simulator only ever happens inside MPI calls, deferring
//! physical delivery to the sender's next blocking boundary is invisible in
//! virtual time (the arrival stamp is computed at send time) and collapses
//! the per-message buffer and wake costs that dominated ≥256-rank runs.
//!
//! The flush points are chosen so that **no wake can be lost**: an endpoint
//! always drains its outbox before it can park (and hence before the
//! scheduler's quiescence check may count it as blocked), before it yields its
//! run permit, and before its carrier exits for any reason. A staged message
//! therefore only ever exists while its sender is running — exactly the
//! condition under which the quiescence check refuses to declare a deadlock.
//! Self-sends and unmanaged endpoints (driven outside the scheduler, e.g. in
//! unit tests) bypass the outbox and ingest immediately.
//!
//! # Why direct inbox ingest loses no wake
//!
//! The store-load (Dekker) wake protocol of [`crate::sched`] is what makes
//! the mailbox safe without a channel's internal blocking: an ingest makes
//! the message visible **before** it issues the wake — `queued` is
//! incremented, then the stripe vector is appended under its lock, and only
//! then does [`Scheduler::wake`] set the destination's wake token. A receiver
//! that is about to park re-checks that token *after* publishing its `Parked`
//! phase, so in every interleaving either the receiver's pre-park sweep sees
//! `queued != 0`, or its token re-check fires and it re-polls. For unmanaged
//! endpoints the same argument runs against the timed seat: a waiter
//! registers itself in `timed_waiters` before re-reading `queued` (both
//! SeqCst), while the ingest increments `queued` before reading
//! `timed_waiters` — one side always sees the other. The full argument is
//! spelled out in DESIGN.md §5.3.

use crate::clock::VirtualClock;
use crate::failure::{CrashSignal, FailureService};
use crate::model::NetworkModel;
use crate::netfault::{FaultVerdict, NetFaultConfig, NetFaultPolicy};
use crate::sched::{Park, Scheduler};
use crate::stats::{class, NetStats};
use crate::time::SimTime;
use crate::topology::{Cluster, NodeId, Placement};
use bytes::Bytes;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier of a physical process / its fabric endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub usize);

/// Number of opaque header words carried by every message. The upper layers
/// (sim-mpi, replication protocols) encode tags, communicator ids, sequence
/// numbers, etc. into these words; the fabric never interprets them.
pub const HEADER_WORDS: usize = 8;

/// Upper bound on the number of lock stripes per endpoint inbox. A sender's
/// stripe is `src % stripes`, so concurrent senders from different stripes
/// append without contending; the actual count is `min(INBOX_STRIPES, n)`.
const INBOX_STRIPES: usize = 8;

/// A message in flight on the fabric.
#[derive(Debug, Clone)]
pub struct RawMessage {
    /// Sending physical process.
    pub src: EndpointId,
    /// Destination physical process.
    pub dst: EndpointId,
    /// Traffic class (see [`crate::stats::class`]); used for statistics and by
    /// upper layers to demultiplex protocol traffic from application traffic.
    pub class: u8,
    /// Opaque header words interpreted by the upper layers.
    pub header: [i64; HEADER_WORDS],
    /// Payload bytes.
    pub payload: Bytes,
    /// Sender virtual time at which the message was injected.
    pub injected_at: SimTime,
    /// Virtual time at which the message becomes visible to the receiver.
    pub arrival: SimTime,
    /// Marks a *policy-injected duplicate copy* (see [`crate::netfault`]).
    /// The receiver-side sweep discards marked frames before they can reach
    /// the protocol layer, counting them as `dups_suppressed`; legitimate
    /// traffic always carries `false`. Keeping the marker on the frame makes
    /// `dups_suppressed == msgs_duplicated` structurally exact rather than a
    /// content-matching heuristic.
    pub dup: bool,
}

impl RawMessage {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// One destination's staged messages in an [`Endpoint`]'s outbox.
struct OutSlot {
    dst: EndpointId,
    /// First staged message, inline: the overwhelmingly common one-message
    /// batch never touches the heap beyond the slot itself.
    first: RawMessage,
    /// Second and later messages staged before the flush.
    rest: Vec<RawMessage>,
}

/// Why a blocking receive returned without a message. Distinguishing these
/// matters: a timeout *may* be a deadlock (the legacy real-time heuristic)
/// and quiescence is the scheduler's exact deadlock verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No traffic arrived within the fabric's real-time timeout (only
    /// possible for endpoints driven outside the scheduler).
    Timeout,
    /// The incoming transport was torn down. Kept for API compatibility with
    /// the channel-era fabric; the in-process inbox of the single-pass
    /// pipeline lives as long as the fabric itself and can no longer
    /// disconnect, so this variant is never produced today.
    Disconnected,
    /// The scheduler's quiescence check fired: every unfinished process is
    /// parked and no message is in flight — the job is deadlocked.
    Quiescent,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "no traffic within the real-time timeout"),
            RecvError::Disconnected => write!(f, "incoming transport disconnected"),
            RecvError::Quiescent => write!(
                f,
                "scheduler quiescence: every unfinished process is blocked with no messages in flight"
            ),
        }
    }
}

/// Pop key of a physically delivered message: virtual arrival time, with ties
/// broken by the inbox's physical ingest order (the exact tie-break the
/// channel-era fabric provided through its FIFO push order).
type PendingKey = (SimTime, u64);

/// Out-of-order entry in the fallback heap (min-heap via `Reverse`).
struct PendingMsg(Reverse<PendingKey>, RawMessage);

impl PartialEq for PendingMsg {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for PendingMsg {}
impl PartialOrd for PendingMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// In-order entry of the delivery ladder (kept sorted by construction: a
/// message is only appended when its key is larger than the tail's).
struct LadderEntry {
    key: PendingKey,
    msg: RawMessage,
}

/// The fabric-owned mailbox of one endpoint: the single buffer a delivery
/// crosses between sender and receiver.
///
/// Senders append under a per-source-stripe lock; the receiver swaps whole
/// stripe vectors out. `queued` is an advisory over-approximation maintained
/// like the scheduler's ready-entry count — incremented *before* a push
/// inserts, decremented *after* a sweep removes — so a zero read proves every
/// stripe is empty and the hot empty-poll path never touches a lock.
struct Inbox {
    /// Lock stripes; a sender's stripe is `src % stripes.len()`. Order within
    /// a stripe is append order; order across stripes is restored by the
    /// ingest stamp.
    stripes: Vec<Mutex<Vec<(u64, RawMessage)>>>,
    /// Advisory message count (over-approximation; zero proves empty).
    queued: AtomicU64,
    /// Monotonic physical-ingest stamp, the FIFO tie-break for equal virtual
    /// arrivals. Allocated at push time so it survives endpoint incarnations
    /// (recovery takes a fresh handle over the same inbox).
    ingest_seq: AtomicU64,
    /// Number of unmanaged carriers blocked in a timed wait on this inbox.
    /// Ingest only touches the seat below when this is non-zero, so the
    /// scheduler-managed hot path never pays for the legacy wait mode.
    timed_waiters: AtomicU32,
    /// Seat for unmanaged timed waits (std primitives: the vendored
    /// parking_lot stand-in has no condvar).
    timed_seat: std::sync::Mutex<()>,
    timed_cv: std::sync::Condvar,
}

impl Inbox {
    fn new(stripes: usize) -> Self {
        Inbox {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            queued: AtomicU64::new(0),
            ingest_seq: AtomicU64::new(0),
            timed_waiters: AtomicU32::new(0),
            timed_seat: std::sync::Mutex::new(()),
            timed_cv: std::sync::Condvar::new(),
        }
    }

    fn stripe_of(&self, src: EndpointId) -> usize {
        src.0 % self.stripes.len()
    }

    /// Append `first` (+ `rest`) from one source under a single stripe-lock
    /// acquisition, stamping each message with its global ingest sequence.
    /// The count is raised before the insert (see the struct docs); the
    /// caller issues the scheduler wake *after* this returns, which is what
    /// the no-lost-wake argument in the module docs relies on.
    ///
    /// The sequence base is allocated *while holding the stripe lock*: two
    /// sources mapped to the same stripe then can never interleave their
    /// stamp allocation and their append, so every stripe vector is
    /// monotonic in seq — which is exactly what lets a single-stripe sweep
    /// skip its restore-order sort.
    fn ingest(&self, first: RawMessage, rest: Vec<RawMessage>) {
        let n = 1 + rest.len() as u64;
        self.queued.fetch_add(n, Ordering::SeqCst);
        {
            let mut stripe = self.stripes[self.stripe_of(first.src)].lock();
            let base = self.ingest_seq.fetch_add(n, Ordering::SeqCst);
            stripe.reserve(n as usize);
            stripe.push((base, first));
            for (i, msg) in rest.into_iter().enumerate() {
                stripe.push((base + 1 + i as u64, msg));
            }
        }
        if self.timed_waiters.load(Ordering::SeqCst) > 0 {
            // Serialise with the waiter's check-then-wait, then signal.
            drop(self.timed_seat.lock().unwrap_or_else(|e| e.into_inner()));
            self.timed_cv.notify_all();
        }
    }
}

/// The shared fabric connecting `n` endpoints.
pub struct Fabric {
    n: usize,
    model: Arc<dyn NetworkModel>,
    cluster: Cluster,
    node_of: Vec<NodeId>,
    /// One inbox per endpoint, owned by the fabric for the whole run so that
    /// (a) messages sent to a crashed process are not lost and (b) recovery
    /// can hand out a fresh endpoint handle for the same identity that keeps
    /// reading the same inbox.
    inboxes: Vec<Inbox>,
    taken: Mutex<Vec<bool>>,
    stats: Arc<NetStats>,
    failure: FailureService,
    sched: Scheduler,
    recv_timeout_ms: AtomicU64,
    /// The job's lossy-transport fault policy, if one was installed (see
    /// [`crate::netfault`]). Installed once before any process starts;
    /// fault-free runs pay one atomic load per delivery for the `None` check.
    net_faults: std::sync::OnceLock<NetFaultPolicy>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("endpoints", &self.n)
            .field("cluster", &self.cluster)
            .finish()
    }
}

impl Fabric {
    /// Build a fabric for `n` physical processes using `model` for costs and
    /// `placement` over `cluster` for intra/inter-node classification.
    pub fn new<M: NetworkModel>(
        n: usize,
        model: M,
        cluster: Cluster,
        placement: Placement,
    ) -> Arc<Fabric> {
        Fabric::new_shared(n, Arc::new(model), cluster, placement)
    }

    /// Like [`Fabric::new`] but with an already type-erased cost model (used
    /// by the job launcher, which stores the model as `Arc<dyn NetworkModel>`).
    pub fn new_shared(
        n: usize,
        model: Arc<dyn NetworkModel>,
        cluster: Cluster,
        placement: Placement,
    ) -> Arc<Fabric> {
        assert!(n > 0, "fabric needs at least one endpoint");
        let node_of: Vec<NodeId> = (0..n).map(|p| placement.node_of(p, n, &cluster)).collect();
        let stripes = INBOX_STRIPES.min(n);
        let inboxes = (0..n).map(|_| Inbox::new(stripes)).collect();
        // The scheduler shares the fabric's stats so its dispatch counters
        // (handoffs, steals, cold dispatches) land in the same snapshot as
        // the wake/flush counters.
        let stats = Arc::new(NetStats::new());
        let sched = Scheduler::with_stats(n, Arc::clone(&stats));
        Arc::new(Fabric {
            n,
            model,
            cluster,
            node_of,
            inboxes,
            taken: Mutex::new(vec![false; n]),
            stats,
            failure: FailureService::new(n),
            sched,
            recv_timeout_ms: AtomicU64::new(20_000),
            net_faults: std::sync::OnceLock::new(),
        })
    }

    /// Convenience constructor: `n` endpoints, one per core, packed placement.
    pub fn with_defaults<M: NetworkModel>(n: usize, model: M) -> Arc<Fabric> {
        let nodes = n.max(1);
        Fabric::new(n, model, Cluster::new(nodes, 1), Placement::Packed)
    }

    /// Number of endpoints.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The shared statistics counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The failure injection/detection service.
    pub fn failure(&self) -> &FailureService {
        &self.failure
    }

    /// The process scheduler. Endpoints registered with it park on the
    /// scheduler instead of doing timed channel waits; the job launcher in
    /// `sim-mpi` registers every process it spawns.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Install a lossy-transport fault policy for this job (see
    /// [`crate::netfault`]): every subsequent `Fabric::deliver` /
    /// `Fabric::deliver_batch` routes application and ack traffic through
    /// it. Must be installed at most once, before any process starts, so
    /// that the per-link message indices are identical across replays.
    pub fn install_net_faults(&self, config: NetFaultConfig, seed: u64) {
        let policy = NetFaultPolicy::new(config, seed, self.n);
        assert!(
            self.net_faults.set(policy).is_ok(),
            "a net-fault policy was already installed on this fabric"
        );
    }

    /// The installed lossy-transport policy, if any.
    pub fn net_fault_policy(&self) -> Option<&NetFaultPolicy> {
        self.net_faults.get()
    }

    /// Run one message through the installed policy, appending the surviving
    /// frame(s) to `out`: the message itself (arrival clamped to the link
    /// floor, pushed on a delay), plus a marked duplicate copy on a
    /// [`FaultVerdict::Duplicate`]; nothing on a drop. The duplicate is
    /// appended *after* the original so it takes a later ingest sequence —
    /// the pop order then always hands the real frame to the receiver first.
    fn route_faulted(
        &self,
        policy: &NetFaultPolicy,
        mut msg: RawMessage,
        out: &mut Vec<RawMessage>,
    ) {
        let (verdict, arrival) = policy.route(msg.src.0, msg.dst.0, msg.class, msg.arrival);
        msg.arrival = arrival;
        match verdict {
            FaultVerdict::Deliver => out.push(msg),
            FaultVerdict::Delay => {
                self.stats.record_msg_delayed();
                out.push(msg);
            }
            FaultVerdict::Drop => self.stats.record_msg_dropped(),
            FaultVerdict::Duplicate => {
                self.stats.record_msg_duplicated();
                let mut copy = msg.clone();
                copy.dup = true;
                out.push(msg);
                out.push(copy);
            }
        }
    }

    /// Ingest a single message into its destination inbox and wake the
    /// destination's scheduler slot. Every delivery — application traffic,
    /// protocol control messages and crash wake-ups — must go through here or
    /// through [`Fabric::deliver_batch`] so that no parked process can miss a
    /// message.
    ///
    /// With a fault policy installed the message may be dropped, duplicated
    /// or delayed first; the destination is *always* woken, even for a full
    /// drop — a spurious wake is a harmless re-poll, while skipping the wake
    /// would make the no-lost-wake argument depend on the fault plan.
    fn deliver(&self, msg: RawMessage) {
        let dst = msg.dst;
        if let Some(policy) = self.net_faults.get() {
            let mut routed = Vec::with_capacity(2);
            self.route_faulted(policy, msg, &mut routed);
            let mut frames = routed.into_iter();
            if let Some(first) = frames.next() {
                self.inboxes[dst.0].ingest(first, frames.collect());
            }
        } else {
            self.inboxes[dst.0].ingest(msg, Vec::new());
        }
        self.stats.record_wake(self.sched.wake(dst));
    }

    /// Ingest one endpoint's staged batch for `dst`: a single stripe-lock
    /// acquisition and a single wake, however many messages the batch
    /// carries. Like [`Fabric::deliver`], routes each message through the
    /// fault policy when one is installed, and wakes the destination even if
    /// the whole batch was dropped.
    fn deliver_batch(&self, first: RawMessage, rest: Vec<RawMessage>) {
        let dst = first.dst;
        self.stats.record_flush(1 + rest.len() as u64);
        if let Some(policy) = self.net_faults.get() {
            let mut routed = Vec::with_capacity(2 + rest.len());
            self.route_faulted(policy, first, &mut routed);
            for msg in rest {
                self.route_faulted(policy, msg, &mut routed);
            }
            let mut frames = routed.into_iter();
            if let Some(first) = frames.next() {
                self.inboxes[dst.0].ingest(first, frames.collect());
            }
        } else {
            self.inboxes[dst.0].ingest(first, rest);
        }
        self.stats.record_wake(self.sched.wake(dst));
    }

    /// Job-end reconciliation of the fault policy's duplicate accounting:
    /// any policy-injected duplicate copy still sitting unswept in a
    /// fabric-owned inbox (its receiver exited or crashed before sweeping
    /// it) is counted as suppressed here and removed, so the campaign gate
    /// `dups_suppressed == msgs_duplicated` is exact by construction. The
    /// job launcher calls this after every process has joined and before it
    /// snapshots the stats. A no-op without an installed policy.
    pub fn reconcile_net_faults(&self) {
        if self.net_faults.get().is_none() {
            return;
        }
        for inbox in &self.inboxes {
            for stripe in &inbox.stripes {
                let mut msgs = stripe.lock();
                let before = msgs.len();
                msgs.retain(|(_, m)| !m.dup);
                let removed = (before - msgs.len()) as u64;
                if removed > 0 {
                    inbox.queued.fetch_sub(removed, Ordering::SeqCst);
                    for _ in 0..removed {
                        self.stats.record_dup_suppressed();
                    }
                }
            }
        }
    }

    /// The node hosting endpoint `e`.
    pub fn node_of(&self, e: EndpointId) -> NodeId {
        self.node_of[e.0]
    }

    /// Do two endpoints share a node?
    pub fn same_node(&self, a: EndpointId, b: EndpointId) -> bool {
        self.node_of[a.0] == self.node_of[b.0]
    }

    /// The cost model in use.
    pub fn model(&self) -> &Arc<dyn NetworkModel> {
        &self.model
    }

    /// Real-time timeout used by blocking receives before declaring a
    /// simulated deadlock.
    pub fn recv_timeout(&self) -> Duration {
        Duration::from_millis(self.recv_timeout_ms.load(Ordering::Relaxed))
    }

    /// Change the deadlock-detection timeout (tests that intentionally
    /// provoke a deadlock use a short timeout).
    pub fn set_recv_timeout(&self, timeout: Duration) {
        self.recv_timeout_ms
            .store(timeout.as_millis() as u64, Ordering::Relaxed);
    }

    /// Take the endpoint for physical process `id`. Panics if taken twice
    /// (unless [`Fabric::reset_endpoint`] released it in between).
    pub fn endpoint(self: &Arc<Self>, id: EndpointId) -> Endpoint {
        assert!(id.0 < self.n, "endpoint id out of range");
        {
            let mut taken = self.taken.lock();
            assert!(!taken[id.0], "endpoint {} already taken", id.0);
            taken[id.0] = true;
        }
        Endpoint {
            id,
            managed: self.sched.is_managed(id),
            fabric: Arc::clone(self),
            clock: VirtualClock::new(),
            ladder: VecDeque::new(),
            overflow: BinaryHeap::new(),
            sweep: Vec::new(),
            outbox: Vec::new(),
            outbox_index: vec![Endpoint::NOT_STAGED; self.n],
            app_sends: 0,
            idle_polls: 0,
        }
    }

    /// Release endpoint `id` so a *new* endpoint handle can be taken for the
    /// same physical identity. Used by recovery to fork a replacement process
    /// (Section 3.4 of the paper). Messages ingested into the fabric-owned
    /// inbox while the previous incarnation was dead remain there; the
    /// recovery protocol decides by epoch which of them the new incarnation
    /// must honour. (Messages the dead incarnation had already moved into its
    /// private ladder die with it, exactly as the channel-era pending heap
    /// did.)
    pub fn reset_endpoint(self: &Arc<Self>, id: EndpointId) {
        assert!(id.0 < self.n, "endpoint id out of range");
        self.taken.lock()[id.0] = false;
    }
}

/// A physical process's handle onto the fabric. Owns the process's virtual
/// clock, its private view of the incoming inbox (the delivery ladder and its
/// fallback heap), and its per-destination outbox of staged (not yet
/// physically ingested) messages.
pub struct Endpoint {
    id: EndpointId,
    /// Was this endpoint registered with the fabric's scheduler when taken?
    /// Managed endpoints park on the scheduler instead of doing timed waits,
    /// and batch their sends through the outbox.
    managed: bool,
    fabric: Arc<Fabric>,
    clock: VirtualClock,
    /// In-order deliveries, sorted by `(arrival, ingest seq)` by
    /// construction: the near-monotonic common case appends and pops in O(1).
    ladder: VecDeque<LadderEntry>,
    /// Out-of-order deliveries (arrival behind the ladder tail). Pops take
    /// the smaller of this heap's top and the ladder's front, so overall pop
    /// order equals a single `(arrival, seq)` heap.
    overflow: BinaryHeap<PendingMsg>,
    /// Scratch vector the stripe sweep swaps stripe contents into; reused
    /// across sweeps so the steady state allocates nothing.
    sweep: Vec<(u64, RawMessage)>,
    /// Per-destination staging area, in first-use order. Each entry is
    /// ingested as one stripe append (one wake) by [`Endpoint::flush`]. Only
    /// managed endpoints stage; order within an entry preserves the FIFO send
    /// order for that (src, dst) pair. The first message per destination is
    /// held inline so the dominant single-message flush allocates nothing.
    outbox: Vec<OutSlot>,
    /// `dst -> position in outbox` (or [`Endpoint::NOT_STAGED`]), so staging
    /// stays O(1) even for full fan-out patterns (a scatter root staging to
    /// every other endpoint before its wait).
    outbox_index: Vec<u32>,
    app_sends: u64,
    /// Consecutive empty progress polls; drives the cooperative yield.
    idle_polls: u32,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("now", &self.clock.now())
            .field("app_sends", &self.app_sends)
            .field("staged", &self.outbox.len())
            .finish()
    }
}

impl Endpoint {
    /// This endpoint's identifier.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The fabric this endpoint belongs to.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Current virtual time of this process.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Immutable access to the clock (for accounting reports).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Mutable access to the clock (the MPI layer charges overheads itself for
    /// operations the fabric does not see, e.g. matching or copies from the
    /// unexpected queue).
    pub fn clock_mut(&mut self) -> &mut VirtualClock {
        &mut self.clock
    }

    /// Advance the clock by `d` of application computation.
    ///
    /// For scheduler-managed endpoints this is also a scheduling boundary
    /// ([`crate::sched::Scheduler::advance`]): if the computation moved this
    /// process's clock past a ready peer, the permit is handed to that peer
    /// so physical dispatch order keeps tracking virtual time. The outbox is
    /// flushed first — anything staged before the computation must be visible
    /// to a peer that runs while we wait our turn.
    pub fn compute(&mut self, d: SimTime) {
        self.maybe_crash(false);
        self.clock.compute(d);
        self.maybe_crash(false);
        if self.managed && d > SimTime::ZERO {
            self.flush();
            // `advance` keeps this slot dispatchable (ready, not parked), so
            // it cannot contribute to a quiescence verdict; see its docs.
            let _ = self.fabric.sched.advance(self.id, self.clock.now());
        }
    }

    /// Synchronise the clock to a virtual deadline the process has
    /// conceptually waited out — e.g. a protocol retransmission timeout —
    /// and treat the jump as a scheduling boundary, exactly like
    /// [`Endpoint::compute`].
    ///
    /// This matters for self-addressed virtual timers: the timer message is
    /// queued immediately, so *popping* it is instantaneous in real time
    /// even though its arrival is far ahead in virtual time. A process that
    /// judged the timeout without crossing this boundary would keep its run
    /// permit while racing arbitrarily far ahead of ready peers — the very
    /// peers whose traffic would cancel the timer (see
    /// [`crate::sched::Scheduler::advance`] on wake-chain starvation).
    /// Syncing the clock and yielding to any earlier-in-virtual-time ready
    /// process keeps dispatch order tracking virtual time. Earlier clocks
    /// are left untouched (`sync_to` is monotone).
    pub fn wait_until(&mut self, deadline: SimTime) {
        self.maybe_crash(false);
        if self.clock.now() >= deadline {
            return;
        }
        self.clock.sync_to(deadline);
        if self.managed {
            self.flush();
            // `wait_boundary` consumes the stale wake token the timer's own
            // delivery left behind (a plain `advance` would treat it as
            // fresh work and never hand off); it keeps this slot
            // dispatchable, so it cannot contribute to a quiescence verdict.
            let _ = self.fabric.sched.wait_boundary(self.id, self.clock.now());
        }
    }

    /// Number of application-class messages sent so far.
    pub fn app_sends(&self) -> u64 {
        self.app_sends
    }

    /// Check this process's crash schedule and, if it fires, record the
    /// failure and unwind with a [`CrashSignal`] panic. `pre_send` selects the
    /// before/after-send semantics of the schedule.
    ///
    /// Before unwinding, the outbox is flushed — the paper assumes channels
    /// are reliable, so everything the process handed to the fabric before
    /// crashing must still be delivered — and a system-class wake-up message
    /// is pushed to every other endpoint so that processes blocked on their
    /// incoming queue poll the failure detector promptly (the paper's "the
    /// underlying system notifies every process").
    pub fn maybe_crash(&mut self, pre_send: bool) {
        if self
            .fabric
            .failure()
            .should_crash(self.id, self.clock.now(), self.app_sends, pre_send)
        {
            self.flush();
            let ev = self
                .fabric
                .failure()
                .record_failure(self.id, self.clock.now());
            for i in 0..self.fabric.n {
                if i == self.id.0 {
                    continue;
                }
                let wakeup = RawMessage {
                    src: self.id,
                    dst: EndpointId(i),
                    class: class::SYSTEM,
                    header: [0; HEADER_WORDS],
                    payload: Bytes::new(),
                    injected_at: ev.at,
                    arrival: ev.at,
                    dup: false,
                };
                self.fabric.deliver(wakeup);
            }
            std::panic::panic_any(CrashSignal {
                endpoint: self.id,
                at: ev.at,
            });
        }
    }

    /// Inject a message. Charges the sender's clock with the model's send
    /// overhead, stamps the arrival time and hands the message to the
    /// destination inbox. Application-class sends also drive the crash
    /// schedule (`BeforeSend`/`AfterSend`).
    ///
    /// For scheduler-managed endpoints the message is *staged* in the
    /// per-destination outbox and physically ingested at the next blocking
    /// boundary (see the module docs); its virtual injection/arrival stamps
    /// are fixed here regardless.
    pub fn send(&mut self, dst: EndpointId, cls: u8, header: [i64; HEADER_WORDS], payload: Bytes) {
        self.send_with_floor(dst, cls, header, payload, SimTime::ZERO);
    }

    /// Like [`Endpoint::send`], but the message is stamped as if injected no
    /// earlier than `not_before`. Protocol layers use this to emit reactions
    /// to a message (e.g. an acknowledgement) that must not appear to precede
    /// that message's own arrival, even when the local clock has not yet been
    /// synchronised to it (progress only happens inside MPI calls, so a
    /// process may handle a physically-arrived message while its own virtual
    /// clock is still behind the message's arrival time).
    pub fn send_with_floor(
        &mut self,
        dst: EndpointId,
        cls: u8,
        header: [i64; HEADER_WORDS],
        payload: Bytes,
        not_before: SimTime,
    ) {
        let is_app = cls == class::APP;
        if is_app {
            self.maybe_crash(true);
        }
        let intra = self.fabric.same_node(self.id, dst);
        let send_overhead = self.fabric.model.send_overhead(payload.len(), intra);
        let wire_time = self.fabric.model.wire_time(payload.len(), intra);
        self.clock.charge_comm(send_overhead);
        let injected_at = self.clock.now().max(not_before);
        let arrival = injected_at + wire_time;
        let msg = RawMessage {
            src: self.id,
            dst,
            class: cls,
            header,
            payload,
            injected_at,
            arrival,
            dup: false,
        };
        self.fabric.stats.record_send(cls, msg.len());
        if self.managed && dst != self.id {
            self.stage(msg);
        } else {
            // Unmanaged endpoints (no scheduler, often no further fabric
            // calls) and self-sends (which must be visible to this process's
            // own next poll) ingest immediately.
            self.fabric.deliver(msg);
        }
        if is_app {
            self.app_sends += 1;
            self.maybe_crash(false);
        }
    }

    /// Send to self without going over the wire (used by collectives that
    /// include the root in their own destination set). Costs only the
    /// intra-node overheads.
    pub fn send_to_self(&mut self, cls: u8, header: [i64; HEADER_WORDS], payload: Bytes) {
        self.send(self.id, cls, header, payload);
    }

    const NOT_STAGED: u32 = u32::MAX;

    fn stage(&mut self, msg: RawMessage) {
        let dst = msg.dst;
        let idx = self.outbox_index[dst.0];
        if idx != Self::NOT_STAGED {
            self.outbox[idx as usize].rest.push(msg);
        } else {
            self.outbox_index[dst.0] = self.outbox.len() as u32;
            self.outbox.push(OutSlot {
                dst,
                first: msg,
                rest: Vec::new(),
            });
        }
    }

    /// Ingest every staged batch into its destination inbox: one stripe-lock
    /// acquisition and one wake per destination, regardless of how many
    /// messages were staged.
    ///
    /// Called automatically at every blocking boundary (before parking in
    /// [`Endpoint::recv_blocking`], before yielding in
    /// [`Endpoint::idle_poll`], before a crash unwinds, and on drop); upper
    /// layers may also call it explicitly for promptness. A no-op when
    /// nothing is staged.
    pub fn flush(&mut self) {
        if self.outbox.is_empty() {
            return;
        }
        // Move the outbox out so its entries can be consumed while borrowing
        // `self.fabric`; the (empty) vector moves back to keep its capacity.
        let mut outbox = std::mem::take(&mut self.outbox);
        for slot in outbox.drain(..) {
            self.outbox_index[slot.dst.0] = Self::NOT_STAGED;
            self.fabric.deliver_batch(slot.first, slot.rest);
        }
        self.outbox = outbox;
    }

    /// Number of messages currently staged in the outbox (diagnostics).
    pub fn staged_len(&self) -> usize {
        self.outbox.iter().map(|s| 1 + s.rest.len()).sum()
    }

    /// Place one swept message into the ladder (in-order fast path) or the
    /// fallback heap (arrival behind the ladder tail).
    ///
    /// Policy-injected duplicate copies are discarded right here, before
    /// they can enter the ladder: the protocol layer above therefore never
    /// observes a transport-level duplicate, and `has_pending` / pop order
    /// are computed over real frames only. Each discard counts toward
    /// `dups_suppressed` (the campaign gate pairs it with `msgs_duplicated`).
    fn enqueue_pending(&mut self, seq: u64, msg: RawMessage) {
        if msg.dup {
            self.fabric.stats.record_dup_suppressed();
            return;
        }
        self.fabric.stats.record_delivery(msg.class);
        let key = (msg.arrival, seq);
        match self.ladder.back() {
            Some(tail) if key < tail.key => {
                self.fabric.stats.record_heap_fallback();
                self.overflow.push(PendingMsg(Reverse(key), msg));
            }
            _ => {
                self.fabric.stats.record_direct_delivery();
                self.ladder.push_back(LadderEntry { key, msg });
            }
        }
    }

    /// Sweep the fabric-owned inbox into the ladder/heap: every message that
    /// has physically arrived is ingested in one pass, so a wakeup processes
    /// all available traffic rather than one message. Returns whether
    /// anything was swept. The empty case — every poll of an idle endpoint —
    /// is answered from the inbox's advisory count without touching a lock.
    ///
    /// The sweep restores *global ingest order* before feeding the ladder:
    /// stripes are visited in index order, so a multi-stripe batch is sorted
    /// by its ingest stamps (cheap — batches are small, and each stripe is
    /// already nearly sorted). Ingest-order processing means a heap fallback
    /// occurs only on a true arrival inversion, not as an artifact of stripe
    /// layout, exactly matching the channel-era enqueue order.
    fn sweep_inbox(&mut self) -> bool {
        if self.fabric.inboxes[self.id.0].queued.load(Ordering::SeqCst) == 0 {
            return false;
        }
        let stripes = self.fabric.inboxes[self.id.0].stripes.len();
        let mut sweep = std::mem::take(&mut self.sweep);
        let mut sorted_so_far = true;
        for si in 0..stripes {
            let inbox = &self.fabric.inboxes[self.id.0];
            let before = sweep.len();
            {
                let mut stripe = inbox.stripes[si].lock();
                if stripe.is_empty() {
                    continue;
                }
                sorted_so_far = sorted_so_far && before == 0;
                sweep.append(&mut stripe);
            }
            // Decrement *after* the removal so the advisory count never
            // under-reports (see the Inbox docs).
            inbox
                .queued
                .fetch_sub((sweep.len() - before) as u64, Ordering::SeqCst);
        }
        if sweep.is_empty() {
            self.sweep = sweep;
            return false;
        }
        if !sorted_so_far {
            sweep.sort_unstable_by_key(|&(seq, _)| seq);
        }
        for (seq, msg) in sweep.drain(..) {
            self.enqueue_pending(seq, msg);
        }
        self.sweep = sweep;
        true
    }

    /// Pop the pending message with the smallest `(arrival, ingest seq)` key,
    /// whichever structure holds it.
    fn pop_pending(&mut self) -> Option<RawMessage> {
        let from_heap = match (self.ladder.front(), self.overflow.peek()) {
            (Some(front), Some(top)) => top.0 .0 < front.key,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        if from_heap {
            self.overflow.pop().map(|p| p.1)
        } else {
            self.ladder.pop_front().map(|e| e.msg)
        }
    }

    /// Non-blocking receive: returns the earliest-arriving (in virtual time)
    /// message that has been physically delivered, charging the receive
    /// overhead, or `None` if nothing is queued.
    ///
    /// Note: the receiver's clock is *not* advanced to the message's arrival
    /// time here. A message may be handled by the progress engine while the
    /// receiver's clock is still behind its arrival (the receiver was simply
    /// polled early in real time); the clock is only synchronised to the
    /// arrival when a caller actually *waits* on the corresponding request
    /// (see the `sim-mpi` PML), which keeps timing causal without letting
    /// unrelated future messages inflate the clock.
    pub fn try_recv(&mut self) -> Option<RawMessage> {
        self.poll_ready();
        self.next_ready()
    }

    /// The sweep half of [`Endpoint::try_recv`]: run the crash check once and
    /// ingest everything that has physically arrived. Batch consumers (the
    /// PML's progress drain) call this once and then pop with
    /// [`Endpoint::next_ready`] until empty, instead of paying a crash check
    /// and an inbox probe per message.
    pub fn poll_ready(&mut self) {
        self.maybe_crash(false);
        self.sweep_inbox();
    }

    /// The pop half of [`Endpoint::try_recv`]: return the earliest-arriving
    /// already-swept message (charging the receive overhead) without probing
    /// the inbox again. `None` when the ladder and fallback heap are empty —
    /// call [`Endpoint::poll_ready`] to sweep first.
    pub fn next_ready(&mut self) -> Option<RawMessage> {
        match self.pop_pending() {
            Some(msg) => {
                self.charge_recv_overhead(&msg);
                Some(msg)
            }
            None => None,
        }
    }

    // Application payload receive overhead is charged by the MPI layer when
    // the receive request actually completes for the application (after the
    // clock has been synchronised to the arrival); protocol-level messages
    // (acks, control, hashes) are charged here, when they are processed.
    fn charge_recv_overhead(&mut self, msg: &RawMessage) {
        if msg.class == class::APP {
            return;
        }
        let intra = self.fabric.same_node(msg.src, self.id);
        let cost = self.fabric.model.recv_overhead(msg.len(), intra);
        self.clock.charge_comm(cost);
    }

    /// Is there any message queued (whether or not it has virtually arrived)?
    pub fn has_pending(&mut self) -> bool {
        self.sweep_inbox();
        !self.ladder.is_empty() || !self.overflow.is_empty()
    }

    /// Blocking receive: waits until at least one message is queued, then
    /// returns the one with the earliest virtual arrival.
    ///
    /// Scheduler-managed endpoints *park* instead of blocking the OS thread on
    /// the inbox: the outbox is flushed (a process must never sleep on
    /// staged messages — see the module docs), the carrier releases its run
    /// permit, and it is woken on the next delivery. A
    /// [`RecvError::Quiescent`] verdict means the scheduler proved the job
    /// deadlocked. Unmanaged endpoints (driven manually, outside a job
    /// launcher) keep the legacy real-time timeout, waiting on the inbox's
    /// timed seat and returning early when a new failure is recorded so
    /// teardown of a crashed peer does not burn the full timeout.
    ///
    /// As with [`Endpoint::try_recv`], the clock is not advanced to the
    /// message's arrival; waiting layers synchronise the clock when the
    /// request they are blocked on completes.
    pub fn recv_blocking(&mut self) -> Result<RawMessage, RecvError> {
        self.recv_blocking_hinted(false)
    }

    /// [`Endpoint::recv_blocking`] with a *racy-wait hint* from the layer
    /// above. `racy = true` says the caller expects the traffic it waits for
    /// to already be in flight (e.g. the SDR ack-collection wait that follows
    /// a data exchange): the first pass then *yields* instead of parking —
    /// the process goes Ready (still runnable as far as quiescence is
    /// concerned), rejoins the run queue, and any message delivered meanwhile
    /// coalesces into its lock-free wake token instead of paying the unpark
    /// slow path. For true waits (`racy = false`, e.g. data receives in
    /// compute-dense kernels) the extra yield dispatch cycle is pure latency,
    /// so the process parks directly.
    pub fn recv_blocking_hinted(&mut self, racy: bool) -> Result<RawMessage, RecvError> {
        self.maybe_crash(false);
        let mut tried_yield = !racy;
        loop {
            self.sweep_inbox();
            if let Some(msg) = self.pop_pending() {
                self.charge_recv_overhead(&msg);
                self.maybe_crash(false);
                return Ok(msg);
            }
            if self.managed {
                // Blocking boundary: everything staged must be out before we
                // block, or a peer (and the quiescence check) could wait on a
                // message that only exists in our outbox.
                self.flush();
                let verdict = if tried_yield {
                    self.fabric.sched.park(self.id, self.clock.now())
                } else {
                    tried_yield = true;
                    self.fabric.sched.yield_now(self.id, self.clock.now())
                };
                match verdict {
                    Park::Woken => {
                        self.maybe_crash(false);
                        continue;
                    }
                    Park::Deadlock => return Err(RecvError::Quiescent),
                }
            } else {
                self.recv_timed()?;
            }
        }
    }

    /// Legacy timed wait for unmanaged endpoints, on the inbox's timed seat.
    /// Waits in short slices so a freshly recorded failure surfaces
    /// immediately (the caller polls the failure detector on
    /// [`RecvError::Timeout`]) instead of after the full timeout.
    ///
    /// The check-then-wait race against a concurrent ingest is closed by a
    /// store-load protocol (mirroring the scheduler's wake tokens): the
    /// waiter registers itself in `timed_waiters`, then re-reads the inbox
    /// count under the seat lock; the ingest raises the count, then reads
    /// `timed_waiters` and signals through the same seat. One side always
    /// sees the other, so no delivery can slip between the check and the
    /// wait.
    fn recv_timed(&mut self) -> Result<(), RecvError> {
        let timeout = self.fabric.recv_timeout();
        let slice = Duration::from_millis(50).min(timeout);
        let deadline = Instant::now() + timeout;
        let failures_at_start = self.fabric.failure.failed_count();
        loop {
            // The sweep always precedes the error checks: a message ingested
            // right before the deadline (or a failure) must surface as a
            // delivery, not a timeout — matching the channel-era semantics,
            // where a message arriving within the final slice was returned.
            if self.sweep_inbox() {
                return Ok(());
            }
            if self.fabric.failure.failed_count() > failures_at_start || Instant::now() >= deadline
            {
                return Err(RecvError::Timeout);
            }
            let inbox = &self.fabric.inboxes[self.id.0];
            inbox.timed_waiters.fetch_add(1, Ordering::SeqCst);
            {
                let seat = inbox.timed_seat.lock().unwrap_or_else(|e| e.into_inner());
                if inbox.queued.load(Ordering::SeqCst) == 0 {
                    let _ = inbox
                        .timed_cv
                        .wait_timeout(seat, slice)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            inbox.timed_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Hint from the progress engine that a poll produced nothing. After
    /// enough consecutive empty polls a managed endpoint flushes its outbox
    /// and cooperatively yields its run permit, so busy-poll loops
    /// (`MPI_Test` spinning) can never monopolise the scheduler's worker pool
    /// — or sit on staged messages a peer is waiting for.
    ///
    /// Returns `Err(RecvError::Quiescent)` when the scheduler's no-progress
    /// guard parked this process during the yield and the quiescence check
    /// then proved the whole job deadlocked (see
    /// [`crate::sched::YIELD_STREAK_PARK`]).
    pub fn idle_poll(&mut self) -> Result<(), RecvError> {
        if !self.managed {
            return Ok(());
        }
        self.idle_polls += 1;
        if self.idle_polls >= 64 {
            self.idle_polls = 0;
            self.flush();
            if self.fabric.sched.yield_now(self.id, self.clock.now()) == Park::Deadlock {
                return Err(RecvError::Quiescent);
            }
        }
        Ok(())
    }

    /// Hint from the progress engine that a poll made progress; resets the
    /// idle counter that drives [`Endpoint::idle_poll`]'s cooperative yield.
    pub fn busy_poll(&mut self) {
        self.idle_polls = 0;
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Job-exit flush: a process's staged messages must survive it (the
        // paper's reliable channels), and the drop runs before the carrier
        // marks the slot finished, so the quiescence check never races it.
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::CrashSchedule;
    use crate::model::LogGpModel;

    fn two_endpoint_fabric() -> (Endpoint, Endpoint, Arc<Fabric>) {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        let a = fabric.endpoint(EndpointId(0));
        let b = fabric.endpoint(EndpointId(1));
        (a, b, fabric)
    }

    fn hdr(x: i64) -> [i64; HEADER_WORDS] {
        let mut h = [0; HEADER_WORDS];
        h[0] = x;
        h
    }

    #[test]
    fn send_charges_sender_and_stamps_arrival() {
        let (mut a, mut b, fabric) = two_endpoint_fabric();
        let before = a.now();
        a.send(
            EndpointId(1),
            class::APP,
            hdr(7),
            Bytes::from_static(b"hello"),
        );
        assert!(a.now() > before, "send overhead must be charged");
        let msg = b.recv_blocking().expect("message delivered");
        assert_eq!(msg.header[0], 7);
        assert_eq!(&msg.payload[..], b"hello");
        assert!(msg.arrival > msg.injected_at);
        // Application payloads are charged by the MPI layer at delivery time,
        // so the raw endpoint clock is untouched here.
        assert_eq!(b.now(), SimTime::ZERO);
        assert_eq!(fabric.stats().snapshot().app_msgs(), 1);
    }

    #[test]
    fn try_recv_returns_arrival_stamp_without_jumping_clock() {
        let (mut a, mut b, _f) = two_endpoint_fabric();
        a.send(EndpointId(1), class::APP, hdr(1), Bytes::from_static(b"x"));
        let msg = b
            .try_recv()
            .expect("physically delivered message is returned");
        assert_eq!(msg.header[0], 1);
        // The arrival stamp carries the virtual delivery time; the receiver's
        // clock is only charged the receive overhead, not jumped to the
        // arrival (waiting layers synchronise when a request completes).
        assert!(msg.arrival > SimTime::ZERO);
        assert!(b.now() < msg.arrival);
    }

    #[test]
    fn send_with_floor_delays_injection_stamp() {
        let (mut a, mut b, _f) = two_endpoint_fabric();
        let floor = SimTime::from_millis(3);
        a.send_with_floor(EndpointId(1), class::ACK, hdr(9), Bytes::new(), floor);
        let msg = b.recv_blocking().expect("delivered");
        assert!(
            msg.injected_at >= floor,
            "injection stamped no earlier than the floor"
        );
        assert!(msg.arrival > floor);
        // The sender's own clock is not forced forward by the floor.
        assert!(a.now() < floor);
    }

    #[test]
    fn fifo_order_per_sender_in_virtual_time() {
        let (mut a, mut b, _f) = two_endpoint_fabric();
        for i in 0..10 {
            a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(b.recv_blocking().unwrap().header[0]);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn earliest_arrival_delivered_first_across_senders() {
        let fabric = Fabric::with_defaults(3, LogGpModel::fast_test_model());
        let mut a = fabric.endpoint(EndpointId(0));
        let mut c = fabric.endpoint(EndpointId(2));
        let mut b = fabric.endpoint(EndpointId(1));
        // c is "late": advance its clock before sending so its message has a
        // later virtual arrival even though it is ingested first.
        c.compute(SimTime::from_millis(10));
        c.send(EndpointId(1), class::APP, hdr(2), Bytes::new());
        a.send(EndpointId(1), class::APP, hdr(1), Bytes::new());
        let first = b.recv_blocking().unwrap();
        let second = b.recv_blocking().unwrap();
        assert_eq!(first.header[0], 1, "earlier virtual arrival first");
        assert_eq!(second.header[0], 2);
    }

    #[test]
    fn out_of_order_ingest_falls_back_to_heap_but_pops_in_arrival_order() {
        // The sweep visits stripes in source order, so a late-clock sender in
        // an *early* stripe puts its big-arrival message at the ladder tail
        // before the small-arrival message from a later stripe is seen: that
        // one must take the heap fallback — and still pop first.
        let fabric = Fabric::with_defaults(3, LogGpModel::fast_test_model());
        let mut a = fabric.endpoint(EndpointId(0));
        let mut c = fabric.endpoint(EndpointId(2));
        let mut b = fabric.endpoint(EndpointId(1));
        a.compute(SimTime::from_millis(10));
        a.send(EndpointId(1), class::APP, hdr(2), Bytes::new());
        c.send(EndpointId(1), class::APP, hdr(1), Bytes::new());
        // One sweep ingests both.
        assert!(b.has_pending());
        let snap = fabric.stats().snapshot();
        assert_eq!(snap.deliveries_direct(), 1);
        assert_eq!(snap.heap_fallbacks(), 1, "reordered arrival takes the heap");
        let first = b.recv_blocking().unwrap();
        let second = b.recv_blocking().unwrap();
        assert_eq!(first.header[0], 1, "pop order is virtual-arrival order");
        assert_eq!(second.header[0], 2);
    }

    #[test]
    fn monotonic_arrivals_never_touch_the_fallback_heap() {
        let (mut a, mut b, fabric) = two_endpoint_fabric();
        for i in 0..20 {
            a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
        }
        for _ in 0..20 {
            b.recv_blocking().unwrap();
        }
        let snap = fabric.stats().snapshot();
        assert_eq!(
            snap.deliveries_direct(),
            20,
            "monotonic arrivals are all O(1) ladder appends"
        );
        assert_eq!(snap.heap_fallbacks(), 0);
        assert!((snap.direct_delivery_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn equal_arrivals_pop_in_ingest_order() {
        // Two senders with identical clocks and message sizes produce equal
        // arrival stamps; the ingest-seq tie-break must pop them in physical
        // ingest order, reproducing the channel-era FIFO semantics.
        let fabric = Fabric::with_defaults(3, LogGpModel::fast_test_model());
        let mut a = fabric.endpoint(EndpointId(0));
        let mut c = fabric.endpoint(EndpointId(2));
        let mut b = fabric.endpoint(EndpointId(1));
        c.send(EndpointId(1), class::APP, hdr(20), Bytes::new());
        a.send(EndpointId(1), class::APP, hdr(10), Bytes::new());
        let first = b.recv_blocking().unwrap();
        let second = b.recv_blocking().unwrap();
        assert_eq!(first.arrival, second.arrival, "test needs an arrival tie");
        assert_eq!(first.header[0], 20, "ingest order breaks the tie");
        assert_eq!(second.header[0], 10);
    }

    #[test]
    fn larger_messages_arrive_later() {
        let (mut a, _b, _f) = two_endpoint_fabric();
        let mut arrivals = Vec::new();
        for size in [1usize, 1024, 1 << 20] {
            let payload = Bytes::from(vec![0u8; size]);
            let before = a.now();
            a.send(EndpointId(1), class::APP, hdr(0), payload);
            arrivals.push(a.now() - before);
        }
        // send overhead is flat until the rendezvous threshold, but the wire
        // time (and hence arrival) grows; verify via a second fabric where we
        // inspect the arrival stamps directly.
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        let mut s = fabric.endpoint(EndpointId(0));
        let mut r = fabric.endpoint(EndpointId(1));
        s.send(EndpointId(1), class::APP, hdr(0), Bytes::from(vec![0u8; 1]));
        s.send(
            EndpointId(1),
            class::APP,
            hdr(1),
            Bytes::from(vec![0u8; 1 << 20]),
        );
        let m1 = r.recv_blocking().unwrap();
        let m2 = r.recv_blocking().unwrap();
        assert!(m2.arrival - m2.injected_at > m1.arrival - m1.injected_at);
    }

    #[test]
    fn endpoint_taken_once() {
        let fabric = Fabric::with_defaults(1, LogGpModel::fast_test_model());
        let _a = fabric.endpoint(EndpointId(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _again = fabric.endpoint(EndpointId(0));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn crash_schedule_unwinds_with_signal() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric
            .failure()
            .schedule(EndpointId(0), CrashSchedule::AfterSend { nth: 2 });
        let mut a = fabric.endpoint(EndpointId(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..5 {
                a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
            }
        }));
        let err = result.expect_err("process must crash");
        let sig = err
            .downcast_ref::<CrashSignal>()
            .expect("panic payload is a CrashSignal");
        assert_eq!(sig.endpoint, EndpointId(0));
        assert!(fabric.failure().is_failed(EndpointId(0)));
        // Exactly 2 application messages were handed to the fabric before the
        // crash; they remain deliverable.
        assert_eq!(fabric.stats().snapshot().app_msgs(), 2);
        let mut b = fabric.endpoint(EndpointId(1));
        assert!(b.recv_blocking().is_ok());
        assert!(b.recv_blocking().is_ok());
    }

    #[test]
    fn non_app_classes_do_not_count_as_app_sends() {
        let (mut a, _b, _f) = two_endpoint_fabric();
        a.send(EndpointId(1), class::ACK, hdr(0), Bytes::new());
        a.send(EndpointId(1), class::CONTROL, hdr(0), Bytes::new());
        assert_eq!(a.app_sends(), 0);
        a.send(EndpointId(1), class::APP, hdr(0), Bytes::new());
        assert_eq!(a.app_sends(), 1);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node_delivery() {
        // 2 nodes x 2 cores; endpoints 0,1 share node 0, endpoint 2 is remote.
        let fabric = Fabric::new(
            4,
            LogGpModel::infiniband_20g(),
            Cluster::new(2, 2),
            Placement::Packed,
        );
        let mut p0 = fabric.endpoint(EndpointId(0));
        let mut p1 = fabric.endpoint(EndpointId(1));
        let mut p2 = fabric.endpoint(EndpointId(2));
        p0.send(
            EndpointId(1),
            class::APP,
            hdr(0),
            Bytes::from(vec![0u8; 1024]),
        );
        p0.send(
            EndpointId(2),
            class::APP,
            hdr(0),
            Bytes::from(vec![0u8; 1024]),
        );
        let local = p1.recv_blocking().unwrap();
        let remote = p2.recv_blocking().unwrap();
        assert!(
            local.arrival - local.injected_at < remote.arrival - remote.injected_at,
            "intra-node wire time should be smaller"
        );
    }

    #[test]
    fn unmanaged_recv_times_out_with_typed_error() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.set_recv_timeout(Duration::from_millis(30));
        let mut a = fabric.endpoint(EndpointId(0));
        assert_eq!(a.recv_blocking().unwrap_err(), RecvError::Timeout);
    }

    #[test]
    fn unmanaged_recv_wakes_promptly_on_cross_thread_delivery() {
        // The timed seat must be signalled by a concurrent ingest: with a
        // long 10 s timeout, a delivery 20 ms in has to complete the wait in
        // far less than one 50 ms slice-polling cycle would suggest.
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.set_recv_timeout(Duration::from_secs(10));
        let mut a = fabric.endpoint(EndpointId(0));
        let f2 = Arc::clone(&fabric);
        let h = std::thread::spawn(move || {
            let mut b = f2.endpoint(EndpointId(1));
            std::thread::sleep(Duration::from_millis(20));
            b.send(EndpointId(0), class::APP, hdr(5), Bytes::new());
        });
        let started = Instant::now();
        let msg = a.recv_blocking().expect("delivered across threads");
        assert_eq!(msg.header[0], 5);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "timed wait must be signalled by the ingest, took {:?}",
            started.elapsed()
        );
        h.join().unwrap();
    }

    #[test]
    fn unmanaged_recv_returns_early_when_a_failure_is_recorded() {
        // A long 10 s timeout, but a failure is recorded 20 ms in: the timed
        // wait must return promptly so the caller can poll the detector,
        // instead of burning the full timeout.
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.set_recv_timeout(Duration::from_secs(10));
        let mut a = fabric.endpoint(EndpointId(0));
        let f2 = Arc::clone(&fabric);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            f2.failure().record_failure(EndpointId(1), SimTime::ZERO);
        });
        let started = std::time::Instant::now();
        let err = a.recv_blocking().unwrap_err();
        assert_eq!(err, RecvError::Timeout);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "crashed-peer teardown must fail fast, took {:?}",
            started.elapsed()
        );
        h.join().unwrap();
    }

    #[test]
    fn managed_recv_parks_and_wakes_on_delivery() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.scheduler().register(EndpointId(0));
        fabric.scheduler().register(EndpointId(1));
        let f2 = Arc::clone(&fabric);
        let receiver = std::thread::spawn(move || {
            f2.scheduler().start(EndpointId(0));
            let mut a = f2.endpoint(EndpointId(0));
            let got = a.recv_blocking();
            drop(a);
            f2.scheduler().finish(EndpointId(0));
            got
        });
        let f3 = Arc::clone(&fabric);
        let sender = std::thread::spawn(move || {
            f3.scheduler().start(EndpointId(1));
            let mut b = f3.endpoint(EndpointId(1));
            std::thread::sleep(Duration::from_millis(10));
            b.send(EndpointId(0), class::APP, hdr(42), Bytes::new());
            // Managed sends are staged: dropping the endpoint is the job-exit
            // flush, and must precede finish() so no wake can be lost.
            drop(b);
            f3.scheduler().finish(EndpointId(1));
        });
        let msg = receiver.join().unwrap().expect("delivered via park/unpark");
        assert_eq!(msg.header[0], 42);
        sender.join().unwrap();
    }

    #[test]
    fn managed_send_is_staged_until_a_blocking_boundary() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.scheduler().register(EndpointId(0));
        fabric.scheduler().register(EndpointId(1));
        fabric.scheduler().start(EndpointId(0));
        let mut a = fabric.endpoint(EndpointId(0));
        for i in 0..3 {
            a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
        }
        assert_eq!(a.staged_len(), 3, "managed sends stage in the outbox");
        assert_eq!(
            fabric.stats().snapshot().app_msgs(),
            3,
            "send stats recorded at send time"
        );
        a.flush();
        assert_eq!(a.staged_len(), 0);
        let snap = fabric.stats().snapshot();
        assert_eq!(snap.flushes(), 1, "one batch for the single destination");
        assert_eq!(snap.flushed_msgs(), 3);
        assert!((snap.mean_flush_batch() - 3.0).abs() < f64::EPSILON);
        drop(a);
        fabric.scheduler().finish(EndpointId(0));
        // The peer (never started: its slot is Ready) can still be drained
        // manually after taking its endpoint.
        fabric.scheduler().finish(EndpointId(1));
        let mut b = fabric.endpoint(EndpointId(1));
        assert!(b.has_pending());
    }

    #[test]
    fn dropped_endpoint_flushes_staged_messages() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.scheduler().register(EndpointId(0));
        fabric.scheduler().start(EndpointId(0));
        {
            let mut a = fabric.endpoint(EndpointId(0));
            a.send(EndpointId(1), class::APP, hdr(9), Bytes::new());
            assert_eq!(a.staged_len(), 1);
            // a dropped here: job-exit flush.
        }
        fabric.scheduler().finish(EndpointId(0));
        let mut b = fabric.endpoint(EndpointId(1));
        let msg = b.recv_blocking().expect("drop must flush the outbox");
        assert_eq!(msg.header[0], 9);
    }

    #[test]
    fn managed_recv_reports_quiescence_without_real_time_timeout() {
        // One managed process waiting forever: the quiescence check must
        // declare the deadlock immediately, long before the (deliberately
        // huge) real-time timeout.
        let fabric = Fabric::with_defaults(1, LogGpModel::fast_test_model());
        fabric.set_recv_timeout(Duration::from_secs(1000));
        fabric.scheduler().register(EndpointId(0));
        let f2 = Arc::clone(&fabric);
        let started = std::time::Instant::now();
        let h = std::thread::spawn(move || {
            f2.scheduler().start(EndpointId(0));
            let mut a = f2.endpoint(EndpointId(0));
            let got = a.recv_blocking();
            drop(a);
            f2.scheduler().finish(EndpointId(0));
            got
        });
        assert_eq!(h.join().unwrap().unwrap_err(), RecvError::Quiescent);
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn send_to_dead_endpoint_is_silently_kept_in_its_inbox() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        let mut a = fabric.endpoint(EndpointId(0));
        {
            let _b = fabric.endpoint(EndpointId(1));
            // b dropped here: nobody reads the inbox any more.
        }
        a.send(
            EndpointId(1),
            class::APP,
            hdr(0),
            Bytes::from_static(b"kept"),
        );
        // No panic; stats still count the attempt, and a recovery incarnation
        // taking a fresh handle for the same identity can still drain it.
        assert_eq!(fabric.stats().snapshot().app_msgs(), 1);
        fabric.reset_endpoint(EndpointId(1));
        let mut b2 = fabric.endpoint(EndpointId(1));
        let msg = b2.recv_blocking().expect("inbox survives the endpoint");
        assert_eq!(&msg.payload[..], b"kept");
    }

    #[test]
    fn batch_drain_pops_everything_after_one_sweep() {
        let (mut a, mut b, _f) = two_endpoint_fabric();
        for i in 0..5 {
            a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
        }
        b.poll_ready();
        let mut got = Vec::new();
        while let Some(msg) = b.next_ready() {
            got.push(msg.header[0]);
        }
        assert_eq!(got, (0..5).collect::<Vec<_>>());
        assert!(b.next_ready().is_none());
    }

    #[test]
    fn wake_counters_track_issued_and_suppressed() {
        // Unmanaged immediate deliveries to an unmanaged peer: every wake is
        // Ignored (counted as suppressed — no run-queue lock contention).
        let (mut a, mut b, fabric) = two_endpoint_fabric();
        for i in 0..4 {
            a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
        }
        let snap = fabric.stats().snapshot();
        assert_eq!(snap.wakes_issued() + snap.wakes_suppressed(), 4);
        assert_eq!(snap.wakes_issued(), 0, "unmanaged targets never unpark");
        for _ in 0..4 {
            b.recv_blocking().unwrap();
        }
    }

    fn uniform_fault(drop: u32, dup: u32, delay: u32, delay_ns: u64) -> NetFaultConfig {
        NetFaultConfig {
            drop_per_64k: drop,
            dup_per_64k: dup,
            delay_per_64k: delay,
            delay_ns,
            ack_only: false,
        }
    }

    #[test]
    fn duplicate_policy_copies_never_reach_the_receiver_twice() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.install_net_faults(uniform_fault(0, 65_536, 0, 0), 11);
        let mut a = fabric.endpoint(EndpointId(0));
        let mut b = fabric.endpoint(EndpointId(1));
        for i in 0..10 {
            a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(b.recv_blocking().unwrap().header[0]);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>(), "exactly-once, in order");
        assert!(!b.has_pending(), "no duplicate frame may survive the sweep");
        let snap = fabric.stats().snapshot();
        assert_eq!(snap.msgs_duplicated(), 10);
        assert_eq!(
            snap.dups_suppressed(),
            snap.msgs_duplicated(),
            "every injected copy is suppressed at the sweep"
        );
    }

    #[test]
    fn drop_policy_drops_faultable_classes_but_not_exempt_ones() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.set_recv_timeout(Duration::from_millis(30));
        fabric.install_net_faults(uniform_fault(65_536, 0, 0, 0), 5);
        let mut a = fabric.endpoint(EndpointId(0));
        let mut b = fabric.endpoint(EndpointId(1));
        a.send(EndpointId(1), class::APP, hdr(1), Bytes::new());
        a.send(EndpointId(1), class::ACK, hdr(2), Bytes::new());
        a.send(EndpointId(1), class::CONTROL, hdr(3), Bytes::new());
        let msg = b.recv_blocking().expect("control traffic is exempt");
        assert_eq!(msg.header[0], 3);
        assert_eq!(
            b.recv_blocking().unwrap_err(),
            RecvError::Timeout,
            "app and ack frames were dropped"
        );
        assert_eq!(fabric.stats().snapshot().msgs_dropped(), 2);
    }

    #[test]
    fn delay_policy_pushes_arrivals_and_keeps_link_fifo() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.install_net_faults(uniform_fault(0, 0, 65_536, 1_000_000), 3);
        let mut a = fabric.endpoint(EndpointId(0));
        let mut b = fabric.endpoint(EndpointId(1));
        for i in 0..5 {
            a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
        }
        let mut last = SimTime::ZERO;
        for i in 0..5 {
            let msg = b.recv_blocking().unwrap();
            assert_eq!(msg.header[0], i, "delays must not reorder a link");
            assert!(msg.arrival >= SimTime::from_millis(1), "arrival was pushed");
            assert!(msg.arrival >= last);
            last = msg.arrival;
        }
        assert_eq!(fabric.stats().snapshot().msgs_delayed(), 5);
    }

    #[test]
    fn reconcile_counts_unswept_duplicate_copies() {
        let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
        fabric.install_net_faults(uniform_fault(0, 65_536, 0, 0), 7);
        let mut a = fabric.endpoint(EndpointId(0));
        a.send(EndpointId(1), class::APP, hdr(0), Bytes::new());
        // The receiver never sweeps; the job-end reconcile must still pair
        // the injected copy with a suppression (and leave the real frame).
        fabric.reconcile_net_faults();
        let snap = fabric.stats().snapshot();
        assert_eq!(snap.msgs_duplicated(), 1);
        assert_eq!(snap.dups_suppressed(), 1);
        let mut b = fabric.endpoint(EndpointId(1));
        assert!(b.recv_blocking().is_ok(), "the real frame survives");
        assert!(!b.has_pending());
    }

    #[test]
    fn policy_verdicts_are_identical_across_runs() {
        let run = || {
            let fabric = Fabric::with_defaults(2, LogGpModel::fast_test_model());
            fabric.set_recv_timeout(Duration::from_millis(30));
            fabric.install_net_faults(uniform_fault(20_000, 20_000, 20_000, 1_000), 99);
            let mut a = fabric.endpoint(EndpointId(0));
            let mut b = fabric.endpoint(EndpointId(1));
            for i in 0..64 {
                a.send(EndpointId(1), class::APP, hdr(i), Bytes::new());
            }
            let mut got = Vec::new();
            while let Ok(msg) = b.recv_blocking() {
                got.push((msg.header[0], msg.arrival));
            }
            let snap = fabric.stats().snapshot();
            (
                got,
                snap.msgs_dropped(),
                snap.msgs_duplicated(),
                snap.msgs_delayed(),
            )
        };
        assert_eq!(
            run(),
            run(),
            "seeded fault routing must replay bit-identically"
        );
    }
}
