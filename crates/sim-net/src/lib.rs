//! # sim-net — a virtual-time simulated interconnect
//!
//! This crate provides the network substrate on which the `sim-mpi` runtime
//! (and on top of it, the SDR-MPI replication protocol) is built. It plays the
//! role that InfiniBand + the Open MPI BTL layer played in the original paper:
//! reliable FIFO channels between physical processes, with communication costs
//! charged in *virtual time* by a LogGP-style model.
//!
//! Design summary (see `DESIGN.md` §5):
//!
//! * Every physical process owns a [`clock::VirtualClock`]. Computation
//!   advances the clock explicitly; communication costs are charged by the
//!   [`model::NetworkModel`].
//! * Execution goes through the [`sched::Scheduler`]: each simulated process
//!   lives on a carrier thread (leased from the process-global
//!   [`carrier::CarrierPool`], which reuses parked threads across processes
//!   and jobs), but only a bounded pool of run permits executes at a time,
//!   dispatched lowest-virtual-time-first. A departing carrier hands its
//!   permit *directly* to the next ready process (sharded ready queues,
//!   virtual-time-aware stealing); blocking waits park on the scheduler
//!   (park/unpark wake-token protocol) and deadlocks are detected exactly,
//!   by quiescence, instead of by real-time timeouts.
//! * Transport is a single-pass delivery pipeline: one fabric-owned mailbox
//!   per destination endpoint, lock-striped by source and ingested *in
//!   place*, feeding a receiver-side arrival-ordered ladder (O(1) append +
//!   O(1) pop for the near-monotonic common case, a small heap fallback for
//!   inversions). Messages from one sender to one receiver are delivered in
//!   order (the paper's FIFO reliable channel assumption; ties between equal
//!   virtual arrivals are broken by physical ingest order).
//!   Scheduler-managed endpoints *stage* sends in a per-destination outbox
//!   and ingest each destination's batch — one stripe-lock acquisition, one
//!   wake — at their next blocking boundary ([`fabric::Endpoint::flush`]);
//!   wakes to already-runnable targets take a lock-free fast path
//!   ([`sched::Scheduler::wake`]).
//! * Crash failures are injected by the [`failure::FailureService`], which also
//!   acts as the "external service" the paper assumes for failure detection:
//!   every alive endpoint learns about a crash.
//! * [`stats::NetStats`] counts messages and bytes so protocol-level message
//!   complexity (e.g. mirror's `O(q·r²)` vs parallel's `O(q·r)`) can be
//!   measured directly.
//! * [`campaign`] samples seeded, reproducible fault plans (exponential-MTBF
//!   crashes, correlated replica-pair loss, mid-collective crashes, soft
//!   errors, lossy links and delayed acks) that the upper layers compile into
//!   `FailureService` schedules, PML corruption hooks and fabric-level
//!   [`netfault::NetFaultPolicy`] installations, and shrinks failing plans to
//!   minimal regression cases.
//! * [`netfault`] is the lossy-transport injection layer: a seeded per-job
//!   policy that drops, duplicates or delays application/ack deliveries at
//!   configured per-link rates, deterministically, while preserving per-link
//!   FIFO (delays raise a link arrival floor). The replication protocol is
//!   expected to *mask* these faults (retransmit/timeout/backoff + duplicate
//!   suppression); see DESIGN.md §5.5.
//!
//! # Concurrency protocols at a glance
//!
//! Three modules own lock-free or lock-striped protocols; each states its
//! full argument in its own docs (and DESIGN.md §5.1–§5.3 gives the
//! narrative version, `ARCHITECTURE.md` the end-to-end tour):
//!
//! * [`fabric`] — mailbox ingest order (count, then stripe append, then
//!   wake) and the outbox flush-point invariant ("a staged message implies a
//!   running sender").
//! * [`sched`] — per-slot atomic phase words, wake tokens with the
//!   Dekker-style store-load re-check, direct permit handoff, and the
//!   verdict mutex that serialises quiescence.
//! * [`failure`] — two-atomic fast path (`armed`, `failed_seq`) answering
//!   the per-send crash checks and per-progress failure polls without
//!   touching the service's inner lock.

#![deny(missing_docs)]

pub mod campaign;
pub mod carrier;
pub mod clock;
pub mod fabric;
pub mod failure;
pub mod model;
pub mod netfault;
pub mod sched;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use campaign::{
    sample_plan, shrink_events, CampaignConfig, CampaignRng, FaultDistribution, FaultPlan,
    PlannedFault,
};
pub use carrier::coro::CoroRuntime;
pub use carrier::stack::StackPool;
pub use carrier::{CarrierHandle, CarrierMode, CarrierPool, CarrierSource};
pub use clock::VirtualClock;
pub use fabric::{Endpoint, EndpointId, Fabric, RawMessage, RecvError};
pub use failure::{CrashSchedule, FailureEvent, FailureService};
pub use model::{HockneyModel, LogGpModel, NetworkModel};
pub use netfault::{FaultVerdict, NetFaultConfig, NetFaultPolicy};
pub use sched::{Park, Scheduler, WakeOutcome};
pub use stats::{NetStats, StatsSnapshot};
pub use time::SimTime;
pub use topology::{Cluster, NodeId, Placement};
pub use trace::{EventKind, EventTrace, TraceEvent};
