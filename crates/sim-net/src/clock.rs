//! Per-process virtual clocks.
//!
//! Each simulated physical process owns one [`VirtualClock`]. The clock only
//! ever moves forward: computation and per-message CPU overheads `advance` it,
//! and message arrivals `sync_to` it (a process cannot observe a message
//! before the message exists). The maximum clock value across processes at the
//! end of a run is the simulated wall-clock time of the application.

use crate::time::SimTime;

/// A monotonically non-decreasing virtual clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: SimTime,
    /// Total time spent in explicitly-charged computation (excludes
    /// communication overheads and idle waiting). Used by experiment reports
    /// to split runtime into compute / communication / wait.
    compute: SimTime,
    /// Total time attributed to communication CPU overheads.
    comm_overhead: SimTime,
    /// Total time spent idle, i.e. jumped over by `sync_to` while waiting for
    /// a message to arrive.
    idle: SimTime,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock by `d`, accounting it as application computation.
    pub fn compute(&mut self, d: SimTime) {
        self.now += d;
        self.compute += d;
    }

    /// Advance the clock by `d`, accounting it as communication overhead
    /// (send/receive CPU costs, protocol processing such as ack handling).
    pub fn charge_comm(&mut self, d: SimTime) {
        self.now += d;
        self.comm_overhead += d;
    }

    /// Move the clock forward to `t` if `t` is in the future, accounting the
    /// jumped-over span as idle (waiting) time. Returns the amount of idle
    /// time added (zero if `t` is in the past).
    pub fn sync_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            let idle = t - self.now;
            self.idle += idle;
            self.now = t;
            idle
        } else {
            SimTime::ZERO
        }
    }

    /// Total accounted computation time.
    pub fn compute_time(&self) -> SimTime {
        self.compute
    }

    /// Total accounted communication-overhead time.
    pub fn comm_overhead_time(&self) -> SimTime {
        self.comm_overhead
    }

    /// Total accounted idle (waiting) time.
    pub fn idle_time(&self) -> SimTime {
        self.idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.compute_time(), SimTime::ZERO);
        assert_eq!(c.idle_time(), SimTime::ZERO);
    }

    #[test]
    fn compute_advances_and_accounts() {
        let mut c = VirtualClock::new();
        c.compute(SimTime::from_nanos(100));
        c.compute(SimTime::from_nanos(50));
        assert_eq!(c.now(), SimTime::from_nanos(150));
        assert_eq!(c.compute_time(), SimTime::from_nanos(150));
        assert_eq!(c.comm_overhead_time(), SimTime::ZERO);
    }

    #[test]
    fn comm_charge_separately_accounted() {
        let mut c = VirtualClock::new();
        c.compute(SimTime::from_nanos(10));
        c.charge_comm(SimTime::from_nanos(30));
        assert_eq!(c.now(), SimTime::from_nanos(40));
        assert_eq!(c.compute_time(), SimTime::from_nanos(10));
        assert_eq!(c.comm_overhead_time(), SimTime::from_nanos(30));
    }

    #[test]
    fn sync_to_future_adds_idle() {
        let mut c = VirtualClock::new();
        c.compute(SimTime::from_nanos(10));
        let idle = c.sync_to(SimTime::from_nanos(25));
        assert_eq!(idle, SimTime::from_nanos(15));
        assert_eq!(c.now(), SimTime::from_nanos(25));
        assert_eq!(c.idle_time(), SimTime::from_nanos(15));
    }

    #[test]
    fn sync_to_past_is_noop() {
        let mut c = VirtualClock::new();
        c.compute(SimTime::from_nanos(100));
        let idle = c.sync_to(SimTime::from_nanos(40));
        assert_eq!(idle, SimTime::ZERO);
        assert_eq!(c.now(), SimTime::from_nanos(100));
        assert_eq!(c.idle_time(), SimTime::ZERO);
    }

    #[test]
    fn accounting_sums_to_now() {
        let mut c = VirtualClock::new();
        c.compute(SimTime::from_nanos(100));
        c.charge_comm(SimTime::from_nanos(20));
        c.sync_to(SimTime::from_nanos(200));
        assert_eq!(
            c.compute_time() + c.comm_overhead_time() + c.idle_time(),
            c.now()
        );
    }
}
