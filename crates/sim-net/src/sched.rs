//! The schedulable-process execution layer: a bounded worker pool over which
//! any number of simulated processes multiplex.
//!
//! The original runtime gave every simulated process its own OS thread and let
//! them all run (and block) freely; blocking receives waited on a channel with
//! a 20 s real-time timeout that doubled as the deadlock detector. That design
//! tops out at a few dozen processes: beyond that the host drowns in runnable
//! threads, runs become timing-sensitive, and every deadlock test burns its
//! timeout for real. Reaching the paper's 256-rank evaluations (512 simulated
//! processes at dual replication) needs the execution layer this module
//! provides:
//!
//! * Each simulated process still owns a *carrier* thread (its stack is where
//!   the application closure lives), but carriers are inert by default: a
//!   carrier only executes while it holds one of the scheduler's `workers`
//!   run permits. At most `workers` simulated processes are ever runnable
//!   concurrently, regardless of how many the job launches.
//! * The run queue is keyed by **virtual time**: when permits free up, the
//!   ready process with the smallest virtual clock runs first. This keeps the
//!   simulation close to the virtual-time frontier and makes runs largely
//!   insensitive to host scheduling.
//! * Blocking waits go through a **park/unpark protocol** instead of timed
//!   channel receives. A process with nothing to do parks (releasing its
//!   permit); every message delivery wakes its destination. A wake that races
//!   ahead of the park leaves a *token* the park consumes, so no wake-up is
//!   ever lost.
//! * Waking a process that is already running or ready is the overwhelmingly
//!   common case at scale (a parked process is made ready by its first
//!   incoming message; the next dozens land while it waits for a permit).
//!   That case is a **lock-free fast path**: the waker sets the slot's atomic
//!   wake token, confirms the phase mirror says running/ready, and never
//!   touches the run-queue mutex. Only wakes that may genuinely need to
//!   unpark a process take the lock. See `wake` for the store-load fence
//!   argument that makes the race with `park` safe.
//! * Deadlock detection becomes a **quiescence check**: if no process is
//!   running or ready and at least one unfinished process is parked with no
//!   pending wake token, no message can ever arrive again — the parked
//!   processes are deadlocked. The verdict is exact and instantaneous, unlike
//!   the old real-time timeout (which stays in place only for endpoints driven
//!   manually, outside the scheduler). A process that *busy-polls* instead of
//!   parking (an `MPI_Test` spin loop) would defeat quiescence; the scheduler
//!   therefore counts consecutive no-progress yields and converts a long
//!   streak into a real park (see [`YIELD_STREAK_PARK`]), so spinners join
//!   the quiescence accounting instead of masking a deadlock forever.

use crate::fabric::EndpointId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lower bound on the worker-pool size. With a single permit, a process
/// busy-polling a request (`MPI_Test` loops) could monopolise execution; two
/// permits guarantee the peer that must satisfy the request can always be
/// dispatched alongside the poller.
pub const MIN_WORKERS: usize = 2;

/// Number of consecutive no-progress cooperative yields after which
/// [`Scheduler::yield_now`] parks the process for real. A spinner that never
/// receives a wake token between yields is making no progress; parking it (a)
/// returns its permit to processes that can progress and (b) lets the
/// quiescence check see through busy-poll loops — a job whose every unfinished
/// process is either parked or fruitlessly spinning is deadlocked, and is now
/// reported as such instead of spinning forever. Any message delivery unparks
/// the process again, so a spinner whose condition *can* still be satisfied
/// only trades a few empty polls for a park/unpark round-trip.
pub const YIELD_STREAK_PARK: u32 = 64;

/// Verdict returned by [`Scheduler::park`] and [`Scheduler::yield_now`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Park {
    /// A wake-up arrived (a message was delivered, or raced ahead of the
    /// park); the caller should re-poll its queues.
    Woken,
    /// The scheduler detected quiescence: every unfinished process is parked
    /// and no wake-up is pending. The simulated application is deadlocked.
    Deadlock,
}

/// How a [`Scheduler::wake`] call was served. The fabric records these in its
/// [`crate::stats::NetStats`] so experiments can quantify wake coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeOutcome {
    /// The target was parked: the run-queue lock was taken and the process
    /// moved to the ready queue.
    Unparked,
    /// Fast path: the target was already running, ready, or had a wake token
    /// pending — the wake collapsed into the token without touching the
    /// run-queue lock.
    Coalesced,
    /// The target is unmanaged or finished; the wake had no effect.
    Ignored,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Phase {
    /// Not registered with the scheduler (endpoints driven manually keep the
    /// legacy timed-wait path).
    Unmanaged = 0,
    /// Registered and runnable, waiting in the run queue for a permit.
    Ready = 1,
    /// Holding a run permit; its carrier thread is executing.
    Running = 2,
    /// Blocked in [`Scheduler::park`] with its permit released.
    Parked = 3,
    /// Its carrier finished (application returned, crashed, or panicked).
    Finished = 4,
    /// Marked deadlocked by the quiescence check; its carrier is being told.
    Deadlocked = 5,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            1 => Phase::Ready,
            2 => Phase::Running,
            3 => Phase::Parked,
            4 => Phase::Finished,
            5 => Phase::Deadlocked,
            _ => Phase::Unmanaged,
        }
    }
}

#[derive(Debug)]
struct Slot {
    phase: Phase,
    /// Virtual time at the process's last scheduling interaction; the run
    /// queue priority.
    vtime: SimTime,
    /// Consecutive [`Scheduler::yield_now`] calls that found no pending wake
    /// token. Reset by any consumed token or park. Drives the busy-poll
    /// quiescence guard.
    yield_streak: u32,
}

#[derive(Debug)]
struct SchedState {
    workers: usize,
    running: usize,
    peak_running: usize,
    slots: Vec<Slot>,
    /// Min-heap of (virtual time, FIFO tiebreak, endpoint index) over Ready
    /// slots. Entries are validated against the slot phase when popped.
    ready: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    ready_seq: u64,
}

/// The scheduler: one per [`crate::Fabric`], sized to its endpoint count.
pub struct Scheduler {
    state: Mutex<SchedState>,
    /// One condition variable per endpoint, all tied to `state`'s mutex.
    cvs: Vec<Condvar>,
    /// Lock-free mirror of each slot's phase, written (under the lock) by
    /// every phase transition and read without the lock by the wake fast
    /// path. May lag the real phase by one transition; the SeqCst store-load
    /// protocol in `park`/`wake` makes that lag harmless.
    aphase: Vec<AtomicU8>,
    /// Pending wake token per slot. Set lock-free by `wake`; consumed (with
    /// the state lock held, but via atomic swap) by `park` and `yield_now`.
    token: Vec<AtomicBool>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.lock();
        f.debug_struct("Scheduler")
            .field("capacity", &g.slots.len())
            .field("workers", &g.workers)
            .field("running", &g.running)
            .finish()
    }
}

/// `min(available cores, n)` clamped to at least [`MIN_WORKERS`] — the default
/// pool size for an `n`-process job.
pub fn default_workers(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    cores.min(n.max(1)).max(MIN_WORKERS)
}

impl Scheduler {
    /// A scheduler for `n` simulated processes with the default worker count.
    pub fn new(n: usize) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                workers: default_workers(n),
                running: 0,
                peak_running: 0,
                slots: (0..n)
                    .map(|_| Slot {
                        phase: Phase::Unmanaged,
                        vtime: SimTime::ZERO,
                        yield_streak: 0,
                    })
                    .collect(),
                ready: BinaryHeap::new(),
                ready_seq: 0,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            aphase: (0..n)
                .map(|_| AtomicU8::new(Phase::Unmanaged as u8))
                .collect(),
            token: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Set a slot's phase and its lock-free mirror. Must be called with the
    /// state lock held (`g` proves it).
    fn set_phase(&self, g: &mut SchedState, idx: usize, phase: Phase) {
        g.slots[idx].phase = phase;
        self.aphase[idx].store(phase as u8, Ordering::SeqCst);
    }

    /// Number of process slots.
    pub fn capacity(&self) -> usize {
        self.cvs.len()
    }

    /// The current worker-pool size.
    pub fn workers(&self) -> usize {
        self.lock().workers
    }

    /// Resize the worker pool (clamped to [`MIN_WORKERS`]). Takes effect
    /// immediately: a grown pool dispatches more ready processes on the spot.
    pub fn set_workers(&self, workers: usize) {
        let mut g = self.lock();
        g.workers = workers.max(MIN_WORKERS);
        self.dispatch(&mut g);
    }

    /// Highest number of simultaneously running processes observed so far —
    /// the proof that execution concurrency stayed within the pool bound.
    pub fn peak_running(&self) -> usize {
        self.lock().peak_running
    }

    /// Is this endpoint under scheduler management?
    pub fn is_managed(&self, e: EndpointId) -> bool {
        Phase::from_u8(self.aphase[e.0].load(Ordering::SeqCst)) != Phase::Unmanaged
    }

    /// Put endpoint `e` under scheduler management, queueing it to run. Must
    /// be called before the process's carrier thread calls [`Scheduler::start`].
    /// Re-registering a finished slot is allowed (recovery forks a replacement
    /// process under the same physical identity).
    pub fn register(&self, e: EndpointId) {
        let mut g = self.lock();
        let phase = g.slots[e.0].phase;
        assert!(
            matches!(
                phase,
                Phase::Unmanaged | Phase::Finished | Phase::Deadlocked
            ),
            "endpoint {} registered while still {:?}",
            e.0,
            phase
        );
        g.slots[e.0].vtime = SimTime::ZERO;
        g.slots[e.0].yield_streak = 0;
        self.token[e.0].store(false, Ordering::SeqCst);
        self.set_phase(&mut g, e.0, Phase::Ready);
        let seq = g.ready_seq;
        g.ready_seq += 1;
        g.ready.push(Reverse((SimTime::ZERO, seq, e.0)));
        self.dispatch(&mut g);
    }

    /// Block the calling carrier thread until its process is granted a run
    /// permit. Called once, at carrier start-up, after [`Scheduler::register`].
    pub fn start(&self, e: EndpointId) {
        let mut g = self.lock();
        loop {
            match g.slots[e.0].phase {
                Phase::Running => return,
                Phase::Ready => g = self.wait(e, g),
                other => panic!("start() on endpoint {} in phase {:?}", e.0, other),
            }
        }
    }

    /// Park the calling process: release its permit and block until a wake-up
    /// arrives (then re-acquire a permit) or the quiescence check declares the
    /// job deadlocked. `now` is the process's current virtual time, used as
    /// its run-queue priority when it is woken.
    ///
    /// If a wake-up raced ahead of this call, the pending token is consumed
    /// and the process keeps running without ever blocking.
    pub fn park(&self, e: EndpointId, now: SimTime) -> Park {
        let mut g = self.lock();
        debug_assert_eq!(g.slots[e.0].phase, Phase::Running, "park while not running");
        g.slots[e.0].vtime = now;
        g.slots[e.0].yield_streak = 0;
        if self.token[e.0].swap(false, Ordering::SeqCst) {
            return Park::Woken;
        }
        self.set_phase(&mut g, e.0, Phase::Parked);
        // Dekker-style re-check: a lock-free waker that read the phase mirror
        // *before* the store above saw Running and only left a token. Under
        // SeqCst, if that waker's token store is not visible to the swap
        // below, then our Parked store is visible to its phase load — it
        // takes the slow path and unparks us properly. Either way no wake is
        // lost.
        if self.token[e.0].swap(false, Ordering::SeqCst) {
            self.set_phase(&mut g, e.0, Phase::Running);
            return Park::Woken;
        }
        g.running -= 1;
        self.dispatch(&mut g);
        self.check_quiescence(&mut g);
        self.block_until_runnable(e, g)
    }

    /// Common tail of `park`/`yield_now`: wait until the slot is re-dispatched
    /// or declared deadlocked.
    fn block_until_runnable<'a>(
        &'a self,
        e: EndpointId,
        mut g: MutexGuard<'a, SchedState>,
    ) -> Park {
        loop {
            match g.slots[e.0].phase {
                Phase::Running => return Park::Woken,
                Phase::Deadlocked => {
                    // The carrier resumes to unwind with a deadlock report; it
                    // is genuinely executing again, so restore the accounting
                    // (teardown may briefly exceed the pool bound).
                    self.set_phase(&mut g, e.0, Phase::Running);
                    g.running += 1;
                    return Park::Deadlock;
                }
                _ => g = self.wait(e, g),
            }
        }
    }

    /// Wake endpoint `e` because a message was just delivered to its queue.
    ///
    /// Fast path (no run-queue lock): set the slot's atomic wake token; if the
    /// phase mirror says the process is running or ready — or a token was
    /// already pending — the token alone is sufficient, because the process
    /// must pass through `park`/`yield_now` (which consume it) before it can
    /// ever block. Only when the target may actually be parked does the waker
    /// take the lock and move it to the run queue. Unmanaged and finished
    /// slots ignore wakes.
    pub fn wake(&self, e: EndpointId) -> WakeOutcome {
        if self.token[e.0].swap(true, Ordering::SeqCst) {
            // A wake is already pending; whoever owns it will re-poll.
            return WakeOutcome::Coalesced;
        }
        match Phase::from_u8(self.aphase[e.0].load(Ordering::SeqCst)) {
            Phase::Running | Phase::Ready => return WakeOutcome::Coalesced,
            _ => {}
        }
        // Slow path: the target may be parked (or the mirror is mid-update).
        let mut g = self.lock();
        match g.slots[e.0].phase {
            Phase::Parked => {
                self.token[e.0].store(false, Ordering::SeqCst);
                self.set_phase(&mut g, e.0, Phase::Ready);
                g.slots[e.0].yield_streak = 0;
                let seq = g.ready_seq;
                g.ready_seq += 1;
                let vtime = g.slots[e.0].vtime;
                g.ready.push(Reverse((vtime, seq, e.0)));
                self.dispatch(&mut g);
                WakeOutcome::Unparked
            }
            // The mirror lagged; the token we set above covers these.
            Phase::Running | Phase::Ready => WakeOutcome::Coalesced,
            Phase::Unmanaged | Phase::Finished | Phase::Deadlocked => {
                self.token[e.0].store(false, Ordering::SeqCst);
                WakeOutcome::Ignored
            }
        }
    }

    /// Cooperatively yield: release the permit, requeue at priority `now`, and
    /// block until re-dispatched. Lets lower-virtual-time processes run; the
    /// PML calls this from busy-poll loops (`MPI_Test` spinning) so a poller
    /// can never monopolise the pool. A pending wake token makes this a no-op
    /// (there is fresh work; keep running).
    ///
    /// After [`YIELD_STREAK_PARK`] consecutive yields without a wake token the
    /// process is parked instead of requeued: a spinner making no progress
    /// must not defeat the quiescence-based deadlock detection, and returns
    /// its permit until a delivery wakes it. Callers must therefore handle a
    /// [`Park::Deadlock`] verdict exactly as they would from
    /// [`Scheduler::park`].
    pub fn yield_now(&self, e: EndpointId, now: SimTime) -> Park {
        let mut g = self.lock();
        if g.slots[e.0].phase != Phase::Running {
            return Park::Woken;
        }
        if self.token[e.0].swap(false, Ordering::SeqCst) {
            g.slots[e.0].yield_streak = 0;
            return Park::Woken;
        }
        g.slots[e.0].vtime = now;
        g.slots[e.0].yield_streak += 1;
        if g.slots[e.0].yield_streak >= YIELD_STREAK_PARK {
            // No-progress streak: treat the spinner as parked (see above).
            self.set_phase(&mut g, e.0, Phase::Parked);
            if self.token[e.0].swap(false, Ordering::SeqCst) {
                // Same Dekker re-check as in `park`.
                self.set_phase(&mut g, e.0, Phase::Running);
                g.slots[e.0].yield_streak = 0;
                return Park::Woken;
            }
            g.running -= 1;
            self.dispatch(&mut g);
            self.check_quiescence(&mut g);
            return self.block_until_runnable(e, g);
        }
        self.set_phase(&mut g, e.0, Phase::Ready);
        g.running -= 1;
        let seq = g.ready_seq;
        g.ready_seq += 1;
        g.ready.push(Reverse((now, seq, e.0)));
        self.dispatch(&mut g);
        self.block_until_runnable(e, g)
    }

    /// Mark endpoint `e` finished (application returned, crashed or
    /// panicked), releasing its permit. Idempotent.
    pub fn finish(&self, e: EndpointId) {
        let mut g = self.lock();
        match g.slots[e.0].phase {
            Phase::Unmanaged | Phase::Finished => return,
            Phase::Running => g.running -= 1,
            Phase::Ready | Phase::Parked | Phase::Deadlocked => {}
        }
        self.set_phase(&mut g, e.0, Phase::Finished);
        self.token[e.0].store(false, Ordering::SeqCst);
        self.dispatch(&mut g);
        self.check_quiescence(&mut g);
    }

    /// Number of currently parked processes (diagnostics).
    pub fn parked_count(&self) -> usize {
        self.lock()
            .slots
            .iter()
            .filter(|s| s.phase == Phase::Parked)
            .count()
    }

    fn wait<'a>(
        &'a self,
        e: EndpointId,
        g: MutexGuard<'a, SchedState>,
    ) -> MutexGuard<'a, SchedState> {
        self.cvs[e.0].wait(g).unwrap_or_else(|err| err.into_inner())
    }

    /// Grant permits to the lowest-virtual-time ready processes while the pool
    /// has room.
    fn dispatch(&self, g: &mut SchedState) {
        while g.running < g.workers {
            let Some(Reverse((_, _, idx))) = g.ready.pop() else {
                break;
            };
            if g.slots[idx].phase != Phase::Ready {
                continue; // stale entry (slot was finished during teardown)
            }
            self.set_phase(g, idx, Phase::Running);
            g.running += 1;
            g.peak_running = g.peak_running.max(g.running);
            self.cvs[idx].notify_all();
        }
    }

    /// The quiescence check: with nothing running, nothing ready and no wake
    /// token pending, parked processes can never be woken again — declare them
    /// deadlocked and wake their carriers with the verdict.
    fn check_quiescence(&self, g: &mut SchedState) {
        if g.running != 0 {
            return;
        }
        let mut any_parked = false;
        for (i, s) in g.slots.iter().enumerate() {
            match s.phase {
                Phase::Ready => return, // runnable work still exists
                Phase::Parked => {
                    if self.token[i].load(Ordering::SeqCst) {
                        return; // a wake-up is already pending
                    }
                    any_parked = true;
                }
                _ => {}
            }
        }
        if !any_parked {
            return;
        }
        for i in 0..g.slots.len() {
            if g.slots[i].phase == Phase::Parked {
                self.set_phase(g, i, Phase::Deadlocked);
                self.cvs[i].notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn ep(i: usize) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn register_then_start_grants_permit() {
        let s = Scheduler::new(4);
        s.set_workers(2);
        s.register(ep(0));
        assert!(s.is_managed(ep(0)));
        assert!(!s.is_managed(ep(1)));
        s.start(ep(0)); // must not block: a permit is free
        s.finish(ep(0));
    }

    #[test]
    fn wake_before_park_leaves_token() {
        let s = Scheduler::new(2);
        s.register(ep(0));
        s.start(ep(0));
        // Wake of a running process: coalesced, no unpark needed.
        assert_eq!(s.wake(ep(0)), WakeOutcome::Coalesced);
        assert_eq!(s.park(ep(0), SimTime::ZERO), Park::Woken);
        s.finish(ep(0));
    }

    #[test]
    fn repeated_wakes_of_busy_target_coalesce_into_one_token() {
        let s = Scheduler::new(2);
        s.register(ep(0));
        s.start(ep(0));
        for _ in 0..10 {
            assert_eq!(s.wake(ep(0)), WakeOutcome::Coalesced);
        }
        // One token pending: the first park consumes it, the second blocks
        // (here: detects quiescence, since nothing else runs).
        assert_eq!(s.park(ep(0), SimTime::ZERO), Park::Woken);
        assert_eq!(s.park(ep(0), SimTime::ZERO), Park::Deadlock);
        s.finish(ep(0));
    }

    #[test]
    fn wake_outcomes_distinguish_parked_running_finished() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let h2 = std::thread::spawn(move || {
            s3.start(ep(1));
            // Wait until the peer is genuinely parked.
            while s3.parked_count() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(s3.wake(ep(0)), WakeOutcome::Unparked);
            s3.finish(ep(1));
        });
        assert_eq!(h.join().unwrap(), Park::Woken);
        h2.join().unwrap();
        assert_eq!(s.wake(ep(0)), WakeOutcome::Ignored, "finished slot");
        assert_eq!(s.wake(ep(1)), WakeOutcome::Ignored);
    }

    #[test]
    fn park_wake_roundtrip_across_threads() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let h2 = std::thread::spawn(move || {
            s3.start(ep(1));
            std::thread::sleep(std::time::Duration::from_millis(20));
            s3.wake(ep(0));
            s3.finish(ep(1));
        });
        assert_eq!(h.join().unwrap(), Park::Woken);
        h2.join().unwrap();
    }

    #[test]
    fn hammered_park_wake_race_loses_no_wakeups() {
        // Stress the lock-free wake fast path against racing parks: the
        // parker must observe exactly as many wake-ups as were issued (each
        // park returns only after a wake), with no lost-wake hang.
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        const ROUNDS: usize = 2000;
        let s2 = Arc::clone(&s);
        let parker = std::thread::spawn(move || {
            s2.start(ep(0));
            for _ in 0..ROUNDS {
                match s2.park(ep(0), SimTime::ZERO) {
                    Park::Woken => {}
                    Park::Deadlock => panic!("spurious deadlock under wake hammering"),
                }
            }
            s2.finish(ep(0));
        });
        let s3 = Arc::clone(&s);
        let waker = std::thread::spawn(move || {
            s3.start(ep(1));
            for _ in 0..ROUNDS {
                // Issue wakes until one lands as a fresh token/unpark; a
                // Coalesced outcome on an already-pending token must not be
                // double-counted by the parker (it consumes one token per
                // park), so just keep the pressure up.
                s3.wake(ep(0));
                std::hint::spin_loop();
            }
            // Drain: keep waking until the parker finishes all rounds.
            while s3.wake(ep(0)) != WakeOutcome::Ignored {
                std::thread::yield_now();
            }
            s3.finish(ep(1));
        });
        parker.join().unwrap();
        waker.join().unwrap();
    }

    #[test]
    fn quiescence_declares_parked_processes_deadlocked() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let mut handles = Vec::new();
        for i in 0..2 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                let verdict = s.park(ep(i), SimTime::ZERO);
                s.finish(ep(i));
                verdict
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Park::Deadlock);
        }
    }

    #[test]
    fn no_quiescence_while_one_process_runs() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let parker = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let runner = std::thread::spawn(move || {
            s3.start(ep(1));
            // Keep running for a while, then deliver the wake-up: the parked
            // peer must not be declared deadlocked in the meantime.
            std::thread::sleep(std::time::Duration::from_millis(30));
            s3.wake(ep(0));
            s3.finish(ep(1));
        });
        assert_eq!(parker.join().unwrap(), Park::Woken);
        runner.join().unwrap();
    }

    #[test]
    fn yield_streak_parks_spinner_and_quiescence_sees_through_it() {
        // Endpoint 0 spins (yield_now in a loop, no wakes, no progress);
        // endpoint 1 parks for good. Without the streak guard the spinner
        // cycles Ready/Running forever and quiescence never fires; with it,
        // the spinner is parked after YIELD_STREAK_PARK yields and both are
        // declared deadlocked.
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let spinner = std::thread::spawn(move || {
            s2.start(ep(0));
            let mut yields = 0u32;
            loop {
                yields += 1;
                match s2.yield_now(ep(0), SimTime::ZERO) {
                    Park::Woken => {
                        assert!(yields < 10_000, "spinner was never parked");
                    }
                    Park::Deadlock => break,
                }
            }
            s2.finish(ep(0));
            yields
        });
        let s3 = Arc::clone(&s);
        let parker = std::thread::spawn(move || {
            s3.start(ep(1));
            let verdict = s3.park(ep(1), SimTime::ZERO);
            s3.finish(ep(1));
            verdict
        });
        let yields = spinner.join().unwrap();
        assert!(
            yields >= YIELD_STREAK_PARK,
            "spinner parked too eagerly after {yields} yields"
        );
        assert_eq!(parker.join().unwrap(), Park::Deadlock);
    }

    #[test]
    fn wake_resets_yield_streak() {
        // A spinner that keeps receiving wakes between yields must never be
        // converted to a park.
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.start(ep(0));
        for _ in 0..(YIELD_STREAK_PARK * 4) {
            s.wake(ep(0));
            assert_eq!(s.yield_now(ep(0), SimTime::ZERO), Park::Woken);
        }
        s.finish(ep(0));
    }

    #[test]
    fn pool_bounds_concurrent_execution() {
        let n = 16;
        let workers = 3;
        let s = Arc::new(Scheduler::new(n));
        s.set_workers(workers);
        for i in 0..n {
            s.register(ep(i));
        }
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..n {
            let (s, live, peak) = (Arc::clone(&s), Arc::clone(&live), Arc::clone(&peak));
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                for _ in 0..5 {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                    // Keep the slot's streak clear so the yield stays
                    // cooperative (this test exercises permits, not parking).
                    s.wake(ep(i));
                    s.yield_now(ep(i), SimTime::ZERO);
                }
                s.finish(ep(i));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= workers,
            "observed concurrency {} exceeds the {} worker permits",
            peak.load(Ordering::SeqCst),
            workers
        );
        assert!(s.peak_running() <= workers);
    }

    #[test]
    fn lowest_virtual_time_ready_process_runs_first() {
        // Pool of 2. Endpoints 0 and 1 get the permits at registration; 2 and
        // 3 queue at virtual time 0. Endpoint 0 yields at t = 5 ms: the freed
        // permit must cycle through the earlier-time ready slots (2, then 3)
        // before endpoint 0 is re-dispatched.
        let s = Arc::new(Scheduler::new(4));
        s.set_workers(2);
        for i in 0..4 {
            s.register(ep(i));
        }
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        {
            let (s, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.start(ep(0));
                s.yield_now(ep(0), SimTime::from_millis(5));
                order.lock().unwrap().push(0usize);
                s.finish(ep(0));
            }));
        }
        for i in [2usize, 3] {
            let (s, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                order.lock().unwrap().push(i);
                s.finish(ep(i));
            }));
        }
        // The main thread acts as endpoint 1's carrier and never yields, so
        // exactly one permit cycles among 0, 2 and 3.
        s.start(ep(1));
        for h in handles {
            h.join().unwrap();
        }
        s.finish(ep(1));
        assert_eq!(*order.lock().unwrap(), vec![2, 3, 0]);
    }
}
