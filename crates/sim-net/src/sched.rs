//! The schedulable-process execution layer: a bounded worker pool over which
//! any number of simulated processes multiplex.
//!
//! The original runtime gave every simulated process its own OS thread and let
//! them all run (and block) freely; blocking receives waited on a channel with
//! a 20 s real-time timeout that doubled as the deadlock detector. That design
//! tops out at a few dozen processes: beyond that the host drowns in runnable
//! threads, runs become timing-sensitive, and every deadlock test burns its
//! timeout for real. Reaching the paper's 256-rank evaluations (512 simulated
//! processes at dual replication) needs the execution layer this module
//! provides:
//!
//! * Each simulated process still owns a *carrier* thread (its stack is where
//!   the application closure lives), but carriers are inert by default: a
//!   carrier only executes while it holds one of the scheduler's `workers`
//!   run permits. At most `workers` simulated processes are ever runnable
//!   concurrently, regardless of how many the job launches.
//! * The run queue is keyed by **virtual time**: when permits free up, the
//!   ready process with the smallest virtual clock runs first. This keeps the
//!   simulation close to the virtual-time frontier and makes runs largely
//!   insensitive to host scheduling.
//! * Blocking waits go through a **park/unpark protocol** instead of timed
//!   channel receives. A process with nothing to do parks (releasing its
//!   permit); every message delivery wakes its destination. A wake that races
//!   ahead of the park leaves a *token* the park consumes, so no wake-up is
//!   ever lost.
//! * Deadlock detection becomes a **quiescence check**: if no process is
//!   running or ready and at least one unfinished process is parked with no
//!   pending wake token, no message can ever arrive again — the parked
//!   processes are deadlocked. The verdict is exact and instantaneous, unlike
//!   the old real-time timeout (which stays in place only for endpoints driven
//!   manually, outside the scheduler).

use crate::fabric::EndpointId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lower bound on the worker-pool size. With a single permit, a process
/// busy-polling a request (`MPI_Test` loops) could monopolise execution; two
/// permits guarantee the peer that must satisfy the request can always be
/// dispatched alongside the poller.
pub const MIN_WORKERS: usize = 2;

/// Verdict returned by [`Scheduler::park`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Park {
    /// A wake-up arrived (a message was delivered, or raced ahead of the
    /// park); the caller should re-poll its queues.
    Woken,
    /// The scheduler detected quiescence: every unfinished process is parked
    /// and no wake-up is pending. The simulated application is deadlocked.
    Deadlock,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Not registered with the scheduler (endpoints driven manually keep the
    /// legacy timed-wait path).
    Unmanaged,
    /// Registered and runnable, waiting in the run queue for a permit.
    Ready,
    /// Holding a run permit; its carrier thread is executing.
    Running,
    /// Blocked in [`Scheduler::park`] with its permit released.
    Parked,
    /// Its carrier finished (application returned, crashed, or panicked).
    Finished,
    /// Marked deadlocked by the quiescence check; its carrier is being told.
    Deadlocked,
}

#[derive(Debug)]
struct Slot {
    phase: Phase,
    /// Wake-up that raced ahead of a park; consumed by the next park.
    token: bool,
    /// Virtual time at the process's last scheduling interaction; the run
    /// queue priority.
    vtime: SimTime,
}

#[derive(Debug)]
struct SchedState {
    workers: usize,
    running: usize,
    peak_running: usize,
    slots: Vec<Slot>,
    /// Min-heap of (virtual time, FIFO tiebreak, endpoint index) over Ready
    /// slots. Entries are validated against the slot phase when popped.
    ready: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    ready_seq: u64,
}

/// The scheduler: one per [`crate::Fabric`], sized to its endpoint count.
pub struct Scheduler {
    state: Mutex<SchedState>,
    /// One condition variable per endpoint, all tied to `state`'s mutex.
    cvs: Vec<Condvar>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.lock();
        f.debug_struct("Scheduler")
            .field("capacity", &g.slots.len())
            .field("workers", &g.workers)
            .field("running", &g.running)
            .finish()
    }
}

/// `min(available cores, n)` clamped to at least [`MIN_WORKERS`] — the default
/// pool size for an `n`-process job.
pub fn default_workers(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    cores.min(n.max(1)).max(MIN_WORKERS)
}

impl Scheduler {
    /// A scheduler for `n` simulated processes with the default worker count.
    pub fn new(n: usize) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                workers: default_workers(n),
                running: 0,
                peak_running: 0,
                slots: (0..n)
                    .map(|_| Slot {
                        phase: Phase::Unmanaged,
                        token: false,
                        vtime: SimTime::ZERO,
                    })
                    .collect(),
                ready: BinaryHeap::new(),
                ready_seq: 0,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of process slots.
    pub fn capacity(&self) -> usize {
        self.cvs.len()
    }

    /// The current worker-pool size.
    pub fn workers(&self) -> usize {
        self.lock().workers
    }

    /// Resize the worker pool (clamped to [`MIN_WORKERS`]). Takes effect
    /// immediately: a grown pool dispatches more ready processes on the spot.
    pub fn set_workers(&self, workers: usize) {
        let mut g = self.lock();
        g.workers = workers.max(MIN_WORKERS);
        self.dispatch(&mut g);
    }

    /// Highest number of simultaneously running processes observed so far —
    /// the proof that execution concurrency stayed within the pool bound.
    pub fn peak_running(&self) -> usize {
        self.lock().peak_running
    }

    /// Is this endpoint under scheduler management?
    pub fn is_managed(&self, e: EndpointId) -> bool {
        self.lock().slots[e.0].phase != Phase::Unmanaged
    }

    /// Put endpoint `e` under scheduler management, queueing it to run. Must
    /// be called before the process's carrier thread calls [`Scheduler::start`].
    /// Re-registering a finished slot is allowed (recovery forks a replacement
    /// process under the same physical identity).
    pub fn register(&self, e: EndpointId) {
        let mut g = self.lock();
        let phase = g.slots[e.0].phase;
        assert!(
            matches!(
                phase,
                Phase::Unmanaged | Phase::Finished | Phase::Deadlocked
            ),
            "endpoint {} registered while still {:?}",
            e.0,
            phase
        );
        g.slots[e.0] = Slot {
            phase: Phase::Ready,
            token: false,
            vtime: SimTime::ZERO,
        };
        let seq = g.ready_seq;
        g.ready_seq += 1;
        g.ready.push(Reverse((SimTime::ZERO, seq, e.0)));
        self.dispatch(&mut g);
    }

    /// Block the calling carrier thread until its process is granted a run
    /// permit. Called once, at carrier start-up, after [`Scheduler::register`].
    pub fn start(&self, e: EndpointId) {
        let mut g = self.lock();
        loop {
            match g.slots[e.0].phase {
                Phase::Running => return,
                Phase::Ready => g = self.wait(e, g),
                other => panic!("start() on endpoint {} in phase {:?}", e.0, other),
            }
        }
    }

    /// Park the calling process: release its permit and block until a wake-up
    /// arrives (then re-acquire a permit) or the quiescence check declares the
    /// job deadlocked. `now` is the process's current virtual time, used as
    /// its run-queue priority when it is woken.
    ///
    /// If a wake-up raced ahead of this call, the pending token is consumed
    /// and the process keeps running without ever blocking.
    pub fn park(&self, e: EndpointId, now: SimTime) -> Park {
        let mut g = self.lock();
        debug_assert_eq!(g.slots[e.0].phase, Phase::Running, "park while not running");
        g.slots[e.0].vtime = now;
        if g.slots[e.0].token {
            g.slots[e.0].token = false;
            return Park::Woken;
        }
        g.slots[e.0].phase = Phase::Parked;
        g.running -= 1;
        self.dispatch(&mut g);
        self.check_quiescence(&mut g);
        loop {
            match g.slots[e.0].phase {
                Phase::Running => return Park::Woken,
                Phase::Deadlocked => {
                    // The carrier resumes to unwind with a deadlock report; it
                    // is genuinely executing again, so restore the accounting
                    // (teardown may briefly exceed the pool bound).
                    g.slots[e.0].phase = Phase::Running;
                    g.running += 1;
                    return Park::Deadlock;
                }
                _ => g = self.wait(e, g),
            }
        }
    }

    /// Wake endpoint `e` because a message was just delivered to its queue.
    /// Parked processes are moved to the run queue; running (or ready)
    /// processes get a token so a park racing with this wake returns
    /// immediately. Unmanaged and finished slots ignore wakes.
    pub fn wake(&self, e: EndpointId) {
        let mut g = self.lock();
        match g.slots[e.0].phase {
            Phase::Parked => {
                g.slots[e.0].phase = Phase::Ready;
                let seq = g.ready_seq;
                g.ready_seq += 1;
                let vtime = g.slots[e.0].vtime;
                g.ready.push(Reverse((vtime, seq, e.0)));
                self.dispatch(&mut g);
            }
            Phase::Running | Phase::Ready => g.slots[e.0].token = true,
            Phase::Unmanaged | Phase::Finished | Phase::Deadlocked => {}
        }
    }

    /// Cooperatively yield: release the permit, requeue at priority `now`, and
    /// block until re-dispatched. Lets lower-virtual-time processes run; the
    /// PML calls this from busy-poll loops (`MPI_Test` spinning) so a poller
    /// can never monopolise the pool. A pending wake token makes this a no-op
    /// (there is fresh work; keep running).
    pub fn yield_now(&self, e: EndpointId, now: SimTime) {
        let mut g = self.lock();
        if g.slots[e.0].phase != Phase::Running {
            return;
        }
        if g.slots[e.0].token {
            g.slots[e.0].token = false;
            return;
        }
        g.slots[e.0].phase = Phase::Ready;
        g.slots[e.0].vtime = now;
        g.running -= 1;
        let seq = g.ready_seq;
        g.ready_seq += 1;
        g.ready.push(Reverse((now, seq, e.0)));
        self.dispatch(&mut g);
        loop {
            match g.slots[e.0].phase {
                Phase::Running => return,
                _ => g = self.wait(e, g),
            }
        }
    }

    /// Mark endpoint `e` finished (application returned, crashed or
    /// panicked), releasing its permit. Idempotent.
    pub fn finish(&self, e: EndpointId) {
        let mut g = self.lock();
        match g.slots[e.0].phase {
            Phase::Unmanaged | Phase::Finished => return,
            Phase::Running => g.running -= 1,
            Phase::Ready | Phase::Parked | Phase::Deadlocked => {}
        }
        g.slots[e.0].phase = Phase::Finished;
        g.slots[e.0].token = false;
        self.dispatch(&mut g);
        self.check_quiescence(&mut g);
    }

    /// Number of currently parked processes (diagnostics).
    pub fn parked_count(&self) -> usize {
        self.lock()
            .slots
            .iter()
            .filter(|s| s.phase == Phase::Parked)
            .count()
    }

    fn wait<'a>(
        &'a self,
        e: EndpointId,
        g: MutexGuard<'a, SchedState>,
    ) -> MutexGuard<'a, SchedState> {
        self.cvs[e.0].wait(g).unwrap_or_else(|err| err.into_inner())
    }

    /// Grant permits to the lowest-virtual-time ready processes while the pool
    /// has room.
    fn dispatch(&self, g: &mut SchedState) {
        while g.running < g.workers {
            let Some(Reverse((_, _, idx))) = g.ready.pop() else {
                break;
            };
            if g.slots[idx].phase != Phase::Ready {
                continue; // stale entry (slot was finished during teardown)
            }
            g.slots[idx].phase = Phase::Running;
            g.running += 1;
            g.peak_running = g.peak_running.max(g.running);
            self.cvs[idx].notify_all();
        }
    }

    /// The quiescence check: with nothing running, nothing ready and no wake
    /// token pending, parked processes can never be woken again — declare them
    /// deadlocked and wake their carriers with the verdict.
    fn check_quiescence(&self, g: &mut SchedState) {
        if g.running != 0 {
            return;
        }
        let mut any_parked = false;
        for s in &g.slots {
            match s.phase {
                Phase::Ready => return, // runnable work still exists
                Phase::Parked => {
                    if s.token {
                        return; // a wake-up is already pending
                    }
                    any_parked = true;
                }
                _ => {}
            }
        }
        if !any_parked {
            return;
        }
        for (i, s) in g.slots.iter_mut().enumerate() {
            if s.phase == Phase::Parked {
                s.phase = Phase::Deadlocked;
                self.cvs[i].notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn ep(i: usize) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn register_then_start_grants_permit() {
        let s = Scheduler::new(4);
        s.set_workers(2);
        s.register(ep(0));
        assert!(s.is_managed(ep(0)));
        assert!(!s.is_managed(ep(1)));
        s.start(ep(0)); // must not block: a permit is free
        s.finish(ep(0));
    }

    #[test]
    fn wake_before_park_leaves_token() {
        let s = Scheduler::new(2);
        s.register(ep(0));
        s.start(ep(0));
        s.wake(ep(0)); // races ahead of the park
        assert_eq!(s.park(ep(0), SimTime::ZERO), Park::Woken);
        s.finish(ep(0));
    }

    #[test]
    fn park_wake_roundtrip_across_threads() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let h2 = std::thread::spawn(move || {
            s3.start(ep(1));
            std::thread::sleep(std::time::Duration::from_millis(20));
            s3.wake(ep(0));
            s3.finish(ep(1));
        });
        assert_eq!(h.join().unwrap(), Park::Woken);
        h2.join().unwrap();
    }

    #[test]
    fn quiescence_declares_parked_processes_deadlocked() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let mut handles = Vec::new();
        for i in 0..2 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                let verdict = s.park(ep(i), SimTime::ZERO);
                s.finish(ep(i));
                verdict
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Park::Deadlock);
        }
    }

    #[test]
    fn no_quiescence_while_one_process_runs() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let parker = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let runner = std::thread::spawn(move || {
            s3.start(ep(1));
            // Keep running for a while, then deliver the wake-up: the parked
            // peer must not be declared deadlocked in the meantime.
            std::thread::sleep(std::time::Duration::from_millis(30));
            s3.wake(ep(0));
            s3.finish(ep(1));
        });
        assert_eq!(parker.join().unwrap(), Park::Woken);
        runner.join().unwrap();
    }

    #[test]
    fn pool_bounds_concurrent_execution() {
        let n = 16;
        let workers = 3;
        let s = Arc::new(Scheduler::new(n));
        s.set_workers(workers);
        for i in 0..n {
            s.register(ep(i));
        }
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..n {
            let (s, live, peak) = (Arc::clone(&s), Arc::clone(&live), Arc::clone(&peak));
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                for _ in 0..5 {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                    s.yield_now(ep(i), SimTime::ZERO);
                }
                s.finish(ep(i));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= workers,
            "observed concurrency {} exceeds the {} worker permits",
            peak.load(Ordering::SeqCst),
            workers
        );
        assert!(s.peak_running() <= workers);
    }

    #[test]
    fn lowest_virtual_time_ready_process_runs_first() {
        // Pool of 2. Endpoints 0 and 1 get the permits at registration; 2 and
        // 3 queue at virtual time 0. Endpoint 0 yields at t = 5 ms: the freed
        // permit must cycle through the earlier-time ready slots (2, then 3)
        // before endpoint 0 is re-dispatched.
        let s = Arc::new(Scheduler::new(4));
        s.set_workers(2);
        for i in 0..4 {
            s.register(ep(i));
        }
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        {
            let (s, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.start(ep(0));
                s.yield_now(ep(0), SimTime::from_millis(5));
                order.lock().unwrap().push(0usize);
                s.finish(ep(0));
            }));
        }
        for i in [2usize, 3] {
            let (s, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                order.lock().unwrap().push(i);
                s.finish(ep(i));
            }));
        }
        // The main thread acts as endpoint 1's carrier and never yields, so
        // exactly one permit cycles among 0, 2 and 3.
        s.start(ep(1));
        for h in handles {
            h.join().unwrap();
        }
        s.finish(ep(1));
        assert_eq!(*order.lock().unwrap(), vec![2, 3, 0]);
    }
}
