//! The schedulable-process execution layer: direct-handoff dispatch over a
//! bounded pool of run permits.
//!
//! The original runtime gave every simulated process its own OS thread and let
//! them all run (and block) freely; blocking receives waited on a channel with
//! a 20 s real-time timeout that doubled as the deadlock detector. That design
//! tops out at a few dozen processes. PR 2 replaced it with a bounded worker
//! pool fronted by a single mutex + condvar run queue; PR 3 added a lock-free
//! wake-token fast path for wakes to already-runnable targets. What remained —
//! and dominated the 256-rank class-D wall clock — was the *dispatch* path:
//! every true blocking wait still paid one global-run-queue handshake (lock,
//! heap ops, condvar signal on the wake side; lock, heap ops, condvar wait on
//! the park side). This module removes that handshake from the hot path:
//!
//! * **Run permits, not worker threads.** The pool is a counter of `workers`
//!   run permits. Each simulated process still owns a *carrier* thread (its
//!   stack is where the application closure lives — see
//!   [`crate::carrier::CarrierPool`] for how those threads are reused across
//!   processes and jobs), but a carrier only executes while its process holds
//!   a permit. At most `workers` processes are ever runnable concurrently.
//! * **Direct handoff.** When a running process parks, yields its slice, or
//!   finishes, its carrier *hands its permit directly* to the
//!   lowest-virtual-time ready process: one CAS on the target's phase word and
//!   one signal on the target's private seat. No global mutex, no global
//!   condvar, and the permit counter does not move — which is also the
//!   linchpin of the quiescence argument below.
//! * **Sharded ready queues with virtual-time-aware stealing.** Ready
//!   processes queue in small per-shard heaps (a slot's home shard is
//!   `slot % shards`). A departing carrier scans the shard tops and takes the
//!   global lowest-virtual-time entry, so dispatch order is identical to the
//!   old single-queue design; a pop from the departing slot's own shard counts
//!   as a *handoff*, a pop from another shard as a *steal* (both are direct
//!   dispatches — the distinction only measures locality).
//! * **Cold path.** Only when a wake finds an idle permit (or the last permit
//!   is released with ready work racing in) does dispatch go through the
//!   permit counter; those grants are counted as `condvar_waits` in
//!   [`crate::stats::NetStats`] — the dispatches that would each have been a
//!   full global-queue handshake in the PR 3 design.
//! * **Deadlock detection stays exact.** The quiescence check — no permit in
//!   circulation, nothing ready, no wake token pending, at least one
//!   unfinished process parked — runs under a small verdict mutex, reached
//!   only when the *last* permit is released.
//!
//! # The extended store-load (Dekker) argument
//!
//! PR 3's wake protocol survives unchanged: a waker stores the slot's wake
//! token *before* loading its phase; a parker stores the `Parked` phase
//! *before* re-checking the token (both SeqCst). In every interleaving one
//! side sees the other's write, so no wake is lost. Direct handoff adds two
//! new races, both closed by making the permit count an invariant:
//!
//! 1. **Handoff vs. quiescence.** A permit being handed off is *never
//!    decremented from the counter*: the departing carrier first publishes its
//!    own non-`Running` phase, then pops a target and CASes it
//!    `Ready → Running` — all while its permit still counts. The quiescence
//!    check requires the counter to be zero, so it can never fire while any
//!    handoff is in flight. A carrier only decrements the counter when it
//!    found *nothing* to hand off to, and the carrier that decrements it to
//!    zero re-checks the queues (rescue) and then runs the verdict — in SeqCst
//!    order its decrement precedes those reads, and any waker's
//!    `push-then-read-counter` either saw the pre-decrement value (so the
//!    decrementer's later scan sees the push) or acquires an idle permit
//!    itself. Either way ready work cannot be stranded.
//! 2. **Unpark vs. quiescence.** An unparking waker orders its writes as
//!    *token set → phase `Parked → Ready` (CAS) → token clear → queue push*.
//!    A slot mid-unpark is therefore always observed as either
//!    (`Parked`, token set) or (`Ready`, anything) — never as a tokenless
//!    parked slot — so the verdict scan (which aborts on either observation)
//!    cannot misclassify it. The verdict itself marks slots
//!    `Parked → Deadlocked` by CAS; in a scheduler-managed job every wake
//!    originates from a carrier whose own permit keeps the counter non-zero
//!    until after its flush completes, so by the time the verdict reads a zero
//!    counter all such wakes are fully visible and the CASes cannot fail. (An
//!    *external* thread waking a slot in the verdict's window would lose the
//!    CAS race; the verdict then rolls its marks back, and the idle loop
//!    retries the rescue — the waker's own dispatch may have backed off
//!    against the rescuer's speculative permit, so the rescuer re-pops until
//!    the unparked slot's queue push lands.) Because marks can be rolled
//!    back, a `Deadlocked` phase is not final until the verdict returns, and
//!    both sides that can act on one synchronise on the verdict mutex — held
//!    across the whole mark/rollback sequence — before treating it as
//!    committed: a carrier (condvars may wake spuriously) only consumes the
//!    mark, and a waker only discards its wake token, if the mark is still
//!    present after the mutex is acquired. A transient mark can therefore
//!    neither surface as a false deadlock report nor swallow a wake.
//!
//! Busy-poll loops (`MPI_Test` spinning) are still converted into real parks
//! after [`YIELD_STREAK_PARK`] fruitless yields, so spinners join the
//! quiescence accounting instead of masking a deadlock forever.
//!
//! # The wake protocol under direct mailbox ingest
//!
//! Since the single-pass delivery pipeline (DESIGN.md §5.3), the transport
//! below this scheduler is not a channel but the fabric's per-endpoint
//! mailbox, which senders append to *in place*. The store-load argument
//! above is what makes that safe, and it must be read together with the
//! fabric's ingest order:
//!
//! * **Ingest happens-before wake.** `Fabric::deliver`/`deliver_batch` raise
//!   the inbox's advisory count and append to the source's stripe (all SeqCst
//!   / under the stripe mutex) *before* calling [`Scheduler::wake`]. So by
//!   the time a wake token is set, the message it announces is visible to
//!   any subsequent inbox sweep.
//! * **Parker re-checks after publishing.** [`Scheduler::park`] consumes the
//!   token after storing the `Parked` phase. A receiver whose pre-park sweep
//!   ran *before* the ingest therefore either sees the token on the re-check
//!   (the waker's token store completed) or is unparked through the ordinary
//!   `Parked` path (the waker's phase load saw `Parked`). In both cases the
//!   caller re-polls and its next sweep finds the message: no delivery can
//!   sleep in a mailbox while its destination parks forever.
//! * **Quiescence still counts mailbox residents as in-flight work.** A
//!   message sitting in a mailbox was put there by a carrier that had not yet
//!   reached its next blocking boundary — its run permit still counts, so
//!   the verdict cannot fire; once it parks, the wake it issued at ingest
//!   time has fully completed (wakes precede the permit release), so either
//!   the destination is `Ready`/token-carrying (verdict aborts) or it
//!   already swept the message.
//!
//! The scheduler itself needed no code change for this: the token protocol
//! never assumed anything about *where* the message lives, only that wakes
//! follow visibility — which the fabric's ingest order (re)establishes.

use crate::carrier::coro::CoroRuntime;
use crate::fabric::EndpointId;
use crate::stats::NetStats;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Hard lower bound on the worker-pool size. A single permit is allowed since
/// PR 3's yield-streak guard ([`YIELD_STREAK_PARK`]): a busy-poller can no
/// longer monopolise the only permit, because a no-progress spin is converted
/// into a real park that hands the permit to the peer that can satisfy it.
/// `workers == 1` is the *deterministic replay* configuration: with one
/// permit, dispatch is a pure function of the virtual-time-ordered ready
/// queues, so two identical runs schedule identically.
pub const MIN_WORKERS: usize = 1;

/// Number of consecutive no-progress cooperative yields after which
/// [`Scheduler::yield_now`] parks the process for real. A spinner that never
/// receives a wake token between yields is making no progress; parking it (a)
/// returns its permit to processes that can progress and (b) lets the
/// quiescence check see through busy-poll loops — a job whose every unfinished
/// process is either parked or fruitlessly spinning is deadlocked, and is now
/// reported as such instead of spinning forever. Any message delivery unparks
/// the process again, so a spinner whose condition *can* still be satisfied
/// only trades a few empty polls for a park/unpark round-trip.
pub const YIELD_STREAK_PARK: u32 = 64;

/// Upper bound on the number of ready-queue shards. Ready pushes lock only
/// the slot's home shard (`slot % shards`); dispatchers peek every shard to
/// honour global lowest-virtual-time order. Shards exist to keep cross-core
/// pushes and pops from contending, so the actual count is
/// `min(available cores, capacity, MAX_READY_SHARDS)` — a single-core host
/// gets exactly one shard and single-lock pops.
const MAX_READY_SHARDS: usize = 8;

/// Verdict returned by [`Scheduler::park`] and [`Scheduler::yield_now`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Park {
    /// A wake-up arrived (a message was delivered, or raced ahead of the
    /// park); the caller should re-poll its queues.
    Woken,
    /// The scheduler detected quiescence: every unfinished process is parked
    /// and no wake-up is pending. The simulated application is deadlocked.
    Deadlock,
}

/// How a [`Scheduler::wake`] call was served. The fabric records these in its
/// [`crate::stats::NetStats`] so experiments can quantify wake coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeOutcome {
    /// The target was parked: it was moved to the ready queues (and granted an
    /// idle permit if one was free).
    Unparked,
    /// Fast path: the target was already running, ready, or had a wake token
    /// pending — the wake collapsed into the token without touching any queue.
    Coalesced,
    /// The target is unmanaged or finished; the wake had no effect.
    Ignored,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Phase {
    /// Not registered with the scheduler (endpoints driven manually keep the
    /// legacy timed-wait path).
    Unmanaged = 0,
    /// Registered and runnable, waiting in a ready shard for a permit.
    Ready = 1,
    /// Holding a run permit; its carrier thread is executing.
    Running = 2,
    /// Blocked in [`Scheduler::park`] with its permit given away.
    Parked = 3,
    /// Its carrier finished (application returned, crashed, or panicked).
    Finished = 4,
    /// Marked deadlocked by the quiescence check; its carrier is being told.
    Deadlocked = 5,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            1 => Phase::Ready,
            2 => Phase::Running,
            3 => Phase::Parked,
            4 => Phase::Finished,
            5 => Phase::Deadlocked,
            _ => Phase::Unmanaged,
        }
    }
}

/// A carrier's private blocking point: one tiny mutex + condvar per slot.
/// Carriers wait here (and only here); dispatchers store the slot's phase
/// first, then take the mutex and notify, so a waiter either sees the new
/// phase on its pre-wait check or is woken by the notify.
#[derive(Default)]
struct Seat {
    m: Mutex<()>,
    cv: Condvar,
}

type ReadyEntry = Reverse<(SimTime, u64, usize)>;

/// The scheduler: one per [`crate::Fabric`], sized to its endpoint count.
pub struct Scheduler {
    /// Authoritative per-slot phase. All transitions are single atomic stores
    /// or CASes (see the module docs for the ordering protocol).
    phase: Vec<AtomicU8>,
    /// Pending wake token per slot. Set lock-free by `wake`; consumed by the
    /// slot's own `park`/`yield_now`.
    token: Vec<AtomicBool>,
    /// Virtual time (nanoseconds) at the slot's last scheduling interaction;
    /// its ready-queue priority when unparked by a waker.
    vtime: Vec<AtomicU64>,
    /// Consecutive no-progress yields; drives the busy-poll quiescence guard.
    /// Written by the slot's own carrier and reset by unparking wakers.
    streak: Vec<AtomicU32>,
    seats: Vec<Seat>,
    /// Sharded ready queues; a slot's home shard is `slot % shards.len()`.
    /// Entries are (virtual time, FIFO tiebreak, slot) min-heaps, validated
    /// against the slot phase (CAS `Ready → Running`) when popped.
    shards: Vec<Mutex<BinaryHeap<ReadyEntry>>>,
    /// Advisory count of entries across all ready shards, maintained as an
    /// over-approximation (incremented before a push inserts, decremented
    /// after a pop removes), so a zero read proves every shard is empty.
    /// Lets the hot peek paths skip the shard-lock sweep when nothing is
    /// ready — the common case for a spinner's requeue check.
    ready_entries: AtomicUsize,
    ready_seq: AtomicU64,
    /// Run permits currently in circulation. Direct handoffs transfer a
    /// permit without touching this counter; only the acquire (cold dispatch)
    /// and release (nothing to hand off to) paths move it.
    running: AtomicUsize,
    workers: AtomicUsize,
    peak_running: AtomicUsize,
    /// Serialises quiescence verdicts and last-permit rescues (the cold path).
    verdict_lock: Mutex<()>,
    stats: Arc<NetStats>,
    /// Coroutine carrier runtime, when the job runs in
    /// [`crate::carrier::CarrierMode::Coroutine`]. Unset (thread mode), the
    /// dispatch sites signal per-slot seats; set, the same sites become
    /// user-space stack switches: hot dispatches defer a direct switch on
    /// the departing carrier's host thread, cold dispatches queue the target
    /// for a worker, and blocking becomes [`CoroRuntime::suspend_current`].
    coro: OnceLock<Arc<CoroRuntime>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("capacity", &self.phase.len())
            .field("workers", &self.workers.load(Ordering::SeqCst))
            .field("running", &self.running.load(Ordering::SeqCst))
            .finish()
    }
}

/// `min(available cores, n)` clamped to at least 2 — the default pool size
/// for an `n`-process job. The default keeps two permits even on one-core
/// hosts so a blocking request and the peer that satisfies it can always
/// interleave without waiting out a yield streak; pass an explicit
/// `workers = 1` (see [`MIN_WORKERS`]) for deterministic replay.
pub fn default_workers(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4);
    cores.min(n.max(1)).max(2)
}

impl Scheduler {
    /// A scheduler for `n` simulated processes with the default worker count
    /// and private statistics counters (unit tests; the fabric shares its
    /// [`NetStats`] via [`Scheduler::with_stats`]).
    pub fn new(n: usize) -> Self {
        Scheduler::with_stats(n, Arc::new(NetStats::new()))
    }

    /// A scheduler for `n` simulated processes recording its dispatch
    /// counters (handoffs, steals, cold dispatches) into `stats`.
    pub fn with_stats(n: usize, stats: Arc<NetStats>) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(4);
        Scheduler::with_shards(n, stats, MAX_READY_SHARDS.min(n.max(1)).min(cores))
    }

    /// [`Scheduler::with_stats`] with an explicit ready-shard count. Exposed
    /// so tests (and hosts that want to override the core-count heuristic)
    /// can exercise the multi-shard scan and steal paths deterministically.
    pub fn with_shards(n: usize, stats: Arc<NetStats>, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        Scheduler {
            phase: (0..n)
                .map(|_| AtomicU8::new(Phase::Unmanaged as u8))
                .collect(),
            token: (0..n).map(|_| AtomicBool::new(false)).collect(),
            vtime: (0..n).map(|_| AtomicU64::new(0)).collect(),
            streak: (0..n).map(|_| AtomicU32::new(0)).collect(),
            seats: (0..n).map(|_| Seat::default()).collect(),
            shards: (0..shards).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            ready_entries: AtomicUsize::new(0),
            ready_seq: AtomicU64::new(0),
            running: AtomicUsize::new(0),
            workers: AtomicUsize::new(default_workers(n)),
            peak_running: AtomicUsize::new(0),
            verdict_lock: Mutex::new(()),
            stats,
            coro: OnceLock::new(),
        }
    }

    /// Switch this scheduler to coroutine carriers: dispatches resume
    /// coroutines in `rt` instead of signalling seats. Must be called before
    /// any slot blocks, and every registered slot must have been installed
    /// with [`CoroRuntime::spawn`] — a dispatcher that targets a slot with
    /// no coroutine would spin forever waiting for its context. Can only be
    /// attached once per scheduler (one job, one runtime).
    pub fn attach_coro(&self, rt: Arc<CoroRuntime>) {
        assert_eq!(
            rt.capacity(),
            self.capacity(),
            "coroutine runtime sized differently from the scheduler"
        );
        assert!(
            self.coro.set(rt).is_ok(),
            "coroutine runtime already attached"
        );
    }

    /// The attached coroutine runtime, if any.
    pub fn coro_runtime(&self) -> Option<&Arc<CoroRuntime>> {
        self.coro.get()
    }

    fn load_phase(&self, idx: usize) -> Phase {
        Phase::from_u8(self.phase[idx].load(Ordering::SeqCst))
    }

    fn cas_phase(&self, idx: usize, from: Phase, to: Phase) -> bool {
        self.phase[idx]
            .compare_exchange(from as u8, to as u8, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn shard_of(&self, idx: usize) -> usize {
        idx % self.shards.len()
    }

    fn lock_shard(&self, s: usize) -> MutexGuard<'_, BinaryHeap<ReadyEntry>> {
        self.shards[s].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of process slots.
    pub fn capacity(&self) -> usize {
        self.phase.len()
    }

    /// The current worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers.load(Ordering::SeqCst)
    }

    /// Resize the worker pool (clamped to [`MIN_WORKERS`]). Takes effect
    /// immediately: a grown pool dispatches more ready processes on the spot.
    pub fn set_workers(&self, workers: usize) {
        self.workers
            .store(workers.max(MIN_WORKERS), Ordering::SeqCst);
        self.try_dispatch_idle();
    }

    /// Highest number of permits simultaneously in circulation so far — the
    /// proof that execution concurrency stayed within the pool bound.
    pub fn peak_running(&self) -> usize {
        self.peak_running.load(Ordering::SeqCst)
    }

    /// Number of run permits currently in circulation (diagnostics; racy by
    /// nature — a handoff in flight counts as one permit).
    pub fn running(&self) -> usize {
        self.running.load(Ordering::SeqCst)
    }

    /// Is this endpoint under scheduler management?
    pub fn is_managed(&self, e: EndpointId) -> bool {
        self.load_phase(e.0) != Phase::Unmanaged
    }

    /// Number of currently parked processes (diagnostics).
    pub fn parked_count(&self) -> usize {
        (0..self.phase.len())
            .filter(|&i| self.load_phase(i) == Phase::Parked)
            .count()
    }

    /// Put endpoint `e` under scheduler management, queueing it to run. Must
    /// be called before the process's carrier thread calls [`Scheduler::start`].
    /// Re-registering a finished slot is allowed (recovery forks a replacement
    /// process under the same physical identity).
    pub fn register(&self, e: EndpointId) {
        let phase = self.load_phase(e.0);
        assert!(
            matches!(
                phase,
                Phase::Unmanaged | Phase::Finished | Phase::Deadlocked
            ),
            "endpoint {} registered while still {:?}",
            e.0,
            phase
        );
        self.vtime[e.0].store(0, Ordering::Relaxed);
        self.streak[e.0].store(0, Ordering::Relaxed);
        self.token[e.0].store(false, Ordering::SeqCst);
        self.phase[e.0].store(Phase::Ready as u8, Ordering::SeqCst);
        self.push_ready(e.0, SimTime::ZERO);
        self.try_dispatch_idle();
    }

    /// Block the calling carrier thread until its process is granted a run
    /// permit. Called once, at carrier start-up, after [`Scheduler::register`].
    pub fn start(&self, e: EndpointId) {
        let seat = &self.seats[e.0];
        let mut g = seat.m.lock().unwrap_or_else(|err| err.into_inner());
        loop {
            match self.load_phase(e.0) {
                Phase::Running => return,
                Phase::Ready => {
                    g = seat.cv.wait(g).unwrap_or_else(|err| err.into_inner());
                }
                other => panic!("start() on endpoint {} in phase {:?}", e.0, other),
            }
        }
    }

    fn push_ready(&self, idx: usize, vt: SimTime) {
        let seq = self.ready_seq.fetch_add(1, Ordering::SeqCst);
        // Count up *before* inserting so the advisory count never
        // under-reports (a zero read must prove the shards are empty).
        self.ready_entries.fetch_add(1, Ordering::SeqCst);
        self.lock_shard(self.shard_of(idx))
            .push(Reverse((vt, seq, idx)));
    }

    /// Lowest (virtual time, sequence, slot) key over all ready shards and
    /// the shard holding it, or `None` when nothing is ready. Advisory: the
    /// answer may be stale by the time the caller acts on it. The empty case
    /// — every yield of a spinner with idle queues — is answered from the
    /// advisory count without sweeping the shard locks.
    fn best_ready_entry(&self) -> Option<((SimTime, u64, usize), usize)> {
        if self.ready_entries.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut best: Option<((SimTime, u64, usize), usize)> = None;
        for si in 0..self.shards.len() {
            let g = self.lock_shard(si);
            if let Some(&Reverse(top)) = g.peek() {
                if best.map_or(true, |(b, _)| top < b) {
                    best = Some((top, si));
                }
            }
        }
        best
    }

    /// Pop the globally lowest-virtual-time ready slot and transition it to
    /// `Running` (the caller is delivering a permit with this call). Returns
    /// the slot and the shard it came from. Stale entries (slots that were
    /// finished, or re-claimed their own entry) are discarded.
    fn pop_best(&self) -> Option<(usize, usize)> {
        if self.shards.len() == 1 {
            // Single-shard fast path (low-parallelism hosts): peek-and-pop
            // under one lock acquisition per candidate.
            loop {
                if self.ready_entries.load(Ordering::SeqCst) == 0 {
                    return None;
                }
                let popped = self.lock_shard(0).pop();
                let Some(Reverse((_, _, idx))) = popped else {
                    return None;
                };
                self.ready_entries.fetch_sub(1, Ordering::SeqCst);
                if self.cas_phase(idx, Phase::Ready, Phase::Running) {
                    return Some((idx, 0));
                }
            }
        }
        'scan: loop {
            let (key, si) = self.best_ready_entry()?;
            let popped = {
                let mut g = self.lock_shard(si);
                match g.peek() {
                    // The top moved (another dispatcher got there first) and
                    // what remains is worse than what the scan promised:
                    // rescan so dispatch order stays lowest-virtual-time.
                    Some(&Reverse(top)) if top > key => continue 'scan,
                    Some(_) => g.pop(),
                    None => continue 'scan,
                }
            };
            let Some(Reverse((_, _, idx))) = popped else {
                continue 'scan;
            };
            self.ready_entries.fetch_sub(1, Ordering::SeqCst);
            if self.cas_phase(idx, Phase::Ready, Phase::Running) {
                return Some((idx, si));
            }
            // Stale entry (slot finished, or re-claimed by its own carrier).
        }
    }

    /// Store-then-notify on a slot's seat. The phase must already be
    /// published; taking the seat mutex between the store and the notify is
    /// what makes the wake race-free against the waiter's check-then-wait.
    fn signal_seat(&self, idx: usize) {
        let seat = &self.seats[idx];
        drop(seat.m.lock().unwrap_or_else(|err| err.into_inner()));
        // At most one carrier ever waits on a seat.
        seat.cv.notify_one();
    }

    /// Hot dispatch: deliver a permit the caller is handing off on its own
    /// blocking boundary. Thread mode signals the target's seat; coroutine
    /// mode defers a direct stack switch — the departing carrier is about to
    /// suspend, and its suspension switches straight into `idx` without
    /// touching the kernel or even the worker loop.
    fn dispatch_direct(&self, idx: usize) {
        match self.coro.get() {
            Some(rt) => rt.defer_switch(idx),
            None => self.signal_seat(idx),
        }
    }

    /// Cold dispatch: deliver a permit from a context that is *not* about to
    /// suspend (idle-permit grants, verdict wakes, registration). Thread
    /// mode signals the seat; coroutine mode queues the target for a worker
    /// thread to switch into.
    fn dispatch_cold(&self, idx: usize) {
        match self.coro.get() {
            Some(rt) => rt.enqueue_resume(idx),
            None => self.signal_seat(idx),
        }
    }

    /// A carrier leaves the `Running` phase while still holding its permit
    /// (it has already published its new phase): hand the permit directly to
    /// the best ready slot, or release it — and if it was the last permit,
    /// run the rescue/quiescence cold path.
    fn depart(&self, from: usize) {
        // Honour a shrunken pool: handoff keeps permits in circulation
        // forever under continuous ready work, so an over-budget permit must
        // retire here instead of being passed on (ready work then waits for
        // one of the remaining permits, exactly as `set_workers` promises).
        let over_budget = self.running.load(Ordering::SeqCst) > self.workers.load(Ordering::SeqCst);
        if !over_budget {
            if let Some((target, shard)) = self.pop_best() {
                if shard == self.shard_of(from) {
                    self.stats.record_handoff();
                } else {
                    self.stats.record_steal();
                }
                self.dispatch_direct(target);
                return;
            }
        }
        let prev = self.running.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "permit released while none in circulation");
        if prev == 1 {
            self.on_idle();
        }
    }

    /// Grant idle permits to ready slots while the pool has room (the cold
    /// dispatch path: register, wake-of-parked, pool growth).
    fn try_dispatch_idle(&self) {
        loop {
            let r = self.running.load(Ordering::SeqCst);
            if r >= self.workers.load(Ordering::SeqCst) {
                return;
            }
            if self
                .running
                .compare_exchange(r, r + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            match self.pop_best() {
                Some((target, _)) => {
                    // Recorded only once the grant actually backs a running
                    // process — a speculative grant that found nothing is
                    // rolled back below and must not inflate the peak.
                    self.peak_running.fetch_max(r + 1, Ordering::SeqCst);
                    self.stats.record_cold_dispatch();
                    self.dispatch_cold(target);
                }
                None => {
                    let prev = self.running.fetch_sub(1, Ordering::SeqCst);
                    if prev == 1 {
                        // We may have raced the genuine last release; re-run
                        // the rescue/verdict so nothing is stranded.
                        self.on_idle();
                    }
                    return;
                }
            }
        }
    }

    /// Cold path, entered when the last permit was released: rescue any ready
    /// work that raced in, else run the quiescence verdict. Serialised by the
    /// verdict mutex.
    ///
    /// The rescue and the verdict loop together: a waker that unparked a slot
    /// during our speculative permit window saw `running != 0` in its own
    /// `try_dispatch_idle` and backed off, counting on the permit holder — us
    /// — to dispatch its push. If the verdict scan then observes that slot
    /// `Ready`, returning would strand it with zero permits in circulation,
    /// so the verdict reports it and we retry the rescue until the push lands
    /// (it is at most a few instructions behind the phase store) or someone
    /// else acquires a permit.
    fn on_idle(&self) {
        let _g = self
            .verdict_lock
            .lock()
            .unwrap_or_else(|err| err.into_inner());
        loop {
            if self.running.load(Ordering::SeqCst) != 0 {
                // Someone acquired a permit meanwhile; the system is live and
                // that permit's holder inherits responsibility.
                return;
            }
            if self
                .running
                .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            if let Some((target, _)) = self.pop_best() {
                self.peak_running.fetch_max(1, Ordering::SeqCst);
                self.stats.record_cold_dispatch();
                self.dispatch_cold(target);
                return;
            }
            self.running.fetch_sub(1, Ordering::SeqCst);
            if self.quiescence_verdict() {
                return;
            }
            // A ready slot whose queue push is still in flight: give its
            // waker a beat and rescue again.
            std::thread::yield_now();
        }
    }

    /// The quiescence check: with no permit in circulation, nothing ready and
    /// no wake token pending, parked processes can never be woken again —
    /// declare them deadlocked and wake their carriers with the verdict.
    /// Caller holds the verdict mutex and has just observed `running == 0`.
    ///
    /// Returns `true` when the verdict is settled: either deadlock was
    /// declared, or the job is demonstrably live with a responsible permit
    /// holder (a `Running` phase, a non-zero permit counter, a parked slot
    /// with a wake token whose waker has not yet begun its unpark — all of
    /// which guarantee a future dispatcher). Returns `false` when it observed
    /// a `Ready` slot (directly, or via a mark CAS losing to a concurrent
    /// unpark): that slot's waker may have backed off against the caller's
    /// own speculative rescue permit, so the caller must retry the rescue
    /// rather than return and strand the slot.
    fn quiescence_verdict(&self) -> bool {
        let mut parked = Vec::new();
        for i in 0..self.phase.len() {
            match self.load_phase(i) {
                // Runnable work exists (possibly a push still in flight —
                // phase is stored before the queue push). Its waker's
                // dispatch may have deferred to our rescue permit: retry.
                Phase::Ready => return false,
                // A running carrier holds a permit and inherits
                // responsibility for any queued work.
                Phase::Running => return true,
                Phase::Parked => {
                    if self.token[i].load(Ordering::SeqCst) {
                        // A wake is pending and its waker has not yet started
                        // the unpark (the token clears before the push): its
                        // own `try_dispatch_idle` runs after our rescue
                        // permit is gone and cannot have deferred to it.
                        return true;
                    }
                    parked.push(i);
                }
                _ => {}
            }
        }
        if parked.is_empty() || self.running.load(Ordering::SeqCst) != 0 {
            return true;
        }
        // Commit: mark every parked slot. A CAS can only fail if an external
        // (non-carrier) thread unparked the slot inside this window — see the
        // module docs for why carrier-originated wakes are already visible —
        // in which case the job is live: roll the marks back and retry the
        // rescue (the unparked slot is now `Ready`, see above). Carriers and
        // wakers cannot consume a mark mid-sequence — they synchronise on the
        // verdict mutex we hold before acting on `Deadlocked` — so the
        // rollback CASes below always find the marks they set.
        for (k, &i) in parked.iter().enumerate() {
            if !self.cas_phase(i, Phase::Parked, Phase::Deadlocked) {
                for &j in &parked[..k] {
                    let _ = self.cas_phase(j, Phase::Deadlocked, Phase::Parked);
                }
                return false;
            }
        }
        for &i in &parked {
            self.dispatch_cold(i);
        }
        true
    }

    /// Common blocking tail of `park`/`yield_now`: wait on the slot's seat
    /// until a dispatcher delivers a permit or the verdict says deadlock.
    fn block_on_seat(&self, e: usize) -> Park {
        let seat = &self.seats[e];
        let mut g = seat.m.lock().unwrap_or_else(|err| err.into_inner());
        loop {
            match self.load_phase(e) {
                Phase::Running => return Park::Woken,
                Phase::Deadlocked => {
                    // `Deadlocked` may be transient: the verdict marks slots
                    // `Parked → Deadlocked` one at a time and rolls the marks
                    // back if a later CAS loses to an external wake. A
                    // spuriously-woken carrier must not treat the mark as
                    // final while the verdict is still deciding, so it
                    // synchronises on the verdict mutex (held across the
                    // whole mark/rollback sequence) before consuming it. The
                    // seat lock is dropped first — the verdict signals seats
                    // while holding the verdict mutex, and taking them in the
                    // opposite order here would deadlock. Once the verdict
                    // mutex is acquired, a still-`Deadlocked` phase means the
                    // verdict committed (a rollback restores `Parked` before
                    // releasing the mutex), so the CAS below cannot strand a
                    // live job.
                    drop(g);
                    {
                        let _v = self
                            .verdict_lock
                            .lock()
                            .unwrap_or_else(|err| err.into_inner());
                        if self.cas_phase(e, Phase::Deadlocked, Phase::Running) {
                            // The carrier resumes to unwind with a deadlock
                            // report; it is genuinely executing again, so
                            // restore the accounting (teardown may briefly
                            // exceed the pool bound).
                            self.running.fetch_add(1, Ordering::SeqCst);
                            return Park::Deadlock;
                        }
                    }
                    g = seat.m.lock().unwrap_or_else(|err| err.into_inner());
                }
                _ => {
                    g = seat.cv.wait(g).unwrap_or_else(|err| err.into_inner());
                }
            }
        }
    }

    /// Coroutine-mode blocking tail: suspend the calling coroutine (which
    /// also performs any deferred direct handoff) until a dispatcher
    /// resumes it. Mirrors [`Scheduler::block_on_seat`]'s phase protocol:
    /// a resume only follows a `Ready → Running` CAS by a dispatcher or a
    /// committed deadlock verdict, so the post-resume phase decides the
    /// outcome. There are no spurious wake-ups in this mode — every resume
    /// was paid for by exactly one dispatch — but the verdict-mutex dance
    /// for a (possibly transient) `Deadlocked` mark is identical.
    fn block_on_coro(&self, e: usize) -> Park {
        let rt = self.coro.get().expect("block_on_coro without a runtime");
        debug_assert_eq!(
            rt.hosted_slot(),
            Some(e),
            "coroutine-mode block from a foreign context"
        );
        loop {
            rt.suspend_current();
            match self.load_phase(e) {
                Phase::Running => return Park::Woken,
                Phase::Deadlocked => {
                    // Same transient-mark protocol as block_on_seat: consume
                    // the mark only if it survives the verdict mutex.
                    let _v = self
                        .verdict_lock
                        .lock()
                        .unwrap_or_else(|err| err.into_inner());
                    if self.cas_phase(e, Phase::Deadlocked, Phase::Running) {
                        self.running.fetch_add(1, Ordering::SeqCst);
                        return Park::Deadlock;
                    }
                    // Rolled back — the job is live; an unpark + dispatch
                    // will resume us again.
                }
                _ => {
                    // Defensive only: re-suspend and wait for a real
                    // dispatch (unreachable under the dispatch invariants).
                }
            }
        }
    }

    /// Blocking tail shared by `park`/`yield_now`, routed by carrier mode.
    fn block_current(&self, e: usize) -> Park {
        if self.coro.get().is_some() {
            self.block_on_coro(e)
        } else {
            self.block_on_seat(e)
        }
    }

    /// Park the calling process: publish the `Parked` phase, hand the permit
    /// to the best ready process (or release it), and block until a wake-up
    /// arrives or the quiescence check declares the job deadlocked. `now` is
    /// the process's current virtual time, used as its run-queue priority when
    /// it is woken.
    ///
    /// If a wake-up raced ahead of this call, the pending token is consumed
    /// and the process keeps running without ever blocking — entirely
    /// lock-free.
    pub fn park(&self, e: EndpointId, now: SimTime) -> Park {
        debug_assert_eq!(
            self.load_phase(e.0),
            Phase::Running,
            "park while not running"
        );
        self.vtime[e.0].store(now.as_nanos(), Ordering::Relaxed);
        self.streak[e.0].store(0, Ordering::Relaxed);
        if self.token[e.0].swap(false, Ordering::SeqCst) {
            return Park::Woken;
        }
        self.phase[e.0].store(Phase::Parked as u8, Ordering::SeqCst);
        // Dekker re-check: a waker that read our phase *before* the store
        // above saw Running and only left a token. Under SeqCst, if that
        // waker's token store is not visible to the swap below, then our
        // Parked store is visible to its phase load — it takes the unpark
        // path and re-queues us properly. Either way no wake is lost.
        if self.token[e.0].swap(false, Ordering::SeqCst) {
            if self.cas_phase(e.0, Phase::Parked, Phase::Running) {
                return Park::Woken;
            }
            // A waker unparked us in the window: we are back in a ready
            // queue (or a dispatcher has already granted us a fresh permit).
            // Our current permit is surplus — pass it on (possibly straight
            // back to ourselves via the queue) and wait to be re-dispatched;
            // the consumed token guarantees the caller re-polls on return.
            self.depart(e.0);
            return self.block_current(e.0);
        }
        self.depart(e.0);
        self.block_current(e.0)
    }

    /// Wake endpoint `e` because a message was just delivered to its queue.
    ///
    /// Fast path (entirely lock-free): set the slot's atomic wake token; if
    /// the phase says the process is running or ready — or a token was already
    /// pending — the token alone is sufficient, because the process must pass
    /// through `park`/`yield_now` (which consume it) before it can ever block.
    /// Only a genuinely parked target is moved to the ready queues, and only
    /// when an idle permit exists does that touch the permit counter.
    /// Unmanaged and finished slots ignore wakes.
    pub fn wake(&self, e: EndpointId) -> WakeOutcome {
        if self.token[e.0].swap(true, Ordering::SeqCst) {
            // A wake is already pending; whoever owns it will re-poll.
            return WakeOutcome::Coalesced;
        }
        loop {
            match self.load_phase(e.0) {
                Phase::Running | Phase::Ready => return WakeOutcome::Coalesced,
                Phase::Parked => {
                    // Order matters for the verdict scan: phase goes Ready
                    // *before* the token clears, so the slot is never a
                    // tokenless parked slot mid-unpark (module docs, race 2).
                    if self.cas_phase(e.0, Phase::Parked, Phase::Ready) {
                        self.token[e.0].store(false, Ordering::SeqCst);
                        self.streak[e.0].store(0, Ordering::Relaxed);
                        let vt = SimTime::from_nanos(self.vtime[e.0].load(Ordering::Relaxed));
                        self.push_ready(e.0, vt);
                        self.try_dispatch_idle();
                        return WakeOutcome::Unparked;
                    }
                }
                Phase::Unmanaged | Phase::Finished => {
                    self.token[e.0].store(false, Ordering::SeqCst);
                    return WakeOutcome::Ignored;
                }
                Phase::Deadlocked => {
                    // The mark may be transient: a mid-flight verdict marks
                    // slots one at a time and rolls back if a later CAS loses
                    // to a wake like this one. Dropping the token here on a
                    // transient mark would destroy a wake the rollback cannot
                    // restore, so synchronise on the verdict mutex first
                    // (held across the whole mark/rollback sequence). If the
                    // mark is still present afterwards the verdict committed
                    // — the slot is unwinding with a deadlock report and the
                    // wake is genuinely moot. Otherwise re-read the phase and
                    // deliver the wake properly. (A *new* verdict cannot
                    // re-mark the slot in between: our token is still set,
                    // and the verdict scan aborts on a parked slot with a
                    // pending token.)
                    drop(
                        self.verdict_lock
                            .lock()
                            .unwrap_or_else(|err| err.into_inner()),
                    );
                    if self.load_phase(e.0) == Phase::Deadlocked {
                        self.token[e.0].store(false, Ordering::SeqCst);
                        return WakeOutcome::Ignored;
                    }
                }
            }
        }
    }

    /// Cooperatively yield: requeue at priority `now` and hand the permit to
    /// the lowest-virtual-time ready process — which may be the caller
    /// itself, in which case it just keeps running. The PML calls this from
    /// busy-poll loops (`MPI_Test` spinning) so a poller can never monopolise
    /// the pool. A pending wake token makes this a lock-free no-op (there is
    /// fresh work; keep running).
    ///
    /// After [`YIELD_STREAK_PARK`] consecutive yields without a wake token the
    /// process is parked instead of requeued: a spinner making no progress
    /// must not defeat the quiescence-based deadlock detection, and returns
    /// its permit until a delivery wakes it. Callers must therefore handle a
    /// [`Park::Deadlock`] verdict exactly as they would from
    /// [`Scheduler::park`].
    pub fn yield_now(&self, e: EndpointId, now: SimTime) -> Park {
        if self.load_phase(e.0) != Phase::Running {
            return Park::Woken;
        }
        if self.token[e.0].swap(false, Ordering::SeqCst) {
            self.streak[e.0].store(0, Ordering::Relaxed);
            return Park::Woken;
        }
        self.vtime[e.0].store(now.as_nanos(), Ordering::Relaxed);
        let streak = self.streak[e.0].load(Ordering::Relaxed) + 1;
        self.streak[e.0].store(streak, Ordering::Relaxed);
        if streak >= YIELD_STREAK_PARK {
            // No-progress streak: treat the spinner as parked (see above).
            self.phase[e.0].store(Phase::Parked as u8, Ordering::SeqCst);
            if self.token[e.0].swap(false, Ordering::SeqCst) {
                // Same Dekker re-check as in `park`.
                if self.cas_phase(e.0, Phase::Parked, Phase::Running) {
                    self.streak[e.0].store(0, Ordering::Relaxed);
                    return Park::Woken;
                }
                self.depart(e.0);
                return self.block_current(e.0);
            }
            self.depart(e.0);
            return self.block_current(e.0);
        }
        // Requeue-skip fast path: if no ready slot would outrank us — our
        // hypothetical entry gets the next (largest) sequence number, so an
        // existing entry outranks us iff its virtual time is <= `now` — then
        // requeue + repop would hand the permit straight back. Skip both.
        // (Advisory peek: a push racing in after it simply waits for our
        // next boundary, exactly as if it had arrived a moment later. The
        // streak deliberately survives, so a spinner still converges on a
        // park.)
        match self.best_ready_entry() {
            Some(((vt, _, _), _)) if vt <= now => {}
            _ => return Park::Woken,
        }
        self.phase[e.0].store(Phase::Ready as u8, Ordering::SeqCst);
        self.push_ready(e.0, now);
        match self.pop_best() {
            Some((target, _)) if target == e.0 => {
                // Raced: the outranking entry was claimed by someone else
                // first and we popped our own entry back — keep the permit.
                Park::Woken
            }
            Some((target, shard)) => {
                if shard == self.shard_of(e.0) {
                    self.stats.record_handoff();
                } else {
                    self.stats.record_steal();
                }
                self.dispatch_direct(target);
                self.block_current(e.0)
            }
            None => {
                // Our own entry is gone: a concurrent dispatcher claimed it
                // and is delivering us a fresh permit. Ours is surplus.
                self.depart(e.0);
                self.block_current(e.0)
            }
        }
    }

    /// Virtual-time advance boundary: the process's clock just moved forward
    /// to `now` (it modelled a computation). If a *ready* process is strictly
    /// earlier in virtual time, requeue the caller at `now` and hand the
    /// permit over, so dispatch order keeps tracking virtual time across
    /// compute phases; otherwise keep running.
    ///
    /// Without this boundary a wake chain can monopolise the permits: a
    /// departing carrier hands its permit directly to the process it just
    /// woke, and a ready-but-never-woken process — for example a worker whose
    /// request the master has not matched yet — can sit at virtual time zero
    /// while the chain runs arbitrarily far ahead. That starvation is
    /// invisible under OS-thread carriers on a multi-core host (preemption
    /// eventually runs the straggler) but is deterministic under coroutine
    /// carriers, where nothing preempts a handoff chain.
    ///
    /// Unlike [`Scheduler::yield_now`] this never parks the caller: advancing
    /// the clock *is* progress, so the no-progress streak is reset, not
    /// counted. The caller stays dispatchable (its ready-queue entry keeps
    /// the quiescence check off), so a [`Park::Deadlock`] verdict cannot
    /// legitimately be produced here; callers may ignore the return value.
    ///
    /// Cost when nothing outranks the caller: one atomic load of the ready
    /// count (processes blocked in receives are parked, not ready, so
    /// blocking-heavy applications take that fast path on almost every call).
    pub fn advance(&self, e: EndpointId, now: SimTime) -> Park {
        if self.load_phase(e.0) != Phase::Running {
            return Park::Woken;
        }
        self.vtime[e.0].store(now.as_nanos(), Ordering::Relaxed);
        self.streak[e.0].store(0, Ordering::Relaxed);
        if self.token[e.0].load(Ordering::SeqCst) {
            // A delivery already arrived; keep the permit and let the next
            // blocking boundary consume the token and re-poll the inbox.
            return Park::Woken;
        }
        match self.best_ready_entry() {
            Some(((vt, _, _), _)) if vt < now => {}
            _ => return Park::Woken,
        }
        self.phase[e.0].store(Phase::Ready as u8, Ordering::SeqCst);
        self.push_ready(e.0, now);
        match self.pop_best() {
            Some((target, _)) if target == e.0 => {
                // Raced: the outranking entry was claimed by another
                // dispatcher and we popped our own entry back.
                Park::Woken
            }
            Some((target, shard)) => {
                if shard == self.shard_of(e.0) {
                    self.stats.record_handoff();
                } else {
                    self.stats.record_steal();
                }
                self.dispatch_direct(target);
                self.block_current(e.0)
            }
            None => {
                // Our entry was claimed by a concurrent dispatcher delivering
                // us a fresh permit; ours is surplus.
                self.depart(e.0);
                self.block_current(e.0)
            }
        }
    }

    /// Timer boundary: like [`Scheduler::advance`], but for a process that
    /// just waited out a virtual deadline delivered through its own inbox
    /// (a self-addressed timer message, e.g. a protocol retransmission
    /// timeout). Such a delivery necessarily left a wake token behind, and
    /// by the time the process judges the timeout it has already drained
    /// the message — the token is *stale*, yet it would make `advance`
    /// keep the permit on every call. A timer-driven process would then
    /// never yield: each re-arm re-sets its own token, and a ready peer
    /// earlier in virtual time (often the very peer whose traffic would
    /// cancel the timer) starves. Consuming the token before the advance
    /// restores honest handoff; a token set *after* the consume (a racing
    /// real delivery) is still honoured by the inner `advance`, and a
    /// consumed-but-fresh token is safe because the caller returns to a
    /// progress loop that re-polls the inbox before any park.
    pub fn wait_boundary(&self, e: EndpointId, now: SimTime) -> Park {
        if self.load_phase(e.0) != Phase::Running {
            return Park::Woken;
        }
        self.token[e.0].swap(false, Ordering::SeqCst);
        self.advance(e, now)
    }

    /// Mark endpoint `e` finished (application returned, crashed or
    /// panicked), passing its permit on. Idempotent.
    pub fn finish(&self, e: EndpointId) {
        loop {
            let phase = self.load_phase(e.0);
            match phase {
                Phase::Unmanaged | Phase::Finished => return,
                Phase::Running => {
                    if self.cas_phase(e.0, Phase::Running, Phase::Finished) {
                        self.token[e.0].store(false, Ordering::SeqCst);
                        self.depart(e.0);
                        break;
                    }
                }
                Phase::Ready | Phase::Parked | Phase::Deadlocked => {
                    // No permit held (ready entries turn stale and are
                    // discarded on pop), but finishing may complete a
                    // quiescence picture: re-check if the pool sits idle.
                    if self.cas_phase(e.0, phase, Phase::Finished) {
                        self.token[e.0].store(false, Ordering::SeqCst);
                        if self.running.load(Ordering::SeqCst) == 0 {
                            self.on_idle();
                        }
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn ep(i: usize) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn register_then_start_grants_permit() {
        let s = Scheduler::new(4);
        s.set_workers(2);
        s.register(ep(0));
        assert!(s.is_managed(ep(0)));
        assert!(!s.is_managed(ep(1)));
        s.start(ep(0)); // must not block: a permit is free
        s.finish(ep(0));
    }

    #[test]
    fn wake_before_park_leaves_token() {
        let s = Scheduler::new(2);
        s.register(ep(0));
        s.start(ep(0));
        // Wake of a running process: coalesced, no unpark needed.
        assert_eq!(s.wake(ep(0)), WakeOutcome::Coalesced);
        assert_eq!(s.park(ep(0), SimTime::ZERO), Park::Woken);
        s.finish(ep(0));
    }

    #[test]
    fn repeated_wakes_of_busy_target_coalesce_into_one_token() {
        let s = Scheduler::new(2);
        s.register(ep(0));
        s.start(ep(0));
        for _ in 0..10 {
            assert_eq!(s.wake(ep(0)), WakeOutcome::Coalesced);
        }
        // One token pending: the first park consumes it, the second blocks
        // (here: detects quiescence, since nothing else runs).
        assert_eq!(s.park(ep(0), SimTime::ZERO), Park::Woken);
        assert_eq!(s.park(ep(0), SimTime::ZERO), Park::Deadlock);
        s.finish(ep(0));
    }

    #[test]
    fn wake_outcomes_distinguish_parked_running_finished() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let h2 = std::thread::spawn(move || {
            s3.start(ep(1));
            // Wait until the peer is genuinely parked.
            while s3.parked_count() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(s3.wake(ep(0)), WakeOutcome::Unparked);
            s3.finish(ep(1));
        });
        assert_eq!(h.join().unwrap(), Park::Woken);
        h2.join().unwrap();
        assert_eq!(s.wake(ep(0)), WakeOutcome::Ignored, "finished slot");
        assert_eq!(s.wake(ep(1)), WakeOutcome::Ignored);
    }

    #[test]
    fn park_wake_roundtrip_across_threads() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let h2 = std::thread::spawn(move || {
            s3.start(ep(1));
            std::thread::sleep(std::time::Duration::from_millis(20));
            s3.wake(ep(0));
            s3.finish(ep(1));
        });
        assert_eq!(h.join().unwrap(), Park::Woken);
        h2.join().unwrap();
    }

    #[test]
    fn hammered_park_wake_race_loses_no_wakeups() {
        // Stress the lock-free wake fast path against racing parks: the
        // parker must observe exactly as many wake-ups as were issued (each
        // park returns only after a wake), with no lost-wake hang.
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        const ROUNDS: usize = 2000;
        let s2 = Arc::clone(&s);
        let parker = std::thread::spawn(move || {
            s2.start(ep(0));
            for _ in 0..ROUNDS {
                match s2.park(ep(0), SimTime::ZERO) {
                    Park::Woken => {}
                    Park::Deadlock => panic!("spurious deadlock under wake hammering"),
                }
            }
            s2.finish(ep(0));
        });
        let s3 = Arc::clone(&s);
        let waker = std::thread::spawn(move || {
            s3.start(ep(1));
            for _ in 0..ROUNDS {
                // Issue wakes until one lands as a fresh token/unpark; a
                // Coalesced outcome on an already-pending token must not be
                // double-counted by the parker (it consumes one token per
                // park), so just keep the pressure up.
                s3.wake(ep(0));
                std::hint::spin_loop();
            }
            // Drain: keep waking until the parker finishes all rounds.
            while s3.wake(ep(0)) != WakeOutcome::Ignored {
                std::thread::yield_now();
            }
            s3.finish(ep(1));
        });
        parker.join().unwrap();
        waker.join().unwrap();
    }

    #[test]
    fn quiescence_declares_parked_processes_deadlocked() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let mut handles = Vec::new();
        for i in 0..2 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                let verdict = s.park(ep(i), SimTime::ZERO);
                s.finish(ep(i));
                verdict
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Park::Deadlock);
        }
    }

    #[test]
    fn no_quiescence_while_one_process_runs() {
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let parker = std::thread::spawn(move || {
            s2.start(ep(0));
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        let s3 = Arc::clone(&s);
        let runner = std::thread::spawn(move || {
            s3.start(ep(1));
            // Keep running for a while, then deliver the wake-up: the parked
            // peer must not be declared deadlocked in the meantime.
            std::thread::sleep(std::time::Duration::from_millis(30));
            s3.wake(ep(0));
            s3.finish(ep(1));
        });
        assert_eq!(parker.join().unwrap(), Park::Woken);
        runner.join().unwrap();
    }

    #[test]
    fn yield_streak_parks_spinner_and_quiescence_sees_through_it() {
        // Endpoint 0 spins (yield_now in a loop, no wakes, no progress);
        // endpoint 1 parks for good. Without the streak guard the spinner
        // cycles Ready/Running forever and quiescence never fires; with it,
        // the spinner is parked after YIELD_STREAK_PARK yields and both are
        // declared deadlocked.
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let spinner = std::thread::spawn(move || {
            s2.start(ep(0));
            let mut yields = 0u32;
            loop {
                yields += 1;
                match s2.yield_now(ep(0), SimTime::ZERO) {
                    Park::Woken => {
                        assert!(yields < 10_000, "spinner was never parked");
                    }
                    Park::Deadlock => break,
                }
            }
            s2.finish(ep(0));
            yields
        });
        let s3 = Arc::clone(&s);
        let parker = std::thread::spawn(move || {
            s3.start(ep(1));
            let verdict = s3.park(ep(1), SimTime::ZERO);
            s3.finish(ep(1));
            verdict
        });
        let yields = spinner.join().unwrap();
        assert!(
            yields >= YIELD_STREAK_PARK,
            "spinner parked too eagerly after {yields} yields"
        );
        assert_eq!(parker.join().unwrap(), Park::Deadlock);
    }

    #[test]
    fn wake_resets_yield_streak() {
        // A spinner that keeps receiving wakes between yields must never be
        // converted to a park.
        let s = Arc::new(Scheduler::new(2));
        s.register(ep(0));
        s.start(ep(0));
        for _ in 0..(YIELD_STREAK_PARK * 4) {
            s.wake(ep(0));
            assert_eq!(s.yield_now(ep(0), SimTime::ZERO), Park::Woken);
        }
        s.finish(ep(0));
    }

    #[test]
    fn pool_bounds_concurrent_execution() {
        let n = 16;
        let workers = 3;
        let s = Arc::new(Scheduler::new(n));
        s.set_workers(workers);
        for i in 0..n {
            s.register(ep(i));
        }
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..n {
            let (s, live, peak) = (Arc::clone(&s), Arc::clone(&live), Arc::clone(&peak));
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                for _ in 0..5 {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                    // Keep the slot's streak clear so the yield stays
                    // cooperative (this test exercises permits, not parking).
                    s.wake(ep(i));
                    s.yield_now(ep(i), SimTime::ZERO);
                }
                s.finish(ep(i));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= workers,
            "observed concurrency {} exceeds the {} worker permits",
            peak.load(Ordering::SeqCst),
            workers
        );
        assert!(s.peak_running() <= workers);
    }

    #[test]
    fn lowest_virtual_time_ready_process_runs_first() {
        // Pool of 2. Endpoints 0 and 1 get the permits at registration; 2 and
        // 3 queue at virtual time 0. Endpoint 0 yields at t = 5 ms: the freed
        // permit must cycle through the earlier-time ready slots (2, then 3)
        // before endpoint 0 is re-dispatched.
        let s = Arc::new(Scheduler::new(4));
        s.set_workers(2);
        for i in 0..4 {
            s.register(ep(i));
        }
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        {
            let (s, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.start(ep(0));
                s.yield_now(ep(0), SimTime::from_millis(5));
                order.lock().unwrap().push(0usize);
                s.finish(ep(0));
            }));
        }
        for i in [2usize, 3] {
            let (s, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                order.lock().unwrap().push(i);
                s.finish(ep(i));
            }));
        }
        // The main thread acts as endpoint 1's carrier and never yields, so
        // exactly one permit cycles among 0, 2 and 3.
        s.start(ep(1));
        for h in handles {
            h.join().unwrap();
        }
        s.finish(ep(1));
        assert_eq!(*order.lock().unwrap(), vec![2, 3, 0]);
    }

    #[test]
    fn single_worker_pool_is_allowed_and_makes_progress() {
        // MIN_WORKERS is 1 since the yield-streak guard: a single-permit pool
        // must still complete a park/wake ping-pong (the permit is handed
        // back and forth directly).
        let s = Arc::new(Scheduler::new(2));
        s.set_workers(1);
        assert_eq!(s.workers(), 1);
        s.register(ep(0));
        s.register(ep(1));
        let s2 = Arc::clone(&s);
        let a = std::thread::spawn(move || {
            s2.start(ep(0));
            for _ in 0..100 {
                s2.wake(ep(1));
                assert_eq!(s2.park(ep(0), SimTime::ZERO), Park::Woken);
            }
            s2.finish(ep(0));
        });
        let s3 = Arc::clone(&s);
        let b = std::thread::spawn(move || {
            s3.start(ep(1));
            for _ in 0..100 {
                assert_eq!(s3.park(ep(1), SimTime::ZERO), Park::Woken);
                s3.wake(ep(0));
            }
            s3.finish(ep(1));
        });
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(s.peak_running(), 1, "one permit must never become two");
    }

    #[test]
    fn shrinking_the_pool_retires_permits_at_the_next_boundary() {
        // Continuous handoff must not keep a shrunken pool's surplus permits
        // in circulation forever: after set_workers(1), the next park retires
        // the over-budget permit instead of handing it to ready work.
        let s = Arc::new(Scheduler::new(3));
        s.set_workers(2);
        for i in 0..3 {
            s.register(ep(i));
        }
        // Slots 0 and 1 hold the two permits; slot 2 queues Ready.
        assert_eq!(s.running(), 2);
        s.set_workers(1);
        let s2 = Arc::clone(&s);
        let a = std::thread::spawn(move || {
            s2.start(ep(0));
            // Ready work (slot 2) exists, but the pool shrank: this park
            // must release the permit, not hand it off.
            let verdict = s2.park(ep(0), SimTime::ZERO);
            s2.finish(ep(0));
            verdict
        });
        // Wait until slot 0 has parked and its permit retired.
        while s.running() != 1 {
            std::thread::yield_now();
        }
        // Slot 1 still runs on the one remaining permit; slot 2 stays queued.
        s.start(ep(1));
        s.wake(ep(0)); // let the parked carrier exit cleanly later
        s.finish(ep(1)); // hands the last permit on: slot 2, then slot 0
        let s3 = Arc::clone(&s);
        let b = std::thread::spawn(move || {
            s3.start(ep(2));
            s3.finish(ep(2));
        });
        assert_eq!(a.join().unwrap(), Park::Woken);
        b.join().unwrap();
        assert!(s.peak_running() <= 2);
        assert_eq!(s.running(), 0);
    }

    #[test]
    fn multi_shard_pop_respects_global_virtual_time_order() {
        // Force 4 shards regardless of host cores: slots 1..=4 land in
        // different home shards, and dispatch must still pick the globally
        // lowest virtual time across all of them (the steal path).
        let stats = Arc::new(NetStats::new());
        let s = Arc::new(Scheduler::with_shards(5, Arc::clone(&stats), 4));
        s.set_workers(1);
        for i in 0..5 {
            s.register(ep(i));
        }
        // Slot 0 got the single permit at registration; 1..=4 are queued at
        // time zero in shards 1, 2, 3, 0 and must run in slot order (FIFO
        // tiebreak at equal virtual time), wherever they live.
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 1..5usize {
            let (s, order) = (Arc::clone(&s), Arc::clone(&order));
            handles.push(std::thread::spawn(move || {
                s.start(ep(i));
                order.lock().unwrap().push(i);
                s.finish(ep(i));
            }));
        }
        s.start(ep(0));
        s.finish(ep(0)); // hands the permit on: 1, then 2, 3, 4
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3, 4]);
        let snap = stats.snapshot();
        assert!(
            snap.steals() > 0,
            "cross-shard dispatches must be classified as steals"
        );
    }

    #[test]
    fn handoff_counters_account_for_direct_dispatches() {
        // A single-permit ping-pong dispatches every wake by direct handoff;
        // the only cold dispatches are the two initial grants.
        let stats = Arc::new(NetStats::new());
        let s = Arc::new(Scheduler::with_stats(2, Arc::clone(&stats)));
        s.set_workers(1);
        s.register(ep(0));
        s.register(ep(1));
        let rounds = 50u64;
        let s2 = Arc::clone(&s);
        let a = std::thread::spawn(move || {
            s2.start(ep(0));
            for _ in 0..rounds {
                s2.wake(ep(1));
                assert_eq!(s2.park(ep(0), SimTime::ZERO), Park::Woken);
            }
            s2.finish(ep(0));
        });
        let s3 = Arc::clone(&s);
        let b = std::thread::spawn(move || {
            s3.start(ep(1));
            for _ in 0..rounds {
                assert_eq!(s3.park(ep(1), SimTime::ZERO), Park::Woken);
                s3.wake(ep(0));
            }
            s3.finish(ep(1));
        });
        a.join().unwrap();
        b.join().unwrap();
        let snap = stats.snapshot();
        assert!(
            snap.handoffs() + snap.steals() >= 2 * rounds - 2,
            "ping-pong dispatches must be direct: {} handoffs + {} steals",
            snap.handoffs(),
            snap.steals()
        );
        assert!(
            snap.condvar_waits() <= 4,
            "cold dispatches should be limited to startup, got {}",
            snap.condvar_waits()
        );
    }

    #[test]
    fn coroutine_mode_single_permit_ping_pong_is_pure_stack_switches() {
        // The coroutine twin of single_worker_pool_is_allowed_and_makes
        // _progress: one permit, one hosting thread, every wake dispatched
        // by a deferred direct switch (no seats involved at all).
        if !crate::carrier::coro::supported() {
            return;
        }
        let stats = Arc::new(NetStats::new());
        let s = Arc::new(Scheduler::with_stats(2, Arc::clone(&stats)));
        s.set_workers(1);
        let rt = CoroRuntime::new(2, 192 * 1024, Arc::clone(&stats));
        s.attach_coro(Arc::clone(&rt));
        let rounds = 100u64;
        let s2 = Arc::clone(&s);
        let h0 = rt.spawn(0, move || {
            s2.start(ep(0));
            for _ in 0..rounds {
                s2.wake(ep(1));
                assert_eq!(s2.park(ep(0), SimTime::ZERO), Park::Woken);
            }
            s2.finish(ep(0));
        });
        let s3 = Arc::clone(&s);
        let h1 = rt.spawn(1, move || {
            s3.start(ep(1));
            for _ in 0..rounds {
                assert_eq!(s3.park(ep(1), SimTime::ZERO), Park::Woken);
                s3.wake(ep(0));
            }
            s3.finish(ep(1));
        });
        s.register(ep(0));
        s.register(ep(1));
        rt.activate(1);
        h0.join().unwrap();
        h1.join().unwrap();
        rt.shutdown();
        assert_eq!(s.peak_running(), 1, "one permit must never become two");
        let snap = stats.snapshot();
        assert!(
            snap.handoffs() + snap.steals() >= 2 * rounds - 2,
            "ping-pong dispatches must be direct: {} handoffs + {} steals",
            snap.handoffs(),
            snap.steals()
        );
        assert!(
            snap.stack_switches() >= 2 * rounds,
            "every dispatch should be a user-space switch, got {}",
            snap.stack_switches()
        );
    }

    #[test]
    fn coroutine_mode_detects_deadlock_by_quiescence() {
        if !crate::carrier::coro::supported() {
            return;
        }
        let stats = Arc::new(NetStats::new());
        let s = Arc::new(Scheduler::with_stats(2, Arc::clone(&stats)));
        let rt = CoroRuntime::new(2, 192 * 1024, stats);
        s.attach_coro(Arc::clone(&rt));
        let mut handles = Vec::new();
        for i in 0..2usize {
            let s = Arc::clone(&s);
            handles.push(rt.spawn(i, move || {
                s.start(ep(i));
                let verdict = s.park(ep(i), SimTime::ZERO);
                s.finish(ep(i));
                verdict
            }));
        }
        s.register(ep(0));
        s.register(ep(1));
        rt.activate(2);
        for h in handles {
            assert_eq!(h.join().unwrap(), Park::Deadlock);
        }
        rt.shutdown();
    }

    #[test]
    fn coroutine_mode_yield_streak_still_parks_spinners() {
        // The busy-poll quiescence guard must behave identically under
        // coroutine carriers: a wakeless spinner is parked after
        // YIELD_STREAK_PARK yields and then declared deadlocked together
        // with its parked peer.
        if !crate::carrier::coro::supported() {
            return;
        }
        let stats = Arc::new(NetStats::new());
        let s = Arc::new(Scheduler::with_stats(2, Arc::clone(&stats)));
        let rt = CoroRuntime::new(2, 192 * 1024, stats);
        s.attach_coro(Arc::clone(&rt));
        let s2 = Arc::clone(&s);
        let spinner = rt.spawn(0, move || {
            s2.start(ep(0));
            let mut yields = 0u32;
            loop {
                yields += 1;
                match s2.yield_now(ep(0), SimTime::ZERO) {
                    Park::Woken => assert!(yields < 10_000, "spinner was never parked"),
                    Park::Deadlock => break,
                }
            }
            s2.finish(ep(0));
            yields
        });
        let s3 = Arc::clone(&s);
        let parker = rt.spawn(1, move || {
            s3.start(ep(1));
            let verdict = s3.park(ep(1), SimTime::ZERO);
            s3.finish(ep(1));
            verdict
        });
        s.register(ep(0));
        s.register(ep(1));
        rt.activate(2);
        assert!(spinner.join().unwrap() >= YIELD_STREAK_PARK);
        assert_eq!(parker.join().unwrap(), Park::Deadlock);
        rt.shutdown();
    }
}
