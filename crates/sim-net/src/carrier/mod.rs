//! The persistent carrier-thread pool.
//!
//! Every simulated process needs an OS thread to own its stack (the
//! application closure blocks, recurses, and unwinds on it), but the thread
//! itself is fungible: once a process finishes, the thread that carried it
//! can carry the next one. Before this pool existed the job launcher spawned
//! and joined one thread per physical process per job — at the paper's
//! 256-rank dual-replication scale that is 512 spawns + joins per job, and a
//! Table 1 harness run launches ten jobs back to back, paying the churn ten
//! times over for the same peak thread count.
//!
//! [`CarrierPool::global`] is a process-wide pool keyed by stack size: a
//! finished carrier parks on its private channel and is handed the next
//! process body — within the same job (recovery forks) or in any later job of
//! the same OS process (the back-to-back harness rows). The pool therefore
//! grows to the *peak number of simultaneously live processes* ever reached
//! and never beyond it, instead of `processes × jobs`. Idle carriers cost
//! only their (mostly untouched) stacks.
//!
//! The pool is deliberately oblivious to the [`crate::sched::Scheduler`]:
//! scheduling is about which process may *execute* (run permits), this module
//! is only about which OS thread hosts a process's stack. A pooled carrier
//! blocked in [`crate::sched::Scheduler::start`] or parked on its seat is
//! still "in use" — it returns to the idle list only when its process body
//! returns or unwinds.

use crossbeam_channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod coro;
pub mod stack;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// How simulated-process bodies are hosted on OS threads.
///
/// The two modes are observably equivalent at the simulation level — same
/// [`crate::trace::TraceEvent`] sequences under `workers = 1`, same virtual
/// times and checksums — and differ only in execution cost and OS-thread
/// footprint (see `DESIGN.md` §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CarrierMode {
    /// One pooled OS thread per live process ([`CarrierPool`]); scheduler
    /// handoffs park and wake threads through per-slot seats (futexes).
    Thread,
    /// One user-space stack per process, hosted by `workers` OS threads
    /// ([`coro::CoroRuntime`]); a handoff is a register-save/stack-switch
    /// with no kernel involvement.
    Coroutine,
}

impl CarrierMode {
    /// Stable lowercase name, used in JSON reports and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            CarrierMode::Thread => "thread",
            CarrierMode::Coroutine => "coroutine",
        }
    }

    /// Parse a mode name as accepted by `--carrier-mode` and the
    /// `SDR_CARRIER_MODE` environment variable.
    pub fn parse(s: &str) -> Option<CarrierMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "thread" | "threads" | "os-thread" => Some(CarrierMode::Thread),
            "coro" | "coroutine" | "coroutines" => Some(CarrierMode::Coroutine),
            _ => None,
        }
    }

    /// The default mode for this build target: coroutines where the
    /// context-switch primitive exists ([`coro::supported`]), OS threads
    /// elsewhere. `SDR_CARRIER_MODE=thread|coro` overrides the default at
    /// run time; an explicit `JobBuilder::carrier_mode` call wins over both.
    pub fn default_mode() -> CarrierMode {
        if let Ok(v) = std::env::var("SDR_CARRIER_MODE") {
            if let Some(m) = CarrierMode::parse(&v) {
                return m.effective();
            }
        }
        if coro::supported() {
            CarrierMode::Coroutine
        } else {
            CarrierMode::Thread
        }
    }

    /// Clamp to what the target supports: requesting coroutines on a target
    /// without the switch primitive silently degrades to threads (the modes
    /// are observably equivalent, so this is a performance fallback, not a
    /// behavior change).
    pub fn effective(self) -> CarrierMode {
        match self {
            CarrierMode::Coroutine if !coro::supported() => CarrierMode::Thread,
            m => m,
        }
    }
}

impl std::fmt::Display for CarrierMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether a carrier request was served by a fresh OS thread or a recycled
/// one (returned by [`CarrierPool::run`] so job reports can account for
/// thread churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarrierSource {
    /// A new OS thread was spawned for this process.
    Spawned,
    /// An idle pooled thread (same stack size) was reused.
    Reused,
}

/// Join handle for a process body submitted to the pool. Mirrors
/// [`std::thread::JoinHandle`]: `join` returns `Err` with the panic payload
/// if the body panicked (the pooled thread itself survives).
pub struct CarrierHandle<T> {
    result: Receiver<std::thread::Result<T>>,
}

impl<T> CarrierHandle<T> {
    /// Wait for the process body to finish and return its result (or the
    /// panic payload it unwound with).
    pub fn join(self) -> std::thread::Result<T> {
        self.result
            .recv()
            .expect("carrier thread died without reporting a result")
    }
}

/// A process-global pool of reusable carrier threads, bucketed by stack size.
pub struct CarrierPool {
    /// Idle carriers: stack size → the private task channels of parked
    /// threads with that stack.
    idle: Mutex<HashMap<usize, Vec<Sender<Task>>>>,
    spawned: AtomicU64,
    reused: AtomicU64,
    next_id: AtomicU64,
}

impl CarrierPool {
    fn new() -> Self {
        CarrierPool {
            idle: Mutex::new(HashMap::new()),
            spawned: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
        }
    }

    /// The process-wide pool. All jobs in this OS process share it, which is
    /// what lets back-to-back benchmark rows reuse each other's carriers.
    pub fn global() -> &'static CarrierPool {
        static GLOBAL: OnceLock<CarrierPool> = OnceLock::new();
        GLOBAL.get_or_init(CarrierPool::new)
    }

    /// Run `body` on a carrier thread with (at least) `stack_bytes` of stack:
    /// a parked carrier of the same stack size if one is idle, a freshly
    /// spawned thread otherwise. Panics inside `body` are caught and
    /// surfaced through the handle's `join`, exactly like a plain
    /// `std::thread::spawn` + `join`.
    pub fn run<T, F>(
        &'static self,
        stack_bytes: usize,
        body: F,
    ) -> (CarrierHandle<T>, CarrierSource)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (res_tx, res_rx) = unbounded();
        let mut task: Task = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
            // The job may have stopped listening (it never does today, but a
            // dropped handle must not kill the pooled thread).
            let _ = res_tx.send(result);
        });
        let handle = CarrierHandle { result: res_rx };
        let recycled = self
            .idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&stack_bytes)
            .and_then(|v| v.pop());
        if let Some(tx) = recycled {
            match tx.send(task) {
                Ok(()) => {
                    self.reused.fetch_add(1, Ordering::Relaxed);
                    return (handle, CarrierSource::Reused);
                }
                // The carrier died (its channel disconnected); fall through
                // and spawn a replacement for the returned task.
                Err(err) => task = err.0,
            }
        }
        let (tx, rx) = unbounded::<Task>();
        if tx.send(task).is_err() {
            unreachable!("fresh carrier channel cannot be closed");
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(format!("sim-carrier-{id}"))
            .stack_size(stack_bytes)
            .spawn(move || Self::carrier_loop(stack_bytes, tx, rx))
            .expect("spawn carrier thread");
        self.spawned.fetch_add(1, Ordering::Relaxed);
        (handle, CarrierSource::Spawned)
    }

    /// Body of every pooled thread: run the queued task, park on the idle
    /// list, wait for the next. The thread keeps one sender end of its own
    /// channel alive, so `recv` only fails if the process is tearing down.
    fn carrier_loop(stack_bytes: usize, tx: Sender<Task>, rx: Receiver<Task>) {
        while let Ok(task) = rx.recv() {
            task();
            CarrierPool::global()
                .idle
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(stack_bytes)
                .or_default()
                .push(tx.clone());
        }
    }

    /// Total OS threads this pool has ever spawned.
    pub fn spawned_total(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Total carrier requests served by reusing a parked thread.
    pub fn reused_total(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Number of currently idle carriers (diagnostics).
    pub fn idle_count(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|v| v.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STACK: usize = 1 << 20;

    // Each test uses a distinct stack size: buckets are per-size, so tests
    // sharing the global pool cannot steal each other's idle carriers.
    #[test]
    fn sequential_bodies_reuse_one_thread() {
        let pool = CarrierPool::global();
        let stack = STACK + 0x1000;
        let (h, _) = pool.run(stack, || 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
        // The first carrier is back on the idle list; the next run of the
        // same stack size must reuse it.
        let mut reused = false;
        for _ in 0..5 {
            let (h, source) = pool.run(stack, std::thread::current);
            let inner = h.join().unwrap();
            assert!(inner.name().unwrap_or("").starts_with("sim-carrier-"));
            reused |= source == CarrierSource::Reused;
        }
        assert!(reused, "sequential tasks must recycle a parked carrier");
    }

    #[test]
    fn panicking_body_reports_payload_and_keeps_the_thread() {
        let pool = CarrierPool::global();
        let stack = STACK + 0x2000;
        let (h, _) = pool.run(stack, || -> usize { panic!("carrier body panic") });
        let payload = h.join().unwrap_err();
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("carrier body panic")
        );
        // The pool still serves tasks (the panicking thread survived or was
        // replaced transparently).
        let (h, _) = pool.run(stack, || 7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn distinct_stack_sizes_use_distinct_buckets() {
        let pool = CarrierPool::global();
        let (h1, _) = pool.run(STACK + 0x3000, || 1);
        h1.join().unwrap();
        // A different stack size must not reuse the just-parked carrier.
        let (h2, source) = pool.run(STACK + 0x4000, || 2);
        assert_eq!(source, CarrierSource::Spawned);
        assert_eq!(h2.join().unwrap(), 2);
    }

    #[test]
    fn concurrent_bodies_each_get_a_thread() {
        let pool = CarrierPool::global();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let barrier = std::sync::Arc::clone(&barrier);
                let (h, _) = pool.run(STACK, move || {
                    barrier.wait();
                    i
                });
                h
            })
            .collect();
        let mut out: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        out.sort();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
