//! Stackful-coroutine carriers: every simulated process owns a user-space
//! stack, and a scheduler handoff is a register save + stack-pointer swap
//! instead of a futex wake.
//!
//! In thread carrier mode ([`super::CarrierPool`]) each live process costs a
//! parked OS thread, and every dispatch crosses the kernel twice (futex
//! wait + wake on the target's seat). This module removes both costs: all
//! process stacks are hosted by `workers` OS threads, and the direct-handoff
//! path in [`crate::sched::Scheduler`] — which already knows the exact next
//! process at every park point — transfers control with [`CoroRuntime`]'s
//! user-space switch. 8192 processes then cost 8192 lazily-committed stacks
//! ([`super::stack::StackPool`]) and a handful of threads, instead of 8192
//! kernel threads.
//!
//! # Unsafe contract (summary — the full version is DESIGN.md §5.4)
//!
//! * **Switch primitive.** `sdr_coro_switch(save, target_sp)` pushes the
//!   callee-saved register set on the current stack, publishes the resulting
//!   stack pointer to `*save`, installs `target_sp`, pops the same register
//!   set and returns on the target stack. x86_64 saves `rbp rbx r12-r15`;
//!   aarch64 saves `x19-x28 x29 x30` and `d8-d15` (a 160-byte frame) and
//!   publishes with `stlr` so the resumer's acquire-swap observes a fully
//!   written frame. Caller-saved state, the FP control/status words, and
//!   signal masks deliberately cross switches unsaved: every switch happens
//!   at a Rust call boundary, and the simulator never changes rounding modes
//!   or per-thread masks mid-run.
//! * **Resume token.** A suspended coroutine is exactly its saved stack
//!   pointer, stored in its slot's `ctx` atomic. Zero means "running,
//!   retired, or mid-publication". A resumer *takes* the token with
//!   `swap(0, Acquire)` — at most one dispatcher targets a slot at a time
//!   (guaranteed by the scheduler's `Ready → Running` CAS), so the spin in
//!   `spin_take` only waits out the last few instructions of the owner's
//!   in-flight suspension.
//! * **No TLS across switches.** Host-thread state (current slot, deferred
//!   handoff, retirement queue) lives in thread-locals that are re-read
//!   after every switch, never cached across one: a coroutine that suspends
//!   on one worker may resume on another.
//! * **Unwinding.** Panics (including the simulated-crash unwind from
//!   `FailureService::maybe_crash`) never cross a switch: the process body
//!   runs under `catch_unwind` *on the coroutine's own stack*, and drop
//!   handlers along the unwind only flush outboxes and publish wakes — they
//!   never park. The coroutine retires normally afterwards, so crash
//!   cleanup ("switch-out + drop-on-owner") is just the ordinary retirement
//!   path: the stack is recycled by the next context that runs on the host
//!   thread, after the dying coroutine has fully switched away.
//! * **Guard discipline.** Stacks come from [`super::stack`]: `mmap`'d with
//!   a `PROT_NONE` guard below (overflow ⇒ SIGSEGV ⇒ diagnostic + abort via
//!   [`super::stack::install_overflow_handler`]), or heap-backed with a
//!   canary that is verified at every suspension and retirement.

use crossbeam_channel::unbounded;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use super::stack::{self, CoroStack, StackPool, StackSource};
use super::{CarrierHandle, CarrierPool, CarrierSource};
use crate::stats::NetStats;

/// Whether this build target has the context-switch primitive. When false,
/// [`super::CarrierMode::Coroutine`] degrades to thread carriers.
pub fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Stack size for the worker OS threads that host coroutines. Workers only
/// run the injector loop and stack recycling — all process code runs on
/// coroutine stacks — so this can be small. Kept distinct from typical
/// process-stack sizes so the [`CarrierPool`] buckets don't mix.
const WORKER_STACK: usize = 256 * 1024;

/// Sentinel for "no slot" in the host-thread cells.
const NONE: usize = usize::MAX;

thread_local! {
    /// Save area for the worker loop's own context: a suspending coroutine
    /// with no deferred handoff switches back to this.
    static WORKER_CTX: Cell<usize> = const { Cell::new(0) };
    /// Slot of the coroutine this OS thread is currently executing.
    static CURRENT: Cell<usize> = const { Cell::new(NONE) };
    /// Deferred direct handoff: the slot the next suspension must switch to.
    static PENDING: Cell<usize> = const { Cell::new(NONE) };
    /// A finished coroutine whose stack must be recycled by the next context
    /// that runs on this OS thread (a stack cannot free itself).
    static RETIRE: Cell<usize> = const { Cell::new(NONE) };
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod arch {
    //! The context-switch primitive and initial-frame layout. See the
    //! module docs and DESIGN.md §5.4 for the contract.

    use super::super::stack::CoroStack;

    extern "C" {
        /// Save the callee-saved set + SP into `*save`, switch to
        /// `target_sp`, restore and return on the target stack.
        fn sdr_coro_switch(save: *mut usize, target_sp: usize);
    }

    /// Safe-to-call wrapper (the contract is enforced by the runtime: `save`
    /// points at the suspending slot's `ctx` atomic, `target_sp` is a token
    /// taken exclusively via `swap(0, Acquire)`).
    pub unsafe fn switch(save: *mut usize, target_sp: usize) {
        sdr_coro_switch(save, target_sp);
    }

    #[cfg(target_arch = "x86_64")]
    core::arch::global_asm!(
        ".text",
        ".p2align 4",
        ".globl sdr_coro_switch",
        ".hidden sdr_coro_switch",
        ".type sdr_coro_switch, @function",
        "sdr_coro_switch:",
        "    push rbp",
        "    push rbx",
        "    push r12",
        "    push r13",
        "    push r14",
        "    push r15",
        "    mov qword ptr [rdi], rsp", // publish (x86-TSO orders prior pushes)
        "    mov rsp, rsi",
        "    pop r15",
        "    pop r14",
        "    pop r13",
        "    pop r12",
        "    pop rbx",
        "    pop rbp",
        "    ret",
        ".globl sdr_coro_entry_shim",
        ".hidden sdr_coro_entry_shim",
        ".type sdr_coro_entry_shim, @function",
        // First activation target: the prepared frame leaves the entry-args
        // pointer in r12 and `ret`s here with rsp ≡ 0 (mod 16), so the
        // `call` below gives the Rust trampoline a standard ABI frame.
        "sdr_coro_entry_shim:",
        "    mov rdi, r12",
        "    call {entry}",
        "    ud2", // the trampoline never returns
        entry = sym super::coro_entry,
    );

    #[cfg(target_arch = "aarch64")]
    core::arch::global_asm!(
        ".text",
        ".p2align 2",
        ".globl sdr_coro_switch",
        ".hidden sdr_coro_switch",
        ".type sdr_coro_switch, %function",
        "sdr_coro_switch:",
        "    sub sp, sp, #160",
        "    stp x19, x20, [sp, #0]",
        "    stp x21, x22, [sp, #16]",
        "    stp x23, x24, [sp, #32]",
        "    stp x25, x26, [sp, #48]",
        "    stp x27, x28, [sp, #64]",
        "    stp x29, x30, [sp, #80]",
        "    stp d8, d9, [sp, #96]",
        "    stp d10, d11, [sp, #112]",
        "    stp d12, d13, [sp, #128]",
        "    stp d14, d15, [sp, #144]",
        "    mov x9, sp",
        "    stlr x9, [x0]", // release-publish the frame
        "    mov sp, x1",
        "    ldp x19, x20, [sp, #0]",
        "    ldp x21, x22, [sp, #16]",
        "    ldp x23, x24, [sp, #32]",
        "    ldp x25, x26, [sp, #48]",
        "    ldp x27, x28, [sp, #64]",
        "    ldp x29, x30, [sp, #80]",
        "    ldp d8, d9, [sp, #96]",
        "    ldp d10, d11, [sp, #112]",
        "    ldp d12, d13, [sp, #128]",
        "    ldp d14, d15, [sp, #144]",
        "    add sp, sp, #160",
        "    ret",
        ".globl sdr_coro_entry_shim",
        ".hidden sdr_coro_entry_shim",
        ".type sdr_coro_entry_shim, %function",
        "sdr_coro_entry_shim:",
        "    mov x0, x19",
        "    bl {entry}",
        "    brk #0x1",
        entry = sym super::coro_entry,
    );

    extern "C" {
        fn sdr_coro_entry_shim();
    }

    /// Build the initial frame on a fresh stack so the first `switch` to it
    /// "returns" into `sdr_coro_entry_shim` with `arg` in the designated
    /// callee-saved register (r12 / x19). Returns the resume token (sp).
    pub unsafe fn prepare(stack: &CoroStack, arg: usize) -> usize {
        let top = stack.top(); // already 16-aligned
        #[cfg(target_arch = "x86_64")]
        {
            // Frame (low → high): r15 r14 r13 r12 rbx rbp ret. After the six
            // pops, `ret` lands in the shim with rsp == top ≡ 0 (mod 16).
            let sp = top - 7 * 8;
            let p = sp as *mut usize;
            p.write(0); // r15
            p.add(1).write(0); // r14
            p.add(2).write(0); // r13
            p.add(3).write(arg); // r12
            p.add(4).write(0); // rbx
            p.add(5).write(0); // rbp
            p.add(6).write(sdr_coro_entry_shim as *const () as usize); // ret target
            sp
        }
        #[cfg(target_arch = "aarch64")]
        {
            // One 160-byte frame; x30 slot holds the shim, x19 slot the arg.
            let sp = top - 160;
            let p = sp as *mut usize;
            for i in 0..20 {
                p.add(i).write(0);
            }
            p.write(arg); // x19
            p.add(11).write(sdr_coro_entry_shim as *const () as usize); // x30
            sp
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod arch {
    //! Stub for targets without the switch primitive. [`super::supported`]
    //! is false there, so `CarrierMode::Coroutine` is never selected and
    //! these are unreachable.

    use super::super::stack::CoroStack;

    pub unsafe fn switch(_save: *mut usize, _target_sp: usize) {
        unreachable!("coroutine carriers are not supported on this target");
    }

    pub unsafe fn prepare(_stack: &CoroStack, _arg: usize) -> usize {
        unreachable!("coroutine carriers are not supported on this target");
    }
}

/// Per-process coroutine state. Fixed at runtime construction; the dispatch
/// hot path touches only the `ctx` atomic.
struct CoroSlot {
    /// The resume token: saved stack pointer of a suspended coroutine, or 0
    /// while it runs (or before spawn / after retirement).
    ctx: AtomicUsize,
    /// Canary address of the installed stack (0 = none), readable without
    /// locking the stack itself for the per-suspension integrity check.
    canary: AtomicUsize,
    /// The leased stack, taken back at retirement for recycling.
    stack: Mutex<Option<CoroStack>>,
    /// The process body, taken by the trampoline at first activation.
    entry: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

/// Cold-resume queue feeding the worker threads, plus the shutdown latch.
struct Injector {
    queue: VecDeque<usize>,
    shutdown: bool,
}

/// Heap payload handed to a fresh coroutine through its prepared frame.
struct EntryArgs {
    rt: *const CoroRuntime,
    slot: usize,
}

/// Hosts all process stacks of one job on `workers` OS threads.
///
/// Lifecycle (driven by `sim_mpi::runtime` in coroutine mode):
/// 1. [`CoroRuntime::new`] with the job's process capacity,
/// 2. [`CoroRuntime::spawn`] for every slot (installs stack + body; nothing
///    executes yet),
/// 3. [`crate::sched::Scheduler::attach_coro`] + scheduler registration of
///    every slot,
/// 4. [`CoroRuntime::activate`] to lease worker threads from the
///    [`CarrierPool`] — only now does simulation code run,
/// 5. join all [`CarrierHandle`]s, then [`CoroRuntime::shutdown`].
///
/// The spawn-all / register-all / activate ordering matters: the scheduler's
/// quiescence detector assumes the registered population is complete before
/// any process blocks, and every registered slot must have a coroutine for a
/// dispatcher to switch to.
pub struct CoroRuntime {
    slots: Vec<CoroSlot>,
    injector: Mutex<Injector>,
    injector_cv: Condvar,
    stats: Arc<NetStats>,
    stack_bytes: usize,
    /// Bytes of stack this runtime currently has leased from the global
    /// pool. The per-job stats gauge tracks the peak of *this* figure, not
    /// the pool's process-wide resident bytes — concurrently running jobs
    /// (service mode) must not bleed into each other's reported peaks.
    leased_bytes: AtomicU64,
    workers: Mutex<Vec<CarrierHandle<()>>>,
}

// Raw pointers inside EntryArgs never leave the runtime's control.
unsafe impl Send for CoroRuntime {}
unsafe impl Sync for CoroRuntime {}

impl CoroRuntime {
    /// Create a runtime for `capacity` process slots whose stacks have
    /// `stack_bytes` usable bytes. Installs the stack-overflow SIGSEGV
    /// handler on first use.
    pub fn new(capacity: usize, stack_bytes: usize, stats: Arc<NetStats>) -> Arc<CoroRuntime> {
        assert!(
            supported(),
            "coroutine carriers are not supported on this target \
             (need linux + x86_64/aarch64)"
        );
        stack::install_overflow_handler();
        let slots = (0..capacity)
            .map(|_| CoroSlot {
                ctx: AtomicUsize::new(0),
                canary: AtomicUsize::new(0),
                stack: Mutex::new(None),
                entry: Mutex::new(None),
            })
            .collect();
        Arc::new(CoroRuntime {
            slots,
            injector: Mutex::new(Injector {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            injector_cv: Condvar::new(),
            stats,
            stack_bytes,
            leased_bytes: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        })
    }

    /// Install `body` as slot `slot`'s coroutine: lease a stack, write the
    /// initial switch frame, and park the body for the trampoline. Nothing
    /// runs until a dispatcher resumes the slot (after [`Self::activate`]).
    /// The handle reports the body's result or panic payload exactly like
    /// [`CarrierPool::run`].
    pub fn spawn<T, F>(&self, slot: usize, body: F) -> CarrierHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let s = &self.slots[slot];
        assert_eq!(
            s.ctx.load(Ordering::Relaxed),
            0,
            "slot {slot} spawned twice"
        );
        let (res_tx, res_rx) = unbounded();
        let wrapped: Box<dyn FnOnce() + Send> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(body));
            let _ = res_tx.send(result);
        });
        let (stk, source) = StackPool::global().get(self.stack_bytes);
        let leased = self
            .leased_bytes
            .fetch_add(stk.footprint() as u64, Ordering::Relaxed)
            + stk.footprint() as u64;
        self.stats
            .record_stack_lease(source == StackSource::Fresh, leased);
        let args = Box::into_raw(Box::new(EntryArgs {
            rt: self as *const CoroRuntime,
            slot,
        }));
        let sp = unsafe { arch::prepare(&stk, args as usize) };
        s.canary.store(stk.canary_addr(), Ordering::Relaxed);
        *s.entry.lock().unwrap_or_else(|e| e.into_inner()) = Some(wrapped);
        *s.stack.lock().unwrap_or_else(|e| e.into_inner()) = Some(stk);
        s.ctx.store(sp, Ordering::Release);
        CarrierHandle { result: res_rx }
    }

    /// Lease `workers` OS threads from the global [`CarrierPool`] and start
    /// hosting coroutines. Returns `(spawned, reused)` thread counts for the
    /// job report — across back-to-back jobs the same few pooled threads
    /// serve every run, which is what keeps the whole-process OS-thread
    /// count ≤ workers + a small allowance.
    pub fn activate(self: &Arc<Self>, workers: usize) -> (usize, usize) {
        let mut spawned = 0;
        let mut reused = 0;
        let mut handles = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..workers.max(1) {
            let rt = Arc::clone(self);
            let (h, source) = CarrierPool::global().run(WORKER_STACK, move || worker_loop(rt));
            match source {
                CarrierSource::Spawned => spawned += 1,
                CarrierSource::Reused => reused += 1,
            }
            handles.push(h);
        }
        (spawned, reused)
    }

    /// Stop the worker threads and wait for them to drain back into the
    /// [`CarrierPool`]. Must be called after every process handle has been
    /// joined; by then all coroutines have retired and the last stack has
    /// been recycled by the worker that hosted it.
    pub fn shutdown(&self) {
        {
            let mut inj = self.injector.lock().unwrap_or_else(|e| e.into_inner());
            inj.shutdown = true;
        }
        self.injector_cv.notify_all();
        let handles: Vec<_> = {
            let mut w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            w.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Defer a direct handoff: the next suspension on this host thread
    /// switches straight to `slot` instead of returning to the worker loop.
    /// Called from the scheduler's hot dispatch sites (`depart`,
    /// `yield_now`), which always suspend immediately after signalling.
    /// Off-coroutine callers (the launcher thread) fall back to the queue.
    pub(crate) fn defer_switch(&self, slot: usize) {
        if CURRENT.get() == NONE {
            self.enqueue_resume(slot);
            return;
        }
        let prev = PENDING.replace(slot);
        debug_assert_eq!(prev, NONE, "two deferred handoffs before a suspension");
        if prev != NONE {
            // Never lose a wake even if the invariant breaks in release.
            self.enqueue_resume(prev);
        }
    }

    /// Queue `slot` for resumption by a worker thread (cold dispatch sites:
    /// idle-permit grants, quiescence-verdict wakes, off-coroutine callers).
    pub(crate) fn enqueue_resume(&self, slot: usize) {
        {
            let mut inj = self.injector.lock().unwrap_or_else(|e| e.into_inner());
            inj.queue.push_back(slot);
        }
        self.injector_cv.notify_one();
    }

    /// Suspend the calling coroutine: publish its context for later
    /// resumption and switch to the deferred handoff target if one is
    /// pending, else back to the worker loop. Returns when some dispatcher
    /// resumes this slot — possibly on a different OS thread.
    pub(crate) fn suspend_current(&self) {
        let me = CURRENT.get();
        assert_ne!(me, NONE, "suspend_current called outside a coroutine");
        if !stack::canary_intact(self.slots[me].canary.load(Ordering::Relaxed)) {
            stack::canary_violation(me);
        }
        self.stats.record_stack_switch();
        let target = PENDING.replace(NONE);
        if target != NONE {
            let tctx = spin_take(self, target);
            CURRENT.set(target);
            unsafe { arch::switch(self.slots[me].ctx.as_ptr(), tctx) };
        } else {
            CURRENT.set(NONE);
            let wctx = WORKER_CTX.with(Cell::get);
            unsafe { arch::switch(self.slots[me].ctx.as_ptr(), wctx) };
        }
        // Resumed — possibly on another OS thread; recycle whatever retired
        // context this thread just left.
        finalize_retired(self);
    }

    /// Slot of the coroutine the calling OS thread is currently hosting.
    pub(crate) fn hosted_slot(&self) -> Option<usize> {
        match CURRENT.get() {
            NONE => None,
            s => Some(s),
        }
    }

    /// The job-level stats sink this runtime reports switch counts to.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Number of process slots this runtime hosts.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Take a slot's resume token, spinning out the (rare, tiny) window where
/// the owner has been marked runnable but has not yet finished publishing
/// its saved context. At most one dispatcher targets a slot at a time, so
/// this never contends with another taker.
fn spin_take(rt: &CoroRuntime, slot: usize) -> usize {
    let ctx = &rt.slots[slot].ctx;
    let mut spins = 0u32;
    loop {
        let v = ctx.swap(0, Ordering::Acquire);
        if v != 0 {
            return v;
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Recycle the stack of a coroutine that retired on this OS thread. Runs in
/// the first context after the retiree's final switch-away — the worker
/// loop, a resumed coroutine, or a freshly entered one — which is the
/// earliest point the retired stack is guaranteed quiescent.
fn finalize_retired(rt: &CoroRuntime) {
    let slot = RETIRE.replace(NONE);
    if slot == NONE {
        return;
    }
    rt.slots[slot].canary.store(0, Ordering::Relaxed);
    let stk = rt.slots[slot]
        .stack
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    if let Some(stk) = stk {
        if !stk.canary_ok() {
            stack::canary_violation(slot);
        }
        rt.leased_bytes
            .fetch_sub(stk.footprint() as u64, Ordering::Relaxed);
        StackPool::global().put(stk);
    }
}

/// Body of each hosting OS thread: drain the injector, switch into each
/// resumed coroutine, recycle retirees, exit on shutdown.
fn worker_loop(rt: Arc<CoroRuntime>) {
    loop {
        let slot = {
            let mut inj = rt.injector.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = inj.queue.pop_front() {
                    break Some(s);
                }
                if inj.shutdown {
                    break None;
                }
                inj = rt.injector_cv.wait(inj).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(slot) = slot else { return };
        host_one(&rt, slot);
    }
}

/// Switch from the worker loop into coroutine `slot`; returns when some
/// coroutine on this thread suspends back to the worker (not necessarily
/// `slot` — direct handoffs may have chained through many others).
fn host_one(rt: &CoroRuntime, slot: usize) {
    let tctx = spin_take(rt, slot);
    CURRENT.set(slot);
    rt.stats.record_stack_switch();
    let wctx = WORKER_CTX.with(Cell::as_ptr);
    unsafe { arch::switch(wctx, tctx) };
    CURRENT.set(NONE);
    finalize_retired(rt);
}

/// Rust half of the first-activation trampoline (the asm shim calls this
/// with the `EntryArgs` pointer). Runs the process body under
/// `catch_unwind`, then retires: marks the slot for stack recycling and
/// switches away forever. The final context save goes to a stack slot of
/// this dying frame — the slot's `ctx` stays 0, so the coroutine can never
/// be resumed again.
unsafe extern "C" fn coro_entry(raw: usize) -> ! {
    let args = Box::from_raw(raw as *mut EntryArgs);
    let rt: &CoroRuntime = &*args.rt;
    let slot = args.slot;
    drop(args);
    // This thread just switched in from some prior context.
    finalize_retired(rt);
    let body = rt.slots[slot]
        .entry
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("coroutine activated without a body");
    // `body` is itself a catch_unwind wrapper (see spawn); this outer catch
    // is a belt-and-braces guard because unwinding out of an extern "C"
    // frame — and across the asm shim — would be undefined behavior.
    let _ = catch_unwind(AssertUnwindSafe(body));
    if !stack::canary_intact(rt.slots[slot].canary.load(Ordering::Relaxed)) {
        stack::canary_violation(slot);
    }
    RETIRE.set(slot);
    rt.stats.record_stack_switch();
    let mut graveyard = 0usize;
    let target = PENDING.replace(NONE);
    if target != NONE {
        let tctx = spin_take(rt, target);
        CURRENT.set(target);
        arch::switch(&mut graveyard, tctx);
    } else {
        CURRENT.set(NONE);
        arch::switch(&mut graveyard, WORKER_CTX.with(Cell::get));
    }
    // A retired coroutine has no resume token; control cannot come back.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn rt(capacity: usize) -> Arc<CoroRuntime> {
        CoroRuntime::new(capacity, 128 * 1024, Arc::new(NetStats::new()))
    }

    #[test]
    fn single_coroutine_runs_and_returns() {
        if !supported() {
            return;
        }
        let rt = rt(1);
        let h = rt.spawn(0, || 6 * 7);
        rt.enqueue_resume(0);
        rt.activate(1);
        assert_eq!(h.join().unwrap(), 42);
        rt.shutdown();
        assert!(rt.stats().snapshot().stack_switches() >= 1);
    }

    #[test]
    fn panicking_coroutine_reports_payload_and_retires_cleanly() {
        if !supported() {
            return;
        }
        let rt = rt(2);
        let h0 = rt.spawn(0, || -> usize { panic!("coro body panic") });
        let h1 = rt.spawn(1, || 7usize);
        rt.enqueue_resume(0);
        rt.enqueue_resume(1);
        rt.activate(1);
        let payload = h0.join().unwrap_err();
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("coro body panic")
        );
        assert_eq!(h1.join().unwrap(), 7);
        rt.shutdown();
    }

    #[test]
    fn suspend_resume_round_trip_restores_state() {
        if !supported() {
            return;
        }
        // Coroutine 0 computes, suspends to the worker, and is later
        // re-queued by the main thread; its locals must survive the round
        // trip (the registers + stack were saved and restored).
        let rt0 = rt(1);
        static PHASE: AtomicU64 = AtomicU64::new(0);
        PHASE.store(0, Ordering::SeqCst);
        let rt_c = Arc::clone(&rt0);
        let h = rt0.spawn(0, move || {
            let secret = 0x5EC4E7u64;
            PHASE.store(1, Ordering::SeqCst);
            rt_c.suspend_current();
            PHASE.store(2, Ordering::SeqCst);
            secret + 1
        });
        rt0.enqueue_resume(0);
        rt0.activate(1);
        while PHASE.load(Ordering::SeqCst) < 1 {
            std::thread::yield_now();
        }
        // It suspended (ctx republished); resume it from off-coroutine.
        while rt0.slots[0].ctx.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        rt0.enqueue_resume(0);
        assert_eq!(h.join().unwrap(), 0x5EC4E7 + 1);
        assert_eq!(PHASE.load(Ordering::SeqCst), 2);
        rt0.shutdown();
    }

    #[test]
    fn direct_handoff_chains_between_coroutines() {
        if !supported() {
            return;
        }
        // 0 hands directly to 1 (PENDING path) which finishes; both retire,
        // stacks recycled, one worker thread hosted the whole chain.
        let rt0 = rt(2);
        let before = StackPool::global().reused();
        let rt_a = Arc::clone(&rt0);
        let h0 = rt0.spawn(0, move || {
            rt_a.defer_switch(1);
            rt_a.suspend_current(); // consumed the deferred handoff: runs 1
            13u32
        });
        let h1 = rt0.spawn(1, || 29u32);
        rt0.enqueue_resume(0);
        rt0.activate(1);
        // 0 suspended into 1; 1 finished without waking 0 — wake it here.
        assert_eq!(h1.join().unwrap(), 29);
        while rt0.slots[0].ctx.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        rt0.enqueue_resume(0);
        assert_eq!(h0.join().unwrap(), 13);
        rt0.shutdown();
        let _ = before;
    }

    #[test]
    fn stacks_recycle_through_the_pool_across_runtimes() {
        if !supported() {
            return;
        }
        // Use a size class private to this test so parallel tests don't
        // interfere with the reuse accounting.
        let size = 128 * 1024 + 0x9000;
        let stats = Arc::new(NetStats::new());
        let rt0 = CoroRuntime::new(1, size, Arc::clone(&stats));
        let h = rt0.spawn(0, || 1u8);
        rt0.enqueue_resume(0);
        rt0.activate(1);
        h.join().unwrap();
        rt0.shutdown();
        let snap0 = stats.snapshot();
        assert_eq!(snap0.stacks_allocated(), 1);
        assert_eq!(snap0.stacks_reused(), 0);
        // Second "job": the same stack must come back from the pool.
        let rt1 = CoroRuntime::new(1, size, Arc::clone(&stats));
        let h = rt1.spawn(0, || 2u8);
        rt1.enqueue_resume(0);
        rt1.activate(1);
        h.join().unwrap();
        rt1.shutdown();
        let snap1 = stats.snapshot();
        assert_eq!(snap1.stacks_allocated(), 1, "no second allocation");
        assert_eq!(snap1.stacks_reused(), 1, "pooled stack reused");
        assert!(snap1.stack_bytes_peak() >= size as u64);
    }

    #[test]
    fn stack_peak_gauge_is_per_runtime_not_pool_wide() {
        if !supported() {
            return;
        }
        // Regression (service mode): the peak gauge used to report the
        // global pool's resident bytes, so a big job's stacks inflated a
        // small concurrent job's reported peak. Lease a lot of stack on one
        // runtime, then run a 1-stack runtime: its peak must reflect its
        // own single lease, not the pool-wide footprint the big runtime
        // left behind.
        let size = 128 * 1024 + 0xd000; // private size class
        let big_stats = Arc::new(NetStats::new());
        let big = CoroRuntime::new(8, size, Arc::clone(&big_stats));
        let handles: Vec<_> = (0..8).map(|s| big.spawn(s, move || s)).collect();
        for s in 0..8 {
            big.enqueue_resume(s);
        }
        big.activate(1);
        for h in handles {
            h.join().unwrap();
        }
        big.shutdown();
        assert!(
            big_stats.snapshot().stack_bytes_peak() >= 8 * size as u64,
            "the big runtime's own peak covers all eight leases"
        );
        let small_stats = Arc::new(NetStats::new());
        let small = CoroRuntime::new(1, size, Arc::clone(&small_stats));
        let h = small.spawn(0, || 3u8);
        small.enqueue_resume(0);
        small.activate(1);
        h.join().unwrap();
        small.shutdown();
        let peak = small_stats.snapshot().stack_bytes_peak();
        // One lease: usable size + guard pages + rounding, nowhere near the
        // ≥ 8 stacks the pool is still holding resident for this class.
        assert!(peak >= size as u64, "peak covers the single lease: {peak}");
        assert!(
            peak < 2 * (size as u64 + 128 * 1024),
            "peak {peak} must reflect this runtime's single lease, \
             not the pool's resident footprint"
        );
    }
}
