//! Guarded coroutine stacks and the process-global stack pool.
//!
//! Every simulated process in coroutine carrier mode ([`super::coro`]) runs
//! on a stack allocated here rather than on an OS thread's stack. Two
//! allocation strategies exist, tried in order:
//!
//! 1. **`mmap` with a guard region** (Linux): the mapping is created
//!    `PROT_NONE` and the usable portion above the guard is flipped to
//!    read/write. Running off the bottom of the stack faults inside the
//!    guard, and the [`install_overflow_handler`] SIGSEGV handler converts
//!    that fault into an immediate diagnostic + `abort()` instead of silent
//!    corruption of a neighboring allocation. Pages are committed lazily by
//!    the kernel, so thousands of 1 MiB stacks cost virtual address space,
//!    not resident memory.
//! 2. **Heap fallback** (anywhere, or if `mmap` fails): a boxed byte slice
//!    with a canary pattern written at the low end. The canary is checked at
//!    every suspension point and on stack retirement; a clobbered canary
//!    also aborts with a diagnostic. This is detection-after-the-fact rather
//!    than prevention, which is why the guard-page path is preferred.
//!
//! Stacks are never freed while the process lives: the [`StackPool`]
//! recycles them across coroutines and across jobs (mirroring the
//! OS-thread [`super::CarrierPool`]), bucketed by requested size. The pool
//! tracks allocation/reuse counts and a resident-bytes high-water mark that
//! [`crate::stats::NetStats`] surfaces to benchmark reports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Canary word written (×[`CANARY_WORDS`]) at the low end of every stack.
///
/// Checked lock-free at each suspension point; see [`canary_intact`].
pub const CANARY: usize = 0xC0DE_57AC_CA11_AB1E_u64 as usize;

/// Number of canary words stamped at the usable base of each stack.
pub const CANARY_WORDS: usize = 4;

/// Guard-region size in bytes for `mmap`-backed stacks (rounded up to the
/// page size at allocation time). 64 KiB catches frames that leap well past
/// the stack base, not just single-page overruns.
pub const GUARD_BYTES: usize = 64 * 1024;

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal raw libc surface. The workspace is offline and deliberately
    //! has no `libc` crate; these match the x86_64/aarch64 LP64 glibc ABI.
    #![allow(missing_docs)]

    use std::os::raw::{c_int, c_void};

    pub const PROT_NONE: c_int = 0;
    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    pub const MAP_STACK: c_int = 0x0002_0000;
    pub const MAP_FAILED: usize = usize::MAX;
    pub const SC_PAGESIZE: c_int = 30;
    pub const SIGSEGV: c_int = 11;
    pub const SA_SIGINFO: c_int = 4;
    pub const SA_ONSTACK: c_int = 0x0800_0000;

    /// glibc `struct sigaction` for LP64 Linux: handler pointer, 1024-bit
    /// signal mask, flags (padded to 8), restorer.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Sigaction {
        pub handler: usize,
        pub mask: [u64; 16],
        pub flags: c_int,
        pub _pad: c_int,
        pub restorer: usize,
    }

    /// Prefix of `siginfo_t`: three ints, 4 bytes padding (the union that
    /// follows holds pointers, so it is 8-aligned), then `si_addr` for
    /// SIGSEGV.
    #[repr(C)]
    pub struct SigInfo {
        pub si_signo: c_int,
        pub si_errno: c_int,
        pub si_code: c_int,
        pub _pad: c_int,
        pub si_addr: usize,
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: c_int) -> c_int;
        pub fn sysconf(name: c_int) -> i64;
        pub fn sigaction(sig: c_int, act: *const Sigaction, old: *mut Sigaction) -> c_int;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn abort() -> !;
    }
}

#[cfg(target_os = "linux")]
fn page_size() -> usize {
    static PAGE: OnceLock<usize> = OnceLock::new();
    *PAGE.get_or_init(|| {
        let p = unsafe { sys::sysconf(sys::SC_PAGESIZE) };
        if p > 0 {
            p as usize
        } else {
            4096
        }
    })
}

/// One coroutine stack: either an `mmap` region with a leading guard, or a
/// heap slice with only the canary for protection.
pub struct CoroStack {
    /// Mapping base (the guard region's first byte) for mmap stacks;
    /// allocation base for heap stacks.
    base: usize,
    /// Total mapped/allocated length in bytes.
    total: usize,
    /// Guard bytes at the low end (0 for heap stacks).
    guard: usize,
    /// Requested usable size — the [`StackPool`] bucket key.
    size_class: usize,
    /// Backing storage for the heap fallback (`None` for mmap stacks).
    heap: Option<Box<[u8]>>,
}

// The raw base pointer refers to memory exclusively owned by this value.
unsafe impl Send for CoroStack {}

impl CoroStack {
    /// Allocate a stack with `usable` read-write bytes. Prefers a guarded
    /// `mmap` region; falls back to a heap slice if unavailable.
    pub fn new(usable: usize) -> CoroStack {
        #[cfg(target_os = "linux")]
        if let Some(s) = CoroStack::new_mmap(usable) {
            return s;
        }
        CoroStack::new_heap(usable)
    }

    #[cfg(target_os = "linux")]
    fn new_mmap(usable: usize) -> Option<CoroStack> {
        let page = page_size();
        let round = |n: usize| n.div_ceil(page) * page;
        let guard = round(GUARD_BYTES.max(page));
        let body = round(usable.max(page));
        let total = guard + body;
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                total,
                sys::PROT_NONE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_STACK,
                -1,
                0,
            )
        };
        if base as usize == sys::MAP_FAILED || base.is_null() {
            return None;
        }
        let rw = unsafe {
            sys::mprotect(
                (base as usize + guard) as *mut _,
                body,
                sys::PROT_READ | sys::PROT_WRITE,
            )
        };
        if rw != 0 {
            unsafe { sys::munmap(base, total) };
            return None;
        }
        register_guard(base as usize, base as usize + guard);
        let s = CoroStack {
            base: base as usize,
            total,
            guard,
            size_class: usable,
            heap: None,
        };
        s.write_canary();
        Some(s)
    }

    fn new_heap(usable: usize) -> CoroStack {
        // Over-allocate so both the canary base and the top can be 16-aligned.
        let len = usable.max(4096) + 32;
        let heap = vec![0u8; len].into_boxed_slice();
        let base = heap.as_ptr() as usize;
        let s = CoroStack {
            base,
            total: len,
            guard: 0,
            size_class: usable,
            heap: Some(heap),
        };
        s.write_canary();
        s
    }

    /// Highest usable address (exclusive); the initial stack pointer is
    /// derived from this, aligned down to 16.
    pub fn top(&self) -> usize {
        (self.base + self.total) & !15
    }

    /// Address of the canary words: the lowest 16-aligned usable address.
    pub fn canary_addr(&self) -> usize {
        (self.base + self.guard + 15) & !15
    }

    /// Whether this stack has a `PROT_NONE` guard region below it.
    pub fn guarded(&self) -> bool {
        self.guard != 0
    }

    /// The usable size this stack was requested with (pool bucket key).
    pub fn size_class(&self) -> usize {
        self.size_class
    }

    /// Total bytes this stack holds in virtual memory (guard included).
    pub fn footprint(&self) -> usize {
        self.total
    }

    /// (Re-)stamp the canary pattern at the stack base.
    pub fn write_canary(&self) {
        let p = self.canary_addr() as *mut usize;
        for i in 0..CANARY_WORDS {
            unsafe { p.add(i).write_volatile(CANARY) };
        }
    }

    /// Check the canary; `false` means the low end of the stack was
    /// overwritten (overflow on a heap-backed stack, or a stray write).
    pub fn canary_ok(&self) -> bool {
        canary_intact(self.canary_addr())
    }
}

impl Drop for CoroStack {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if self.heap.is_none() {
            unsafe { sys::munmap(self.base as *mut _, self.total) };
        }
    }
}

/// Check [`CANARY_WORDS`] canary words at `addr` (0 ⇒ vacuously intact).
///
/// Kept free-standing so the coroutine runtime can verify a stack it does
/// not hold a [`CoroStack`] reference to, from just the recorded address.
pub fn canary_intact(addr: usize) -> bool {
    if addr == 0 {
        return true;
    }
    let p = addr as *const usize;
    (0..CANARY_WORDS).all(|i| unsafe { p.add(i).read_volatile() } == CANARY)
}

/// Abort the process with a stack-corruption diagnostic. Called when a
/// canary check fails; async-signal-safety is not required here (we are on
/// a normal code path), so plain `eprintln!` is fine.
pub fn canary_violation(slot: usize) -> ! {
    eprintln!(
        "sim-net: fatal: coroutine stack canary clobbered (process slot {slot}); \
         a simulated process overflowed its stack — raise \
         JobBuilder::proc_stack_size. Aborting before the corruption spreads."
    );
    std::process::abort();
}

// ---------------------------------------------------------------------------
// Guard registry + SIGSEGV diagnostics (Linux only)
// ---------------------------------------------------------------------------

/// Capacity of the static guard-range table scanned by the signal handler.
const MAX_GUARDS: usize = 16384;

#[cfg(target_os = "linux")]
static GUARD_LO: [AtomicUsize; MAX_GUARDS] = [const { AtomicUsize::new(0) }; MAX_GUARDS];
#[cfg(target_os = "linux")]
static GUARD_HI: [AtomicUsize; MAX_GUARDS] = [const { AtomicUsize::new(0) }; MAX_GUARDS];
#[cfg(target_os = "linux")]
static GUARD_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Record a guard range `[lo, hi)` for the SIGSEGV handler. The store of
/// `hi` happens-before the release store of `lo`, and the handler reads
/// `lo` with acquire, so a nonzero `lo` implies a valid `hi` — the table is
/// scannable from an async signal context without locks.
#[cfg(target_os = "linux")]
fn register_guard(lo: usize, hi: usize) {
    let i = GUARD_COUNT.fetch_add(1, Ordering::Relaxed);
    if i < MAX_GUARDS {
        GUARD_HI[i].store(hi, Ordering::Relaxed);
        GUARD_LO[i].store(lo, Ordering::Release);
    }
}

#[cfg(target_os = "linux")]
fn fault_in_guard(addr: usize) -> bool {
    if addr == 0 {
        return false;
    }
    let n = GUARD_COUNT.load(Ordering::Relaxed).min(MAX_GUARDS);
    for i in 0..n {
        let lo = GUARD_LO[i].load(Ordering::Acquire);
        if lo != 0 && addr >= lo && addr < GUARD_HI[i].load(Ordering::Relaxed) {
            return true;
        }
    }
    false
}

#[cfg(target_os = "linux")]
static PREV_SEGV: OnceLock<sys::Sigaction> = OnceLock::new();

/// SIGSEGV handler: faults inside a registered coroutine guard region get a
/// diagnostic and an abort; everything else is chained to the previously
/// installed handler (std's own overflow reporter) or re-raised with the
/// default disposition. Only async-signal-safe calls (`write`, `abort`,
/// `sigaction`) are made on the guard path.
#[cfg(target_os = "linux")]
unsafe extern "C" fn on_segv(
    _sig: std::os::raw::c_int,
    info: *mut sys::SigInfo,
    ctx: *mut std::os::raw::c_void,
) {
    let addr = if info.is_null() { 0 } else { (*info).si_addr };
    if fault_in_guard(addr) {
        const MSG: &[u8] = b"sim-net: fatal: simulated-process stack overflow \
(coroutine guard page hit); raise JobBuilder::proc_stack_size\n";
        sys::write(2, MSG.as_ptr() as *const _, MSG.len());
        sys::abort();
    }
    // Not one of ours: defer to whatever was installed before us.
    if let Some(prev) = PREV_SEGV.get() {
        if prev.flags & sys::SA_SIGINFO != 0 && prev.handler > 1 {
            let f: unsafe extern "C" fn(
                std::os::raw::c_int,
                *mut sys::SigInfo,
                *mut std::os::raw::c_void,
            ) = std::mem::transmute(prev.handler);
            f(sys::SIGSEGV, info, ctx);
            return;
        }
    }
    // No previous siginfo handler: restore the default disposition and
    // return; the faulting instruction re-executes and the kernel applies
    // the default action.
    let dfl = sys::Sigaction {
        handler: 0,
        mask: [0; 16],
        flags: 0,
        _pad: 0,
        restorer: 0,
    };
    sys::sigaction(sys::SIGSEGV, &dfl, std::ptr::null_mut());
}

/// Install the guard-page SIGSEGV handler (idempotent). `SA_ONSTACK` is
/// essential: the faulting thread's stack pointer is *inside* the guard, so
/// the handler must run on the sigaltstack that std installs per thread.
pub fn install_overflow_handler() {
    #[cfg(target_os = "linux")]
    {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| unsafe {
            let act = sys::Sigaction {
                handler: on_segv as *const () as usize,
                mask: [0; 16],
                flags: sys::SA_SIGINFO | sys::SA_ONSTACK,
                _pad: 0,
                restorer: 0,
            };
            let mut old = sys::Sigaction {
                handler: 0,
                mask: [0; 16],
                flags: 0,
                _pad: 0,
                restorer: 0,
            };
            if sys::sigaction(sys::SIGSEGV, &act, &mut old) == 0 {
                let _ = PREV_SEGV.set(old);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// StackPool
// ---------------------------------------------------------------------------

/// Process-global recycling pool for coroutine stacks, bucketed by requested
/// usable size. Mirrors the OS-thread [`super::CarrierPool`]: back-to-back
/// jobs reuse stacks instead of re-mapping, and nothing is ever unmapped.
pub struct StackPool {
    idle: Mutex<HashMap<usize, Vec<CoroStack>>>,
    allocated: AtomicU64,
    reused: AtomicU64,
    resident: AtomicU64,
}

/// Whether a stack lease was freshly mapped or recycled from the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackSource {
    /// A new stack was allocated.
    Fresh,
    /// An idle pooled stack was reused.
    Reused,
}

impl StackPool {
    /// The process-wide pool shared by every coroutine runtime.
    pub fn global() -> &'static StackPool {
        static POOL: OnceLock<StackPool> = OnceLock::new();
        POOL.get_or_init(|| StackPool {
            idle: Mutex::new(HashMap::new()),
            allocated: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        })
    }

    /// Lease a stack with `usable` read-write bytes.
    pub fn get(&self, usable: usize) -> (CoroStack, StackSource) {
        let pooled = {
            let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
            idle.get_mut(&usable).and_then(Vec::pop)
        };
        match pooled {
            Some(s) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                (s, StackSource::Reused)
            }
            None => {
                let s = CoroStack::new(usable);
                self.allocated.fetch_add(1, Ordering::Relaxed);
                self.resident
                    .fetch_add(s.footprint() as u64, Ordering::Relaxed);
                (s, StackSource::Fresh)
            }
        }
    }

    /// Return a stack to the pool. The canary is verified and re-stamped;
    /// a clobbered canary aborts (the neighbor-corruption backstop for
    /// heap-backed stacks).
    pub fn put(&self, s: CoroStack) {
        if !s.canary_ok() {
            canary_violation(usize::MAX);
        }
        s.write_canary();
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        idle.entry(s.size_class()).or_default().push(s);
    }

    /// Total stacks ever allocated (never decremented; stacks are pooled
    /// forever).
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Total leases satisfied from the pool instead of a fresh allocation.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// High-water mark of bytes held in stacks (virtual footprint, guards
    /// included). Because stacks are never freed this equals the running
    /// total of all allocations.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_stack_has_guard_and_canary() {
        let s = CoroStack::new(64 * 1024);
        if cfg!(target_os = "linux") {
            assert!(s.guarded(), "linux should take the mmap path");
        }
        assert!(s.canary_ok());
        assert_eq!(s.top() % 16, 0);
        assert_eq!(s.canary_addr() % 16, 0);
        assert!(s.top() - s.canary_addr() >= 64 * 1024 - 32);
    }

    #[test]
    fn heap_stack_canary_detects_overwrite() {
        let s = CoroStack::new_heap(16 * 1024);
        assert!(!s.guarded());
        assert!(s.canary_ok());
        // Simulate an overflow scribbling over the low end of the stack.
        unsafe { (s.canary_addr() as *mut usize).write_volatile(0xDEAD) };
        assert!(!s.canary_ok());
        s.write_canary();
        assert!(s.canary_ok());
    }

    #[test]
    fn pool_reuses_stacks_by_size_class() {
        let pool = StackPool {
            idle: Mutex::new(HashMap::new()),
            allocated: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        };
        let (a, src_a) = pool.get(32 * 1024);
        assert_eq!(src_a, StackSource::Fresh);
        let a_base = a.canary_addr();
        pool.put(a);
        let (b, src_b) = pool.get(32 * 1024);
        assert_eq!(src_b, StackSource::Reused);
        assert_eq!(b.canary_addr(), a_base, "same stack came back");
        let (_c, src_c) = pool.get(64 * 1024);
        assert_eq!(src_c, StackSource::Fresh, "different size class");
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.reused(), 1);
        assert!(pool.resident_bytes() >= (32 + 64) * 1024);
    }
}
