//! Network cost models.
//!
//! The paper's evaluation platform is a 64-node Grid'5000 cluster with a
//! 20 Gb/s InfiniBand fabric (Mellanox ConnectX). We replace the physical
//! network with a LogGP-style analytical cost model: a message of `s` bytes
//! injected at sender virtual time `t` becomes available at the receiver at
//!
//! ```text
//! t + o_send + L + s * G        (inter-node)
//! ```
//!
//! and matching/delivering it charges `o_recv` to the receiver's clock. The
//! parameters of [`LogGpModel::infiniband_20g`] are calibrated so that the
//! *native* one-byte ping-pong latency is ≈1.67 µs and the peak bandwidth is
//! ≈20 Gb/s, matching Figure 7 of the paper. Intra-node communication (two
//! ranks placed on the same simulated node) uses a cheaper shared-memory-like
//! parameter set.
//!
//! # The arrival-ordering contract
//!
//! The fabric's single-pass delivery pipeline (`sim_net::fabric`, DESIGN.md
//! §5.3) leans on a property of these models rather than on any sortedness
//! guarantee: arrival stamps are **near-monotonic in physical ingest order**.
//! Per sender, injection times are non-decreasing (each send charges the
//! sender's clock before stamping), and [`NetworkModel::wire_time`] is
//! required to be a pure, monotone non-decreasing function of the payload
//! size for a given locality — so a sender's arrivals only run backwards
//! when a large message is followed closely by a small one (the small one's
//! shorter wire time outruns the big one's). Across senders, ingest order
//! roughly tracks virtual time because progress happens inside MPI calls.
//! The delivery ladder exploits exactly this shape: in-order arrivals append
//! in O(1), the (measured-rare) inversions fall back to a heap, and
//! correctness never depends on the contract — only the fast-path hit rate
//! does (`deliveries_direct` vs `heap_fallbacks` in `NetStats`).
//!
//! What *is* load-bearing for determinism: implementations must be pure
//! functions of `(payload size, locality)` as stated on [`NetworkModel`], so
//! identical runs stamp identical arrivals, and ties between equal arrival
//! stamps are broken by the fabric's ingest sequence, never by wall-clock
//! time.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A network cost model maps (message size, locality) to virtual-time costs.
///
/// Implementations must be pure functions of their parameters so that
/// simulations are reproducible.
pub trait NetworkModel: Send + Sync + 'static {
    /// CPU time charged on the sender for injecting one message.
    fn send_overhead(&self, payload_bytes: usize, intra_node: bool) -> SimTime;

    /// CPU time charged on the receiver for extracting one message.
    fn recv_overhead(&self, payload_bytes: usize, intra_node: bool) -> SimTime;

    /// Wire time: delay between injection completing on the sender and the
    /// message being available at the receiver.
    fn wire_time(&self, payload_bytes: usize, intra_node: bool) -> SimTime;

    /// Total one-way cost as seen by a ping-pong benchmark: overheads plus
    /// wire time. Provided for convenience and for model-level unit tests.
    fn one_way(&self, payload_bytes: usize, intra_node: bool) -> SimTime {
        self.send_overhead(payload_bytes, intra_node)
            + self.wire_time(payload_bytes, intra_node)
            + self.recv_overhead(payload_bytes, intra_node)
    }
}

/// Parameters for one locality class (intra-node or inter-node) of the
/// LogGP-style model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Wire latency `L` in nanoseconds.
    pub latency_ns: u64,
    /// Per-message sender CPU overhead `o_s` in nanoseconds.
    pub send_overhead_ns: u64,
    /// Per-message receiver CPU overhead `o_r` in nanoseconds.
    pub recv_overhead_ns: u64,
    /// Per-byte gap `G` in picoseconds per byte (1/bandwidth).
    pub gap_ps_per_byte: u64,
    /// Extra fixed cost for messages above the eager threshold (rendezvous
    /// handshake), in nanoseconds.
    pub rendezvous_ns: u64,
    /// Eager/rendezvous switch-over size in bytes.
    pub eager_threshold: usize,
}

impl LinkParams {
    fn per_byte(&self, bytes: usize) -> SimTime {
        SimTime::from_nanos((bytes as u64 * self.gap_ps_per_byte) / 1_000)
    }
}

/// LogGP-style model with separate intra-node and inter-node parameter sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogGpModel {
    /// Parameters used when sender and receiver are on different nodes.
    pub inter: LinkParams,
    /// Parameters used when sender and receiver share a node.
    pub intra: LinkParams,
}

impl LogGpModel {
    /// Model calibrated against the paper's InfiniBand-20G measurements:
    /// native one-byte latency ≈ 1.67 µs, asymptotic bandwidth ≈ 20 Gb/s
    /// (≈ 2.3 GB/s effective after protocol overheads, as in Figure 7b).
    pub fn infiniband_20g() -> Self {
        LogGpModel {
            inter: LinkParams {
                latency_ns: 1_000,
                send_overhead_ns: 330,
                recv_overhead_ns: 340,
                // 20 Gb/s signalling ≈ 16 Gb/s data ≈ 2.0 GB/s → 0.5 ns/byte
                gap_ps_per_byte: 500,
                rendezvous_ns: 1_500,
                eager_threshold: 12 * 1024,
            },
            intra: LinkParams {
                latency_ns: 250,
                send_overhead_ns: 150,
                recv_overhead_ns: 150,
                // shared-memory copy ≈ 4 GB/s
                gap_ps_per_byte: 250,
                rendezvous_ns: 400,
                eager_threshold: 12 * 1024,
            },
        }
    }

    /// A 10x-faster toy model for unit tests that do not care about absolute
    /// calibration, only about relative ordering of events.
    pub fn fast_test_model() -> Self {
        LogGpModel {
            inter: LinkParams {
                latency_ns: 100,
                send_overhead_ns: 10,
                recv_overhead_ns: 10,
                gap_ps_per_byte: 100,
                rendezvous_ns: 50,
                eager_threshold: 4096,
            },
            intra: LinkParams {
                latency_ns: 20,
                send_overhead_ns: 5,
                recv_overhead_ns: 5,
                gap_ps_per_byte: 50,
                rendezvous_ns: 20,
                eager_threshold: 4096,
            },
        }
    }

    fn params(&self, intra_node: bool) -> &LinkParams {
        if intra_node {
            &self.intra
        } else {
            &self.inter
        }
    }
}

impl NetworkModel for LogGpModel {
    fn send_overhead(&self, payload_bytes: usize, intra_node: bool) -> SimTime {
        let p = self.params(intra_node);
        let mut t = SimTime::from_nanos(p.send_overhead_ns);
        if payload_bytes > p.eager_threshold {
            t += SimTime::from_nanos(p.rendezvous_ns);
        }
        t
    }

    fn recv_overhead(&self, payload_bytes: usize, intra_node: bool) -> SimTime {
        let p = self.params(intra_node);
        let _ = payload_bytes;
        SimTime::from_nanos(p.recv_overhead_ns)
    }

    fn wire_time(&self, payload_bytes: usize, intra_node: bool) -> SimTime {
        let p = self.params(intra_node);
        SimTime::from_nanos(p.latency_ns) + p.per_byte(payload_bytes)
    }
}

/// Classic Hockney (latency + size/bandwidth) model. Simpler than LogGP:
/// no distinct CPU overheads, no rendezvous surcharge. Used by tests and by
/// ablation benches to check that experiment *shapes* are not artifacts of one
/// particular cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HockneyModel {
    /// One-way latency, nanoseconds.
    pub alpha_ns: u64,
    /// Transfer time per byte, picoseconds.
    pub beta_ps_per_byte: u64,
}

impl HockneyModel {
    /// A model loosely matching a 20 Gb/s link with 1.6 µs base latency.
    pub fn infiniband_like() -> Self {
        HockneyModel {
            alpha_ns: 1_600,
            beta_ps_per_byte: 500,
        }
    }
}

impl NetworkModel for HockneyModel {
    fn send_overhead(&self, _payload_bytes: usize, _intra_node: bool) -> SimTime {
        SimTime::ZERO
    }

    fn recv_overhead(&self, _payload_bytes: usize, _intra_node: bool) -> SimTime {
        SimTime::ZERO
    }

    fn wire_time(&self, payload_bytes: usize, _intra_node: bool) -> SimTime {
        SimTime::from_nanos(self.alpha_ns + (payload_bytes as u64 * self.beta_ps_per_byte) / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infiniband_one_byte_latency_matches_paper_native() {
        let m = LogGpModel::infiniband_20g();
        let one_way = m.one_way(1, false);
        // Paper: native Open MPI one-byte latency is 1.67 µs. Allow ±10%.
        let us = one_way.as_micros_f64();
        assert!(
            us > 1.5 && us < 1.85,
            "one-way latency {us} µs out of range"
        );
    }

    #[test]
    fn infiniband_large_message_bandwidth_near_20gbps() {
        let m = LogGpModel::infiniband_20g();
        let size = 8 * 1024 * 1024usize;
        let t = m.one_way(size, false).as_secs_f64();
        let gbps = (size as f64 * 8.0) / t / 1e9;
        // The paper's Figure 7b tops out a bit above 10 Gb/s effective;
        // accept anything between 10 and 20 Gb/s for the model itself.
        assert!(
            gbps > 10.0 && gbps <= 20.0,
            "bandwidth {gbps} Gb/s out of range"
        );
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let m = LogGpModel::infiniband_20g();
        for &size in &[1usize, 1024, 65536, 1 << 20] {
            assert!(m.one_way(size, true) < m.one_way(size, false));
        }
    }

    #[test]
    fn rendezvous_surcharge_applies_above_threshold() {
        let m = LogGpModel::infiniband_20g();
        let below = m.send_overhead(m.inter.eager_threshold, false);
        let above = m.send_overhead(m.inter.eager_threshold + 1, false);
        assert_eq!(
            above - below,
            SimTime::from_nanos(m.inter.rendezvous_ns),
            "rendezvous handshake should be charged exactly once above the threshold"
        );
    }

    #[test]
    fn wire_time_monotone_in_size() {
        let m = LogGpModel::infiniband_20g();
        let mut prev = SimTime::ZERO;
        for size in [0usize, 1, 64, 1024, 65536, 1 << 20, 8 << 20] {
            let t = m.wire_time(size, false);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn hockney_has_no_cpu_overhead() {
        let m = HockneyModel::infiniband_like();
        assert_eq!(m.send_overhead(1024, false), SimTime::ZERO);
        assert_eq!(m.recv_overhead(1024, false), SimTime::ZERO);
        assert!(m.one_way(1024, false) > SimTime::ZERO);
    }

    #[test]
    fn fast_test_model_is_faster() {
        let fast = LogGpModel::fast_test_model();
        let ib = LogGpModel::infiniband_20g();
        assert!(fast.one_way(1024, false) < ib.one_way(1024, false));
    }
}
