//! Crash-failure injection and detection.
//!
//! The paper assumes a crash failure model and "an external service provided
//! in the system" that gives every process a consistent view of failures.
//! [`FailureService`] plays both roles:
//!
//! * **Injection** — a [`CrashSchedule`] decides when a physical process must
//!   crash: at a given virtual time, after its k-th application send, or never.
//!   The endpoint checks the schedule at every fabric interaction; when the
//!   schedule fires, the endpoint raises a [`CrashSignal`] panic which the
//!   runtime catches and converts into a dead process (no further sends, but
//!   messages already handed to the fabric stay in flight — channels are
//!   reliable).
//! * **Detection** — once a crash is recorded, every other process observes it
//!   the next time it polls the service (which the `sim-mpi` progress engine
//!   does on every call). This models a perfect failure detector.
//!
//! # Concurrency protocol
//!
//! The service sits on two of the simulator's hottest paths: the crash check
//! runs at every send/compute boundary and the failure poll on every
//! progress call — tens of millions of times per benchmark row. The common
//! state (nothing scheduled, nothing failed) is therefore answered entirely
//! from two atomics, with the inner `RwLock` consulted only once something
//! is actually armed or failed:
//!
//! * `armed` is set (and never reset) when any non-`Never` schedule is
//!   installed; `should_crash` returns immediately while it is clear.
//! * `failed_seq` is a **monotonic sequence allocator**, written under the
//!   inner write lock and read lock-free: `failures_since(from)` returns
//!   empty without locking when `from >= failed_seq`. Recovery
//!   (`mark_recovered`) removes events but never lowers the counter, so the
//!   lock-free early-out can never hide a failure a poller has not yet
//!   observed, even across recoveries that reuse endpoint ids.
//!
//! Both atomics are SeqCst: a recorder publishes the event list (under the
//! lock) before bumping `failed_seq`, so any poller that sees the new
//! sequence value also sees the event behind it.

use crate::fabric::EndpointId;
use crate::time::SimTime;
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Panic payload used to unwind a simulated process out of arbitrary user
/// code when its crash schedule fires. The runtime recognises this payload and
/// records a crash instead of a test failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    /// The physical process that crashed.
    pub endpoint: EndpointId,
    /// Virtual time of the crash.
    pub at: SimTime,
}

/// When a given physical process should crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSchedule {
    /// Never crash (default).
    Never,
    /// Crash the first time the process's virtual clock reaches `at`.
    AtTime {
        /// Virtual time threshold.
        at: SimTime,
    },
    /// Crash immediately before performing the `nth` application send
    /// (1-based: `nth == 1` crashes before the first send).
    BeforeSend {
        /// 1-based application-send index.
        nth: u64,
    },
    /// Crash immediately after completing the `nth` application send.
    AfterSend {
        /// 1-based application-send index.
        nth: u64,
    },
}

impl Default for CrashSchedule {
    fn default() -> Self {
        CrashSchedule::Never
    }
}

/// A failure observed by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// Which physical process failed.
    pub endpoint: EndpointId,
    /// Virtual time (on the failed process's clock) at which it failed.
    pub at: SimTime,
    /// Monotonic sequence number in global detection order.
    pub seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    schedules: Vec<CrashSchedule>,
    failed: Vec<FailureEvent>,
    failed_set: BTreeSet<usize>,
}

/// Shared failure-injection + perfect-failure-detection service.
///
/// The overwhelmingly common state — nothing scheduled, nothing failed — is
/// answered entirely from two atomics (`armed`, `failed_seq`): the crash
/// check runs on every send/compute boundary and the failure poll on every
/// progress call, tens of millions of times per benchmark row, so the
/// lock-guarded state is only consulted once something is actually armed or
/// failed.
#[derive(Debug, Clone, Default)]
pub struct FailureService {
    inner: Arc<RwLock<Inner>>,
    /// True once any crash schedule other than `Never` has been installed.
    /// Never reset (schedules are rare and per-job); purely a fast-path gate.
    armed: Arc<AtomicBool>,
    /// Monotonic next failure sequence number — one past the highest `seq`
    /// ever assigned. Written under the inner write lock, read lock-free by
    /// the per-progress poll. Never decremented: `mark_recovered` removes
    /// events from the list but does not reclaim their sequence numbers, so
    /// `from_seq >= failed_seq` always means "no event with `seq >= from_seq`
    /// exists" even across recoveries.
    failed_seq: Arc<AtomicU64>,
}

impl FailureService {
    /// A service for `n` physical processes, with no crashes scheduled.
    pub fn new(n: usize) -> Self {
        FailureService {
            inner: Arc::new(RwLock::new(Inner {
                schedules: vec![CrashSchedule::Never; n],
                failed: Vec::new(),
                failed_set: BTreeSet::new(),
            })),
            armed: Arc::new(AtomicBool::new(false)),
            failed_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Schedule a crash for `endpoint`. Replaces any previous schedule.
    pub fn schedule(&self, endpoint: EndpointId, schedule: CrashSchedule) {
        let mut g = self.inner.write();
        if endpoint.0 >= g.schedules.len() {
            g.schedules.resize(endpoint.0 + 1, CrashSchedule::Never);
        }
        g.schedules[endpoint.0] = schedule;
        if !matches!(schedule, CrashSchedule::Never) {
            self.armed.store(true, Ordering::SeqCst);
        }
    }

    /// The schedule currently assigned to `endpoint`.
    pub fn schedule_of(&self, endpoint: EndpointId) -> CrashSchedule {
        self.inner
            .read()
            .schedules
            .get(endpoint.0)
            .copied()
            .unwrap_or(CrashSchedule::Never)
    }

    /// Should `endpoint` crash *now*, given its clock and the number of
    /// application sends it has performed so far (`app_sends`), and whether the
    /// check happens just before (`pre_send = true`) or after a send?
    pub fn should_crash(
        &self,
        endpoint: EndpointId,
        now: SimTime,
        app_sends: u64,
        pre_send: bool,
    ) -> bool {
        // Fast path: nothing armed, nothing failed — no lock.
        if !self.armed.load(Ordering::SeqCst) && self.failed_seq.load(Ordering::SeqCst) == 0 {
            return false;
        }
        if self.is_failed(endpoint) {
            return true;
        }
        match self.schedule_of(endpoint) {
            CrashSchedule::Never => false,
            CrashSchedule::AtTime { at } => now >= at,
            CrashSchedule::BeforeSend { nth } => pre_send && app_sends + 1 >= nth,
            CrashSchedule::AfterSend { nth } => !pre_send && app_sends >= nth,
        }
    }

    /// Record that `endpoint` has crashed at virtual time `at`. Idempotent.
    /// Returns the recorded event (existing one if already failed).
    pub fn record_failure(&self, endpoint: EndpointId, at: SimTime) -> FailureEvent {
        let mut g = self.inner.write();
        if g.failed_set.contains(&endpoint.0) {
            return *g
                .failed
                .iter()
                .find(|e| e.endpoint == endpoint)
                .expect("failed_set and failed list out of sync");
        }
        // Sequence numbers come from the monotonic counter, NOT from
        // `failed.len()`: recovery shrinks the list, and reusing a length-
        // derived seq would hand a new failure a number that pollers have
        // already consumed, making them skip the event forever.
        let seq = self.failed_seq.load(Ordering::SeqCst);
        let ev = FailureEvent { endpoint, at, seq };
        g.failed.push(ev);
        g.failed_set.insert(endpoint.0);
        self.failed_seq.store(seq + 1, Ordering::SeqCst);
        ev
    }

    /// Has `endpoint` been recorded as failed?
    pub fn is_failed(&self, endpoint: EndpointId) -> bool {
        if self.failed_seq.load(Ordering::SeqCst) == 0 {
            return false;
        }
        self.inner.read().failed_set.contains(&endpoint.0)
    }

    /// Remove `endpoint` from the failed set (used by recovery when a new
    /// process is forked to replace a failed replica and takes over its id).
    pub fn mark_recovered(&self, endpoint: EndpointId) {
        let mut g = self.inner.write();
        g.failed_set.remove(&endpoint.0);
        g.failed.retain(|e| e.endpoint != endpoint);
        // `failed_seq` is deliberately left alone: it is a monotonic
        // sequence allocator, not a list length. Lowering it here would make
        // the lock-free fast path in `failures_since` hide still-unobserved
        // failures whose seq is at or above the lowered value.
        if endpoint.0 < g.schedules.len() {
            g.schedules[endpoint.0] = CrashSchedule::Never;
        }
    }

    /// All failures detected so far, in detection order. A process polls this
    /// from its progress loop and reacts to events with `seq` it has not seen
    /// yet (perfect failure detector: every alive process eventually sees every
    /// failure, in the same order).
    pub fn failures(&self) -> Vec<FailureEvent> {
        self.inner.read().failed.clone()
    }

    /// Failures with sequence number `>= from_seq` (what a process has not yet
    /// observed). The caller-has-seen-everything case is answered from an
    /// atomic without taking the lock — this runs on every progress poll.
    pub fn failures_since(&self, from_seq: u64) -> Vec<FailureEvent> {
        if from_seq >= self.failed_seq.load(Ordering::SeqCst) {
            return Vec::new();
        }
        self.inner
            .read()
            .failed
            .iter()
            .filter(|e| e.seq >= from_seq)
            .copied()
            .collect()
    }

    /// Number of processes known to this service.
    pub fn capacity(&self) -> usize {
        self.inner.read().schedules.len()
    }

    /// Number of failed processes.
    pub fn failed_count(&self) -> usize {
        self.inner.read().failed_set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: usize) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn default_schedule_never_crashes() {
        let svc = FailureService::new(4);
        assert!(!svc.should_crash(ep(0), SimTime::from_secs(1000), 1_000_000, true));
        assert!(!svc.should_crash(ep(3), SimTime::MAX, u64::MAX, false));
    }

    #[test]
    fn at_time_schedule_fires_at_threshold() {
        let svc = FailureService::new(2);
        svc.schedule(
            ep(1),
            CrashSchedule::AtTime {
                at: SimTime::from_micros(10),
            },
        );
        assert!(!svc.should_crash(ep(1), SimTime::from_micros(9), 0, false));
        assert!(svc.should_crash(ep(1), SimTime::from_micros(10), 0, false));
        assert!(!svc.should_crash(ep(0), SimTime::from_micros(10), 0, false));
    }

    #[test]
    fn before_send_schedule() {
        let svc = FailureService::new(1);
        svc.schedule(ep(0), CrashSchedule::BeforeSend { nth: 3 });
        // Before sends 1 and 2: no crash.
        assert!(!svc.should_crash(ep(0), SimTime::ZERO, 0, true));
        assert!(!svc.should_crash(ep(0), SimTime::ZERO, 1, true));
        // Before send 3 (2 sends already done): crash.
        assert!(svc.should_crash(ep(0), SimTime::ZERO, 2, true));
        // Never fires on the post-send check.
        assert!(!svc.should_crash(ep(0), SimTime::ZERO, 2, false));
    }

    #[test]
    fn after_send_schedule() {
        let svc = FailureService::new(1);
        svc.schedule(ep(0), CrashSchedule::AfterSend { nth: 2 });
        assert!(!svc.should_crash(ep(0), SimTime::ZERO, 1, false));
        assert!(svc.should_crash(ep(0), SimTime::ZERO, 2, false));
        assert!(!svc.should_crash(ep(0), SimTime::ZERO, 2, true));
    }

    #[test]
    fn record_failure_is_idempotent_and_ordered() {
        let svc = FailureService::new(4);
        let a = svc.record_failure(ep(2), SimTime::from_nanos(5));
        let b = svc.record_failure(ep(1), SimTime::from_nanos(7));
        let again = svc.record_failure(ep(2), SimTime::from_nanos(99));
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
        assert_eq!(again, a, "second report of the same failure is ignored");
        assert_eq!(svc.failed_count(), 2);
        assert!(svc.is_failed(ep(2)));
        assert!(!svc.is_failed(ep(0)));
        let all = svc.failures();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].endpoint, ep(2));
        assert_eq!(all[1].endpoint, ep(1));
    }

    #[test]
    fn failures_since_filters_by_seq() {
        let svc = FailureService::new(4);
        svc.record_failure(ep(0), SimTime::ZERO);
        svc.record_failure(ep(1), SimTime::ZERO);
        svc.record_failure(ep(2), SimTime::ZERO);
        assert_eq!(svc.failures_since(0).len(), 3);
        assert_eq!(svc.failures_since(2).len(), 1);
        assert_eq!(svc.failures_since(3).len(), 0);
    }

    #[test]
    fn failed_process_reported_as_should_crash() {
        let svc = FailureService::new(2);
        svc.record_failure(ep(0), SimTime::ZERO);
        // Even with no schedule, a process recorded as failed keeps crashing
        // (this matters for recovery tests that reuse endpoint ids).
        assert!(svc.should_crash(ep(0), SimTime::ZERO, 0, false));
    }

    #[test]
    fn mark_recovered_clears_state() {
        let svc = FailureService::new(2);
        svc.schedule(ep(0), CrashSchedule::AtTime { at: SimTime::ZERO });
        svc.record_failure(ep(0), SimTime::ZERO);
        svc.mark_recovered(ep(0));
        assert!(!svc.is_failed(ep(0)));
        assert_eq!(svc.failed_count(), 0);
        assert!(!svc.should_crash(ep(0), SimTime::from_secs(1), 0, false));
    }

    #[test]
    fn recovery_does_not_hide_later_failures() {
        // Regression: A fails (seq 0), a poller advances to from_seq = 1,
        // B fails (seq 1), then A recovers. The lock-free fast path in
        // `failures_since` must not early-return empty — B is still
        // unobserved.
        let svc = FailureService::new(4);
        svc.record_failure(ep(0), SimTime::ZERO);
        let b = svc.record_failure(ep(1), SimTime::from_nanos(3));
        svc.mark_recovered(ep(0));
        assert_eq!(svc.failures_since(1), vec![b]);
        assert_eq!(svc.failures_since(2), vec![]);
    }

    #[test]
    fn seq_is_never_reused_after_recovery() {
        // Regression: seqs must come from a monotonic counter, not the list
        // length, or a post-recovery failure reuses a seq that pollers have
        // already consumed and is silently skipped.
        let svc = FailureService::new(4);
        svc.record_failure(ep(0), SimTime::ZERO); // seq 0
        svc.record_failure(ep(1), SimTime::ZERO); // seq 1
        svc.mark_recovered(ep(0));
        let c = svc.record_failure(ep(2), SimTime::ZERO);
        assert_eq!(c.seq, 2, "recovered seqs must not be reallocated");
        // A poller that had observed seqs 0 and 1 still sees C.
        assert_eq!(svc.failures_since(2), vec![c]);
    }

    #[test]
    fn schedule_beyond_capacity_grows() {
        let svc = FailureService::new(1);
        svc.schedule(ep(5), CrashSchedule::AtTime { at: SimTime::ZERO });
        assert_eq!(svc.capacity(), 6);
        assert!(svc.should_crash(ep(5), SimTime::ZERO, 0, false));
    }
}
