//! Monte Carlo fault-campaign planning: seeded, reproducible fault plans.
//!
//! The paper validates SDR-MPI against a handful of hand-picked crash
//! scenarios (Figure 3, Figure 4); a replication protocol earns trust from
//! *campaigns* — hundreds of randomized fault injections per configuration,
//! every one reproducible from a small seed. This module is the planning half
//! of that engine: it turns a `(configuration, seed)` pair into a concrete
//! [`FaultPlan`] — a list of [`PlannedFault`]s that the job launcher compiles
//! into [`crate::FailureService::schedule`] calls (crashes) and PML
//! payload-corruption hooks (soft errors) before launch. The execution half
//! lives in `workloads::campaign`, which runs the plans and aggregates
//! survival/abort/detection rates.
//!
//! Design rules (DESIGN.md §4.2):
//!
//! * **Pure sampling.** [`sample_plan`] is a pure function of
//!   `(config, seed)`: no ambient randomness, no floating point, no
//!   platform-dependent state. Two calls with the same inputs yield
//!   byte-identical plans ([`FaultPlan::encode`]); regression stanzas can
//!   therefore reference a plan by its seed alone.
//! * **Integer-only distributions.** The exponential inter-failure law is
//!   sampled as its discrete counterpart, the geometric distribution
//!   ([`CampaignRng::geometric`]): memoryless, mean `mean_sends`, and exact
//!   with nothing but integer comparisons — no `ln`, so plans cannot drift
//!   across platforms or math libraries.
//! * **Replica-set aware.** Crash distributions know the endpoint layout of
//!   [`crate::topology::Placement::ReplicaSets`] (`endpoint = replica · ranks
//!   + rank`) so they can either *guarantee* single-replica loss (the
//!   survivable regime the paper's protocol covers) or *force* correlated
//!   loss of every replica of one rank (the regime that must abort promptly).
//!
//! When a campaign case violates its expectation, [`shrink_events`] reduces
//! the injected fault list to a locally minimal failing subset by a
//! ddmin-style binary search; the driver replays candidates under the
//! deterministic `--workers 1` scheduler so the oracle is exact.

use crate::fabric::EndpointId;
use crate::failure::CrashSchedule;
use crate::netfault::NetFaultConfig;

/// Deterministic splitmix64 generator used for plan sampling.
///
/// The same generator the vendored proptest stand-in uses: tiny state, full
/// 64-bit period-free mixing, identical output on every platform. Campaign
/// plans derive all their randomness from one of these seeded with
/// [`mix_seed`]`(config, seed)`.
#[derive(Debug, Clone)]
pub struct CampaignRng(u64);

impl CampaignRng {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        CampaignRng(seed)
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.next_u64() % bound
    }

    /// Geometric deviate on `{1, 2, ...}` with mean `mean` (success
    /// probability `1/mean`): the discrete exponential. Memoryless like the
    /// continuous law the MTBF literature uses, but sampled with integer
    /// comparisons only, so it is bit-stable across platforms. `mean = 1`
    /// (or 0) degenerates to the constant 1.
    pub fn geometric(&mut self, mean: u64) -> u64 {
        let mean = mean.max(1);
        let mut n = 1u64;
        // Failure with probability (mean-1)/mean per step; bounded so a
        // pathological mean cannot spin forever.
        while n < 1_000_000 && self.below(mean) != 0 {
            n += 1;
        }
        n
    }
}

/// One fault to inject into a job before launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedFault {
    /// Crash-stop failure of one physical process, compiled into
    /// [`crate::FailureService::schedule`].
    Crash {
        /// The physical process to kill.
        endpoint: EndpointId,
        /// When to kill it.
        schedule: CrashSchedule,
    },
    /// Soft error: flip one bit of the payload of the `nth_send`-th
    /// application message this endpoint sends (1-based), below the protocol
    /// layer — the wire carries the corrupted copy while the sender's own
    /// bookkeeping (e.g. redMPI's payload hash) saw the clean one, exactly
    /// like a NIC/DRAM upset.
    BitFlip {
        /// The physical process whose outgoing payload is corrupted.
        endpoint: EndpointId,
        /// 1-based index of the corrupted application send.
        nth_send: u64,
        /// Bit to flip, taken modulo the payload size in bits.
        bit: u32,
    },
    /// Lossy transport: a fabric-wide [`crate::netfault::NetFaultPolicy`]
    /// installed before launch, dropping/duplicating/delaying app and ack
    /// deliveries at the sampled rates. Unlike crashes and bit flips this
    /// fault is not tied to one endpoint — it degrades every link — and the
    /// job is expected to *mask* it completely (retransmission + duplicate
    /// suppression), not merely survive it.
    LossyTransport {
        /// The fault rates and delay to install.
        config: NetFaultConfig,
        /// Seed of the policy's per-link splitmix64 verdict stream.
        policy_seed: u64,
    },
}

/// Parameterized fault distributions a campaign can draw plans from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDistribution {
    /// Exponential (discretized: geometric) mean-time-between-failures per
    /// process, measured in application sends. Each endpoint independently
    /// draws an inter-failure time; it crashes if the draw lands within the
    /// run's horizon. At most one replica per rank is ever killed (draws on
    /// a rank that already lost a replica are discarded), so every sampled
    /// plan stays inside the protocol's survivable single-replica-loss
    /// regime — any non-survival is a protocol bug, not sampling bad luck.
    ExponentialMtbf {
        /// Mean sends between failures of one process.
        mean_sends: u64,
        /// Only draws `<= horizon_sends` become crashes (the run is finite).
        horizon_sends: u64,
        /// Upper bound on crashes per plan.
        max_crashes: usize,
    },
    /// Correlated node-level failure: both (all) replicas of one uniformly
    /// chosen rank crash, each at an independent geometric send index within
    /// the horizon. This models the paper's worst case — the replicas of a
    /// rank sharing a failure domain — and the job is *expected* to abort
    /// with `RankLost`, promptly.
    CorrelatedPairLoss {
        /// Mean sends before each replica's crash.
        mean_sends: u64,
        /// Crash indices are folded into `[1, horizon_sends]` so the loss
        /// always lands mid-run.
        horizon_sends: u64,
    },
    /// One crash landing mid-collective: a uniformly chosen endpoint dies
    /// after a uniformly chosen application send in `[1, max_phase]`. With
    /// the driver's collective-heavy workload, low send indices fall between
    /// the internal point-to-point rounds of a collective at a randomized
    /// phase.
    MidCollective {
        /// Upper bound (inclusive) on the crash's send index.
        max_phase: u64,
    },
    /// Soft errors: `flips` distinct `(endpoint, nth_send)` payload bit
    /// flips, uniform over endpoints, send indices in `[1, max_send]` and
    /// bit positions in `[0, payload_bits)`.
    SoftErrors {
        /// Number of distinct corrupted messages.
        flips: usize,
        /// Upper bound (inclusive) on corrupted send indices.
        max_send: u64,
        /// Exclusive upper bound on the flipped bit position.
        payload_bits: u32,
    },
    /// Lossy links: one fabric-wide [`PlannedFault::LossyTransport`] whose
    /// drop/duplicate/delay rates are drawn uniformly in `[1, max]` per
    /// fault kind (per 65 536), with a short sampled delay (5–50 µs). The
    /// protocol must mask every sampled policy: bit-correct results, zero
    /// violations, `dups_suppressed == msgs_duplicated`.
    LossyLinks {
        /// Inclusive upper bound on the sampled drop rate, per 65 536.
        max_drop_per_64k: u32,
        /// Inclusive upper bound on the sampled duplication rate, per 65 536.
        max_dup_per_64k: u32,
        /// Inclusive upper bound on the sampled delay rate, per 65 536.
        max_delay_per_64k: u32,
    },
    /// Delayed acknowledgements: no loss, but an ack-only delay policy whose
    /// rate is drawn in `[1, max_delay_per_64k]` and whose delay is drawn
    /// past the retransmission timeout base (60 µs up to `max_delay_ns`),
    /// so sender-side timers demonstrably fire and the receive windows must
    /// absorb the spurious retransmits without double delivery.
    DelayedAcks {
        /// Inclusive upper bound on the sampled ack-delay rate, per 65 536.
        max_delay_per_64k: u32,
        /// Upper bound on the sampled virtual delay, nanoseconds.
        max_delay_ns: u64,
    },
    /// One crash under a *partial* replication layout, biased 3:1 toward
    /// unreplicated ranks. `replicated_mask` bit `r` set means rank `r` has a
    /// second copy (the layout's ADJACENT numbering puts first copies and
    /// singletons at endpoint `r` and second copies after them). The sampled
    /// crash always hits endpoint `r` — the singleton itself, or the first
    /// copy of a replicated rank (the copy guaranteed to perform physical
    /// sends) — so the campaign oracle's verdict splits cleanly: a crash on a
    /// masked rank must be survived, a crash on an unmasked rank must abort
    /// promptly with `RankLost`.
    UnreplicatedBias {
        /// Bitmask of replicated ranks (rank `r` replicated iff bit `r` set).
        replicated_mask: u64,
        /// Crash send indices are drawn uniformly in `[1, horizon_sends]`.
        horizon_sends: u64,
    },
    /// Majority loss at degree ≥ 3: all but one replica of a uniformly
    /// chosen rank crash, each at an independent geometric send index within
    /// the horizon. With fork-election recovery the single survivor carries
    /// the rank, so the job is *expected to survive* — unlike
    /// [`FaultDistribution::CorrelatedPairLoss`], which removes every copy.
    MajorityLoss {
        /// Mean sends before each doomed replica's crash.
        mean_sends: u64,
        /// Crash indices are folded into `[1, horizon_sends]`.
        horizon_sends: u64,
    },
}

impl FaultDistribution {
    /// Stable discriminant used by [`mix_seed`] and [`FaultPlan::encode`].
    fn tag(&self) -> u8 {
        match self {
            FaultDistribution::ExponentialMtbf { .. } => 1,
            FaultDistribution::CorrelatedPairLoss { .. } => 2,
            FaultDistribution::MidCollective { .. } => 3,
            FaultDistribution::SoftErrors { .. } => 4,
            FaultDistribution::LossyLinks { .. } => 5,
            FaultDistribution::DelayedAcks { .. } => 6,
            FaultDistribution::UnreplicatedBias { .. } => 7,
            FaultDistribution::MajorityLoss { .. } => 8,
        }
    }

    /// Distribution parameters as canonical u64 words (same order as the
    /// struct fields), for seed mixing and plan encoding.
    fn params(&self) -> [u64; 3] {
        match *self {
            FaultDistribution::ExponentialMtbf {
                mean_sends,
                horizon_sends,
                max_crashes,
            } => [mean_sends, horizon_sends, max_crashes as u64],
            FaultDistribution::CorrelatedPairLoss {
                mean_sends,
                horizon_sends,
            } => [mean_sends, horizon_sends, 0],
            FaultDistribution::MidCollective { max_phase } => [max_phase, 0, 0],
            FaultDistribution::SoftErrors {
                flips,
                max_send,
                payload_bits,
            } => [flips as u64, max_send, payload_bits as u64],
            // The three 16-bit rate bounds pack into one canonical word.
            FaultDistribution::LossyLinks {
                max_drop_per_64k,
                max_dup_per_64k,
                max_delay_per_64k,
            } => [
                (max_drop_per_64k as u64)
                    | (max_dup_per_64k as u64) << 16
                    | (max_delay_per_64k as u64) << 32,
                0,
                0,
            ],
            FaultDistribution::DelayedAcks {
                max_delay_per_64k,
                max_delay_ns,
            } => [max_delay_per_64k as u64, max_delay_ns, 0],
            FaultDistribution::UnreplicatedBias {
                replicated_mask,
                horizon_sends,
            } => [replicated_mask, horizon_sends, 0],
            FaultDistribution::MajorityLoss {
                mean_sends,
                horizon_sends,
            } => [mean_sends, horizon_sends, 0],
        }
    }

    /// Human-readable name for reports and regression stanzas.
    pub fn name(&self) -> &'static str {
        match self {
            FaultDistribution::ExponentialMtbf { .. } => "exp-mtbf",
            FaultDistribution::CorrelatedPairLoss { .. } => "correlated-pair",
            FaultDistribution::MidCollective { .. } => "mid-collective",
            FaultDistribution::SoftErrors { .. } => "sdc",
            FaultDistribution::LossyLinks { .. } => "lossy-links",
            FaultDistribution::DelayedAcks { .. } => "delayed-acks",
            FaultDistribution::UnreplicatedBias { .. } => "unreplicated-bias",
            FaultDistribution::MajorityLoss { .. } => "majority-loss",
        }
    }
}

/// One campaign configuration: the job shape plus the fault distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Application ranks of the job under test.
    pub ranks: usize,
    /// Replication degree (2 for the paper's dual setup).
    pub degree: usize,
    /// The distribution faults are drawn from.
    pub dist: FaultDistribution,
}

impl CampaignConfig {
    /// Physical processes of a job with this shape.
    pub fn endpoints(&self) -> usize {
        self.ranks * self.degree
    }
}

/// Fold the configuration into the case seed so that the same seed under
/// different configurations yields unrelated plans. FNV-1a over the canonical
/// config words, xored into the seed.
pub fn mix_seed(config: &CampaignConfig, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut absorb = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    absorb(config.ranks as u64);
    absorb(config.degree as u64);
    absorb(config.dist.tag() as u64);
    for p in config.dist.params() {
        absorb(p);
    }
    h ^ seed
}

/// A sampled fault plan: the `(config, seed)` provenance plus the concrete
/// faults to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The configuration the plan was sampled under.
    pub config: CampaignConfig,
    /// The case seed (pre-mixing).
    pub seed: u64,
    /// Faults to inject, in sampling order.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Canonical byte encoding of the plan (config, seed, faults). Two plans
    /// are identical iff their encodings are byte-identical; the campaign's
    /// purity property test is stated over this encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.faults.len() * 32);
        out.push(1u8); // encoding version
        out.extend(&(self.config.ranks as u64).to_le_bytes());
        out.extend(&(self.config.degree as u64).to_le_bytes());
        out.push(self.config.dist.tag());
        for p in self.config.dist.params() {
            out.extend(&p.to_le_bytes());
        }
        out.extend(&self.seed.to_le_bytes());
        out.extend(&(self.faults.len() as u64).to_le_bytes());
        for f in &self.faults {
            match *f {
                PlannedFault::Crash { endpoint, schedule } => {
                    out.push(0u8);
                    out.extend(&(endpoint.0 as u64).to_le_bytes());
                    let (tag, word): (u8, u64) = match schedule {
                        CrashSchedule::Never => (0, 0),
                        CrashSchedule::AtTime { at } => (1, at.as_nanos()),
                        CrashSchedule::BeforeSend { nth } => (2, nth),
                        CrashSchedule::AfterSend { nth } => (3, nth),
                    };
                    out.push(tag);
                    out.extend(&word.to_le_bytes());
                }
                PlannedFault::BitFlip {
                    endpoint,
                    nth_send,
                    bit,
                } => {
                    out.push(1u8);
                    out.extend(&(endpoint.0 as u64).to_le_bytes());
                    out.extend(&nth_send.to_le_bytes());
                    out.extend(&(bit as u64).to_le_bytes());
                }
                PlannedFault::LossyTransport {
                    config,
                    policy_seed,
                } => {
                    out.push(2u8);
                    // Three 16-bit rates plus the ack-only flag in one word.
                    let rates = (config.drop_per_64k as u64)
                        | (config.dup_per_64k as u64) << 16
                        | (config.delay_per_64k as u64) << 32
                        | (config.ack_only as u64) << 48;
                    out.extend(&rates.to_le_bytes());
                    out.extend(&config.delay_ns.to_le_bytes());
                    out.extend(&policy_seed.to_le_bytes());
                }
            }
        }
        out
    }

    /// The crash faults of the plan, in order.
    pub fn crashes(&self) -> impl Iterator<Item = (EndpointId, CrashSchedule)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            PlannedFault::Crash { endpoint, schedule } => Some((endpoint, schedule)),
            _ => None,
        })
    }

    /// The soft-error faults of the plan, in order.
    pub fn bit_flips(&self) -> impl Iterator<Item = (EndpointId, u64, u32)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            PlannedFault::BitFlip {
                endpoint,
                nth_send,
                bit,
            } => Some((endpoint, nth_send, bit)),
            _ => None,
        })
    }

    /// The lossy-transport faults of the plan, in order (at most one per
    /// plan under the bundled distributions — the fabric accepts a single
    /// installed policy per job).
    pub fn lossy_transports(&self) -> impl Iterator<Item = (NetFaultConfig, u64)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            PlannedFault::LossyTransport {
                config,
                policy_seed,
            } => Some((config, policy_seed)),
            _ => None,
        })
    }
}

/// Sample the fault plan for `(config, seed)`. Pure: no ambient state, no
/// floating point; see the module docs for the per-distribution semantics.
pub fn sample_plan(config: CampaignConfig, seed: u64) -> FaultPlan {
    assert!(config.ranks > 0, "a campaign needs at least one rank");
    assert!(config.degree > 0, "a campaign needs degree >= 1");
    let mut rng = CampaignRng::new(mix_seed(&config, seed));
    let n_eps = config.endpoints() as u64;
    let mut faults = Vec::new();
    match config.dist {
        FaultDistribution::ExponentialMtbf {
            mean_sends,
            horizon_sends,
            max_crashes,
        } => {
            // Fixed endpoint order keeps sampling canonical; ranks that
            // already lost a replica are skipped so the plan stays inside
            // the survivable regime by construction.
            let mut lost_ranks = vec![false; config.ranks];
            for ep in 0..n_eps as usize {
                if faults.len() >= max_crashes {
                    break;
                }
                let nth = rng.geometric(mean_sends);
                let rank = ep % config.ranks;
                if nth <= horizon_sends && !lost_ranks[rank] {
                    lost_ranks[rank] = true;
                    faults.push(PlannedFault::Crash {
                        endpoint: EndpointId(ep),
                        schedule: CrashSchedule::AfterSend { nth },
                    });
                }
            }
        }
        FaultDistribution::CorrelatedPairLoss {
            mean_sends,
            horizon_sends,
        } => {
            let rank = rng.below(config.ranks as u64) as usize;
            let horizon = horizon_sends.max(1);
            for rep in 0..config.degree {
                let nth = (rng.geometric(mean_sends) - 1) % horizon + 1;
                faults.push(PlannedFault::Crash {
                    endpoint: EndpointId(rep * config.ranks + rank),
                    schedule: CrashSchedule::AfterSend { nth },
                });
            }
        }
        FaultDistribution::MidCollective { max_phase } => {
            let ep = rng.below(n_eps) as usize;
            let nth = 1 + rng.below(max_phase.max(1));
            faults.push(PlannedFault::Crash {
                endpoint: EndpointId(ep),
                schedule: CrashSchedule::AfterSend { nth },
            });
        }
        FaultDistribution::SoftErrors {
            flips,
            max_send,
            payload_bits,
        } => {
            // Distinct (endpoint, nth_send) targets: one flip per message,
            // so detections count 1:1 against injections.
            let mut taken = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while faults.len() < flips && attempts < flips * 64 + 64 {
                attempts += 1;
                let ep = rng.below(n_eps) as usize;
                let nth = 1 + rng.below(max_send.max(1));
                let bit = rng.below(payload_bits.max(1) as u64) as u32;
                if taken.insert((ep, nth)) {
                    faults.push(PlannedFault::BitFlip {
                        endpoint: EndpointId(ep),
                        nth_send: nth,
                        bit,
                    });
                }
            }
        }
        FaultDistribution::LossyLinks {
            max_drop_per_64k,
            max_dup_per_64k,
            max_delay_per_64k,
        } => {
            // One fabric-wide policy per plan; each rate is drawn in
            // [1, max] so every sampled case actually exercises all three
            // fault kinds (a zero-rate case would test nothing).
            let mut draw = |max: u32| 1 + rng.below(max.max(1) as u64) as u32;
            let config = NetFaultConfig {
                drop_per_64k: draw(max_drop_per_64k),
                dup_per_64k: draw(max_dup_per_64k),
                delay_per_64k: draw(max_delay_per_64k),
                // 5–50 µs: around and below the 50 µs retransmission base,
                // so delays sometimes look like losses to the sender.
                delay_ns: 5_000 + rng.below(45_001),
                ack_only: false,
            };
            config.validate();
            faults.push(PlannedFault::LossyTransport {
                config,
                policy_seed: rng.next_u64(),
            });
        }
        FaultDistribution::DelayedAcks {
            max_delay_per_64k,
            max_delay_ns,
        } => {
            let config = NetFaultConfig {
                drop_per_64k: 0,
                dup_per_64k: 0,
                delay_per_64k: 1 + rng.below(max_delay_per_64k.max(1) as u64) as u32,
                // Always past the 50 µs retransmission base, so the
                // sender-side timer demonstrably fires.
                delay_ns: 60_000 + rng.below(max_delay_ns.saturating_sub(60_000).max(1)),
                ack_only: true,
            };
            config.validate();
            faults.push(PlannedFault::LossyTransport {
                config,
                policy_seed: rng.next_u64(),
            });
        }
        FaultDistribution::UnreplicatedBias {
            replicated_mask,
            horizon_sends,
        } => {
            assert!(config.ranks <= 64, "the replicated mask covers 64 ranks");
            let unrep: Vec<usize> = (0..config.ranks)
                .filter(|r| replicated_mask & (1u64 << r) == 0)
                .collect();
            let rep: Vec<usize> = (0..config.ranks)
                .filter(|r| replicated_mask & (1u64 << r) != 0)
                .collect();
            let nth = 1 + rng.below(horizon_sends.max(1));
            // 3:1 bias toward unreplicated ranks (fall back to whichever
            // side is non-empty).
            let pick_unrep = !unrep.is_empty() && (rep.is_empty() || rng.below(4) < 3);
            let pool = if pick_unrep { &unrep } else { &rep };
            let rank = pool[rng.below(pool.len() as u64) as usize];
            faults.push(PlannedFault::Crash {
                endpoint: EndpointId(rank),
                schedule: CrashSchedule::AfterSend { nth },
            });
        }
        FaultDistribution::MajorityLoss {
            mean_sends,
            horizon_sends,
        } => {
            // All but one replica of one rank die; the spared replica index
            // is sampled so election must cope with any survivor, not just
            // replica 0.
            let rank = rng.below(config.ranks as u64) as usize;
            let spared = rng.below(config.degree.max(1) as u64) as usize;
            let horizon = horizon_sends.max(1);
            for rep in 0..config.degree {
                if rep == spared {
                    continue;
                }
                let nth = (rng.geometric(mean_sends) - 1) % horizon + 1;
                faults.push(PlannedFault::Crash {
                    endpoint: EndpointId(rep * config.ranks + rank),
                    schedule: CrashSchedule::AfterSend { nth },
                });
            }
        }
    }
    FaultPlan {
        config,
        seed,
        faults,
    }
}

/// Reduce `events` to a locally minimal subset still satisfying `fails`
/// (ddmin-style): repeatedly try to delete chunks of halving size, keeping
/// any deletion after which the oracle still reports failure, until no
/// single-event deletion helps. Returns the minimal subset (possibly empty
/// if the failure does not depend on the events at all). The caller's oracle
/// should replay candidates deterministically (`--workers 1`) so a flaky
/// verdict cannot derail the search; `fails(events)` is expected to be true
/// on entry (if it is not, the input is returned unchanged).
pub fn shrink_events<E, F>(events: &[E], mut fails: F) -> Vec<E>
where
    E: Clone,
    F: FnMut(&[E]) -> bool,
{
    let mut current: Vec<E> = events.to_vec();
    if !fails(&current) {
        return current;
    }
    loop {
        let mut reduced = false;
        let mut chunk = current.len().max(1).div_ceil(2);
        while chunk >= 1 {
            let mut i = 0;
            while i < current.len() {
                let end = (i + chunk).min(current.len());
                let mut candidate = Vec::with_capacity(current.len() - (end - i));
                candidate.extend_from_slice(&current[..i]);
                candidate.extend_from_slice(&current[end..]);
                if fails(&candidate) {
                    current = candidate;
                    reduced = true;
                    // Retry the same offset against the shrunk list.
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if !reduced {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dist: FaultDistribution) -> CampaignConfig {
        CampaignConfig {
            ranks: 4,
            degree: 2,
            dist,
        }
    }

    #[test]
    fn sampling_is_pure_and_byte_stable() {
        for dist in [
            FaultDistribution::ExponentialMtbf {
                mean_sends: 8,
                horizon_sends: 6,
                max_crashes: 4,
            },
            FaultDistribution::CorrelatedPairLoss {
                mean_sends: 4,
                horizon_sends: 3,
            },
            FaultDistribution::MidCollective { max_phase: 8 },
            FaultDistribution::SoftErrors {
                flips: 3,
                max_send: 6,
                payload_bits: 8192,
            },
            FaultDistribution::LossyLinks {
                max_drop_per_64k: 3277,
                max_dup_per_64k: 3277,
                max_delay_per_64k: 3277,
            },
            FaultDistribution::DelayedAcks {
                max_delay_per_64k: 32_768,
                max_delay_ns: 400_000,
            },
            FaultDistribution::UnreplicatedBias {
                replicated_mask: 0b0101,
                horizon_sends: 6,
            },
            FaultDistribution::MajorityLoss {
                mean_sends: 4,
                horizon_sends: 3,
            },
        ] {
            for seed in 0..32 {
                let a = sample_plan(cfg(dist), seed);
                let b = sample_plan(cfg(dist), seed);
                assert_eq!(a, b);
                assert_eq!(a.encode(), b.encode());
            }
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let dist = FaultDistribution::SoftErrors {
            flips: 4,
            max_send: 1 << 20,
            payload_bits: 8192,
        };
        let mut encodings = std::collections::BTreeSet::new();
        for seed in 0..256u64 {
            encodings.insert(sample_plan(cfg(dist), seed).encode());
        }
        // The plan space is astronomically larger than 256; any collision at
        // all would indicate broken seed mixing. (Deterministic: this is a
        // fixed fact of the generator, not a flaky statistical test.)
        assert_eq!(encodings.len(), 256);
    }

    #[test]
    fn config_is_mixed_into_the_seed() {
        let a = cfg(FaultDistribution::MidCollective { max_phase: 8 });
        let b = cfg(FaultDistribution::MidCollective { max_phase: 9 });
        assert_ne!(mix_seed(&a, 7), mix_seed(&b, 7));
        let wide = CampaignConfig { ranks: 8, ..a };
        assert_ne!(mix_seed(&a, 7), mix_seed(&wide, 7));
    }

    #[test]
    fn exponential_mtbf_never_kills_two_replicas_of_one_rank() {
        let dist = FaultDistribution::ExponentialMtbf {
            mean_sends: 2, // aggressive: most endpoints draw within horizon
            horizon_sends: 10,
            max_crashes: 8,
        };
        for seed in 0..200 {
            let plan = sample_plan(cfg(dist), seed);
            let mut per_rank = [0usize; 4];
            for (ep, schedule) in plan.crashes() {
                assert!(matches!(schedule, CrashSchedule::AfterSend { nth } if nth >= 1));
                per_rank[ep.0 % 4] += 1;
            }
            assert!(
                per_rank.iter().all(|&c| c <= 1),
                "seed {seed} killed two replicas of one rank: {:?}",
                plan.faults
            );
        }
    }

    #[test]
    fn correlated_pair_loss_kills_all_replicas_of_one_rank() {
        let dist = FaultDistribution::CorrelatedPairLoss {
            mean_sends: 4,
            horizon_sends: 3,
        };
        for seed in 0..100 {
            let plan = sample_plan(cfg(dist), seed);
            let crashes: Vec<_> = plan.crashes().collect();
            assert_eq!(crashes.len(), 2);
            assert_eq!(crashes[0].0 .0 % 4, crashes[1].0 .0 % 4, "same rank");
            assert_ne!(crashes[0].0, crashes[1].0, "different replicas");
            for (_, s) in crashes {
                match s {
                    CrashSchedule::AfterSend { nth } => assert!((1..=3).contains(&nth)),
                    other => panic!("unexpected schedule {other:?}"),
                }
            }
        }
    }

    #[test]
    fn soft_errors_are_distinct_per_message() {
        let dist = FaultDistribution::SoftErrors {
            flips: 5,
            max_send: 6,
            payload_bits: 64,
        };
        for seed in 0..50 {
            let plan = sample_plan(cfg(dist), seed);
            let targets: Vec<_> = plan.bit_flips().map(|(e, n, _)| (e, n)).collect();
            let mut dedup = targets.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(targets.len(), dedup.len(), "seed {seed} repeated a target");
            for (_, nth, bit) in plan.bit_flips() {
                assert!((1..=6).contains(&nth));
                assert!(bit < 64);
            }
        }
    }

    #[test]
    fn lossy_links_plans_are_well_formed() {
        let dist = FaultDistribution::LossyLinks {
            max_drop_per_64k: 3277,
            max_dup_per_64k: 3277,
            max_delay_per_64k: 3277,
        };
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..100 {
            let plan = sample_plan(cfg(dist), seed);
            let lossy: Vec<_> = plan.lossy_transports().collect();
            assert_eq!(lossy.len(), 1, "one fabric-wide policy per plan");
            assert!(plan.crashes().next().is_none());
            let (config, policy_seed) = lossy[0];
            config.validate();
            assert!((1..=3277).contains(&config.drop_per_64k));
            assert!((1..=3277).contains(&config.dup_per_64k));
            assert!((1..=3277).contains(&config.delay_per_64k));
            assert!((5_000..=50_000).contains(&config.delay_ns));
            assert!(!config.ack_only);
            distinct.insert((config.drop_per_64k, config.delay_ns, policy_seed));
        }
        assert!(distinct.len() > 90, "seeds must spread the sampled rates");
    }

    #[test]
    fn delayed_acks_plans_always_outlast_the_retx_base() {
        let dist = FaultDistribution::DelayedAcks {
            max_delay_per_64k: 32_768,
            max_delay_ns: 400_000,
        };
        for seed in 0..100 {
            let plan = sample_plan(cfg(dist), seed);
            let (config, _) = plan.lossy_transports().next().expect("one policy");
            config.validate();
            assert!(config.ack_only, "delayed-acks must not touch payloads");
            assert_eq!(config.drop_per_64k, 0);
            assert_eq!(config.dup_per_64k, 0);
            assert!((1..=32_768).contains(&config.delay_per_64k));
            assert!(
                config.delay_ns >= 60_000,
                "sampled delay {} must exceed the 50 µs retx base",
                config.delay_ns
            );
            assert!(config.delay_ns < 400_000);
        }
    }

    #[test]
    fn unreplicated_bias_favors_singleton_ranks() {
        // Ranks 0 and 2 replicated, 1 and 3 singletons.
        let dist = FaultDistribution::UnreplicatedBias {
            replicated_mask: 0b0101,
            horizon_sends: 8,
        };
        let mut singleton_hits = 0;
        for seed in 0..200 {
            let plan = sample_plan(cfg(dist), seed);
            let crashes: Vec<_> = plan.crashes().collect();
            assert_eq!(crashes.len(), 1, "one crash per plan");
            let (ep, schedule) = crashes[0];
            assert!(ep.0 < 4, "always the rank-numbered copy: {ep:?}");
            assert!(matches!(schedule, CrashSchedule::AfterSend { nth } if (1..=8).contains(&nth)));
            if ep.0 == 1 || ep.0 == 3 {
                singleton_hits += 1;
            }
        }
        // 3:1 bias — with 200 draws, well above half must hit singletons
        // (deterministic: a fixed fact of the seeded generator).
        assert!(
            singleton_hits > 120,
            "only {singleton_hits}/200 crashes hit unreplicated ranks"
        );
    }

    #[test]
    fn unreplicated_bias_respects_degenerate_masks() {
        // Everything replicated: crashes must still come from somewhere.
        let all = FaultDistribution::UnreplicatedBias {
            replicated_mask: 0b1111,
            horizon_sends: 4,
        };
        // Nothing replicated: all crashes hit singletons.
        let none = FaultDistribution::UnreplicatedBias {
            replicated_mask: 0,
            horizon_sends: 4,
        };
        for seed in 0..50 {
            assert_eq!(sample_plan(cfg(all), seed).crashes().count(), 1);
            assert_eq!(sample_plan(cfg(none), seed).crashes().count(), 1);
        }
    }

    #[test]
    fn majority_loss_spares_exactly_one_replica() {
        let dist = FaultDistribution::MajorityLoss {
            mean_sends: 4,
            horizon_sends: 3,
        };
        let config = CampaignConfig {
            ranks: 4,
            degree: 3,
            dist,
        };
        let mut spared_seen = std::collections::BTreeSet::new();
        for seed in 0..100 {
            let plan = sample_plan(config, seed);
            let crashes: Vec<_> = plan.crashes().collect();
            assert_eq!(crashes.len(), 2, "two of three replicas die");
            let rank = crashes[0].0 .0 % 4;
            let mut dead_reps = std::collections::BTreeSet::new();
            for (ep, schedule) in &crashes {
                assert_eq!(ep.0 % 4, rank, "all crashes on one rank");
                dead_reps.insert(ep.0 / 4);
                assert!(
                    matches!(schedule, CrashSchedule::AfterSend { nth } if (1..=3).contains(nth))
                );
            }
            assert_eq!(dead_reps.len(), 2, "distinct replicas");
            let spared = (0..3).find(|r| !dead_reps.contains(r)).unwrap();
            spared_seen.insert(spared);
        }
        assert_eq!(
            spared_seen.len(),
            3,
            "every replica index must sometimes be the survivor"
        );
    }

    #[test]
    fn geometric_mean_is_roughly_right() {
        let mut rng = CampaignRng::new(42);
        let n = 10_000u64;
        let sum: u64 = (0..n).map(|_| rng.geometric(8)).sum();
        let mean = sum as f64 / n as f64;
        assert!((6.0..10.0).contains(&mean), "geometric(8) mean was {mean}");
        // Degenerate means collapse to the constant 1.
        assert_eq!(CampaignRng::new(1).geometric(1), 1);
        assert_eq!(CampaignRng::new(1).geometric(0), 1);
    }

    #[test]
    fn shrink_finds_the_minimal_failing_pair() {
        // Failure iff both 3 and 7 are present — buried in noise.
        let events: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut probes = 0;
        let minimal = shrink_events(&events, |c| {
            probes += 1;
            c.contains(&3) && c.contains(&7)
        });
        assert_eq!(minimal, vec![3, 7]);
        assert!(probes < 100, "shrink probed {probes} times");
    }

    #[test]
    fn shrink_handles_unconditional_and_non_failing_oracles() {
        // Failure independent of the events: shrinks to empty.
        let minimal = shrink_events(&[1, 2, 3], |_| true);
        assert!(minimal.is_empty());
        // Not failing on entry: input returned unchanged.
        let kept = shrink_events(&[1, 2, 3], |_| false);
        assert_eq!(kept, vec![1, 2, 3]);
    }

    #[test]
    fn shrink_single_event_minimum() {
        let events: Vec<u32> = (0..33).collect();
        let minimal = shrink_events(&events, |c| c.contains(&17));
        assert_eq!(minimal, vec![17]);
    }
}
