//! Virtual time: a nanosecond-resolution simulated timestamp.
//!
//! All protocol and workload costs in this reproduction are expressed in
//! [`SimTime`] rather than wall-clock time, so that experiment results are
//! deterministic and independent of the host machine's load, core count or
//! scheduler. `SimTime` is a thin newtype over `u64` nanoseconds with
//! saturating arithmetic (virtual time never goes negative and never wraps).
//!
//! `SimTime`'s `Ord` is plain numeric order on the nanosecond value; the
//! fabric's delivery pipeline and the scheduler's ready queues both key on it
//! directly (as `(SimTime, sequence)` pairs), so the total order of
//! timestamps — and therefore pop order everywhere — is exactly the total
//! order of `u64`. See `sim_net::model` for the arrival-ordering contract
//! built on top of this.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero timestamp — the beginning of every simulated execution.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable virtual time; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from a floating-point number of microseconds (rounded).
    pub fn from_micros_f64(us: f64) -> Self {
        SimTime((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Construct from a floating-point number of seconds (rounded).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e9).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (lossy).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds (lossy).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two timestamps.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scale a duration by an integer factor (saturating).
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }

    /// Scale a duration by a floating-point factor (rounded, clamped at 0).
    pub fn scaled_f64(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// True iff this is the zero timestamp.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_micros_f64(1.5), SimTime::from_nanos(1_500));
        assert_eq!(SimTime::from_secs_f64(0.25), SimTime::from_millis(250));
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_nanos(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(1), SimTime::ZERO);
        assert_eq!(
            SimTime::from_nanos(5).saturating_sub(SimTime::from_nanos(10)),
            SimTime::ZERO
        );
    }

    #[test]
    fn max_min() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(b), b);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimTime::from_nanos(10).scaled(3), SimTime::from_nanos(30));
        assert_eq!(
            SimTime::from_nanos(10).scaled_f64(2.5),
            SimTime::from_nanos(25)
        );
        assert_eq!(SimTime::from_nanos(10).scaled_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_nanos(1_234_567);
        assert!((t.as_micros_f64() - 1234.567).abs() < 1e-9);
        assert!((t.as_millis_f64() - 1.234567).abs() < 1e-12);
        assert!((t.as_secs_f64() - 0.001234567).abs() < 1e-15);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", SimTime::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(4)), "4.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4u64).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![
            SimTime::from_nanos(30),
            SimTime::from_nanos(10),
            SimTime::from_nanos(20),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::from_nanos(10),
                SimTime::from_nanos(20),
                SimTime::from_nanos(30)
            ]
        );
    }
}
