//! Seeded lossy-transport fault injection for the fabric.
//!
//! The paper's protocol assumes reliable FIFO channels; ROADMAP item 4 asks
//! what happens when the transport *underneath* that assumption misbehaves.
//! [`NetFaultPolicy`] is the answer's injection half: a per-job policy,
//! installed on the [`crate::fabric::Fabric`], that at delivery time can
//! **drop**, **duplicate** or **delay** any application or acknowledgement
//! message with configured per-link rates. The masking half (retransmission
//! timers, duplicate suppression) lives in the protocol layer above; the gate
//! between them is the counter quintet in [`crate::stats::NetStats`]
//! (`msgs_dropped`/`msgs_duplicated`/`msgs_delayed` on this side,
//! `retransmits`/`dups_suppressed` on the masking side).
//!
//! # Determinism
//!
//! Every verdict is a pure function of `(config, seed, src, dst, k)` where
//! `k` is the per-link index of the message among the link's *faultable*
//! messages — the same splitmix64 discipline [`crate::campaign`] uses for
//! fault plans ([`decide`] is exposed so tests can check purity directly).
//! The per-link counters are deterministic because only `src`'s carrier ever
//! sends on the link `(src, dst)` and its sends are in program order; no
//! cross-process race can reorder a link's message indices.
//!
//! # Fault scope
//!
//! Only application ([`class::APP`]) and acknowledgement ([`class::ACK`])
//! traffic is ever faulted. `CONTROL`, `HASH` and `SYSTEM` messages are
//! exempt: retransmission pushes, virtual-time timer ticks, crash wake-ups
//! and the redMPI hash streams are the *mechanism* of masking and detection,
//! and the paper's fault model (like FTHP-MPI's) asks whether the protocol
//! masks a lossy data plane, not whether an adversary may also cut the
//! control plane. A drop still wakes the destination's scheduler slot
//! (a spurious wake is harmless; a lost wake would deadlock — see
//! DESIGN.md §5.5).
//!
//! # Ordering under delay
//!
//! The fabric keeps the paper's per-link FIFO even when deliveries are
//! delayed: each link carries a monotone *arrival floor*, every message's
//! arrival is clamped up to the floor, and a delay raises the floor past the
//! delayed message's new arrival. A delay therefore behaves like a burst
//! stall of the link — later messages on the same link queue behind it —
//! rather than a reordering, so the protocol's per-(peer, communicator)
//! sequence windows only ever see in-order-or-duplicate traffic from the
//! transport itself.

use crate::stats::class;
use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-link fault rates of a lossy-transport policy. Rates are expressed in
/// parts per 65 536 (16-bit fixed point) so that configurations hash and
/// replay exactly — the campaign layer packs the three rates into a single
/// `u64` parameter word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultConfig {
    /// Probability a faultable message is silently dropped, per 65 536.
    pub drop_per_64k: u32,
    /// Probability a faultable message is duplicated (one extra copy with the
    /// same arrival, a later ingest sequence), per 65 536.
    pub dup_per_64k: u32,
    /// Probability a faultable message is delayed, per 65 536.
    pub delay_per_64k: u32,
    /// Virtual nanoseconds a delayed message's arrival (and the link's
    /// arrival floor) is pushed forward by.
    pub delay_ns: u64,
    /// Restrict faults to acknowledgement traffic (the `DelayedAcks`
    /// campaign distribution); application payloads then pass untouched.
    pub ack_only: bool,
}

impl NetFaultConfig {
    /// The `LossyLinks` campaign default: a few percent of both application
    /// and ack traffic dropped, duplicated or briefly delayed — enough to
    /// exercise every masking path (retransmit, dedup, delay floor) in a
    /// short run without livelocking it.
    pub fn lossy_links() -> Self {
        NetFaultConfig {
            drop_per_64k: 1638,  // ~2.5 %
            dup_per_64k: 1638,   // ~2.5 %
            delay_per_64k: 1638, // ~2.5 %
            delay_ns: 20_000,    // 20 µs: ~10–20 wire times on the test model
            ack_only: false,
        }
    }

    /// The `DelayedAcks` campaign default: no loss, but a quarter of all
    /// acknowledgements delayed well past the protocol's retransmission
    /// timeout, so the sender-side timer demonstrably fires (and the
    /// receiver's sequence window must absorb the resulting echoes).
    pub fn delayed_acks() -> Self {
        NetFaultConfig {
            drop_per_64k: 0,
            dup_per_64k: 0,
            delay_per_64k: 16_384, // 25 %
            delay_ns: 200_000,     // 200 µs: > the 50 µs retx timeout base
            ack_only: true,
        }
    }

    /// Panic unless the three rates sum to at most 65 536 (they are drawn
    /// from disjoint slices of one 16-bit draw).
    pub fn validate(&self) {
        let sum = self.drop_per_64k as u64 + self.dup_per_64k as u64 + self.delay_per_64k as u64;
        assert!(sum <= 65_536, "net-fault rates sum to {sum} > 65536 parts");
    }

    /// May messages of `cls` be faulted at all under this configuration?
    pub fn faultable(&self, cls: u8) -> bool {
        match cls {
            class::ACK => true,
            class::APP => !self.ack_only,
            _ => false,
        }
    }
}

/// What the policy decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the destination is still woken).
    Drop,
    /// Deliver the original plus one duplicate copy.
    Duplicate,
    /// Deliver with the arrival pushed `delay_ns` later (raising the link's
    /// arrival floor with it).
    Delay,
}

/// `splitmix64` — the same finalizer [`crate::campaign::CampaignRng`] uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The pure decision function: the verdict for the `k`-th faultable message
/// on link `src → dst` under `(config, seed)`. Free of all state so tests can
/// assert purity and well-formedness directly; [`NetFaultPolicy::route`] only
/// adds the per-link `k` counter and the arrival-floor bookkeeping.
pub fn decide(config: &NetFaultConfig, seed: u64, src: usize, dst: usize, k: u64) -> FaultVerdict {
    let mut x = splitmix64(seed ^ (src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    x = splitmix64(x ^ (dst as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    x = splitmix64(x ^ k);
    let draw = (x >> 48) as u32; // uniform in 0..65536
    if draw < config.drop_per_64k {
        FaultVerdict::Drop
    } else if draw < config.drop_per_64k + config.dup_per_64k {
        FaultVerdict::Duplicate
    } else if draw < config.drop_per_64k + config.dup_per_64k + config.delay_per_64k {
        FaultVerdict::Delay
    } else {
        FaultVerdict::Deliver
    }
}

/// A job's installed lossy-transport policy: the pure [`decide`] function
/// plus per-link message counters (the `k` inputs) and per-link arrival
/// floors (the FIFO-preserving delay mechanism). One instance is shared by
/// every endpoint of a fabric; the `n × n` link state is only allocated when
/// a policy is actually installed, so fault-free runs pay nothing.
pub struct NetFaultPolicy {
    config: NetFaultConfig,
    seed: u64,
    n: usize,
    /// `n · n` per-link counters of faultable messages routed so far.
    counters: Vec<AtomicU64>,
    /// `n · n` per-link arrival floors, in nanoseconds. Monotone: only ever
    /// raised, and every message on the link is clamped up to it.
    floors: Vec<AtomicU64>,
}

impl std::fmt::Debug for NetFaultPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetFaultPolicy")
            .field("config", &self.config)
            .field("seed", &self.seed)
            .field("endpoints", &self.n)
            .finish()
    }
}

impl NetFaultPolicy {
    /// Build a policy for a fabric of `n` endpoints.
    pub fn new(config: NetFaultConfig, seed: u64, n: usize) -> Self {
        config.validate();
        NetFaultPolicy {
            config,
            seed,
            n,
            counters: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            floors: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The configuration this policy was built from.
    pub fn config(&self) -> &NetFaultConfig {
        &self.config
    }

    /// The seed this policy was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn link(&self, src: usize, dst: usize) -> usize {
        debug_assert!(src < self.n && dst < self.n);
        src * self.n + dst
    }

    /// Route one message: draw the link's verdict (consuming a per-link `k`
    /// for faultable classes), clamp `arrival` to the link's floor, apply a
    /// delay to it, and raise the floor. Returns the verdict and the
    /// (possibly pushed) arrival the message must carry. Exempt classes
    /// always get [`FaultVerdict::Deliver`] but still respect the floor, so
    /// a delayed message stalls *everything* behind it on its link and
    /// per-link FIFO order survives.
    pub fn route(
        &self,
        src: usize,
        dst: usize,
        cls: u8,
        arrival: SimTime,
    ) -> (FaultVerdict, SimTime) {
        let verdict = if self.config.faultable(cls) {
            let k = self.counters[self.link(src, dst)].fetch_add(1, Ordering::Relaxed);
            decide(&self.config, self.seed, src, dst, k)
        } else {
            FaultVerdict::Deliver
        };
        let floor = &self.floors[self.link(src, dst)];
        let mut out = arrival.max(SimTime::from_nanos(floor.load(Ordering::Relaxed)));
        if verdict == FaultVerdict::Delay {
            out = out.saturating_add(SimTime::from_nanos(self.config.delay_ns));
        }
        // Single writer per link (only src's carrier sends on src → dst) and
        // `out >= floor`, so a plain store keeps the floor monotone.
        floor.store(out.as_nanos(), Ordering::Relaxed);
        (verdict, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_pure_and_covers_all_verdicts() {
        let cfg = NetFaultConfig {
            drop_per_64k: 16_384,
            dup_per_64k: 16_384,
            delay_per_64k: 16_384,
            delay_ns: 1_000,
            ack_only: false,
        };
        let mut seen = [false; 4];
        for k in 0..4096u64 {
            let a = decide(&cfg, 42, 1, 2, k);
            let b = decide(&cfg, 42, 1, 2, k);
            assert_eq!(
                a, b,
                "verdict must be a pure function of (config, seed, link, k)"
            );
            seen[match a {
                FaultVerdict::Deliver => 0,
                FaultVerdict::Drop => 1,
                FaultVerdict::Duplicate => 2,
                FaultVerdict::Delay => 3,
            }] = true;
        }
        assert!(
            seen.iter().all(|s| *s),
            "25 % rates must produce every verdict"
        );
    }

    #[test]
    fn decide_depends_on_seed_and_link() {
        let cfg = NetFaultConfig::lossy_links();
        let base: Vec<_> = (0..512).map(|k| decide(&cfg, 7, 0, 1, k)).collect();
        let other_seed: Vec<_> = (0..512).map(|k| decide(&cfg, 8, 0, 1, k)).collect();
        let other_link: Vec<_> = (0..512).map(|k| decide(&cfg, 7, 1, 0, k)).collect();
        assert_ne!(base, other_seed, "seed must matter");
        assert_ne!(base, other_link, "link direction must matter");
    }

    #[test]
    fn zero_rates_always_deliver() {
        let cfg = NetFaultConfig {
            drop_per_64k: 0,
            dup_per_64k: 0,
            delay_per_64k: 0,
            delay_ns: 0,
            ack_only: false,
        };
        for k in 0..1024 {
            assert_eq!(decide(&cfg, 3, 0, 1, k), FaultVerdict::Deliver);
        }
    }

    #[test]
    fn exempt_classes_pass_and_consume_no_draw() {
        // All-drop config: every faultable draw is a Drop, so if CONTROL
        // consumed a draw the subsequent APP verdicts would shift.
        let cfg = NetFaultConfig {
            drop_per_64k: 65_536,
            dup_per_64k: 0,
            delay_per_64k: 0,
            delay_ns: 0,
            ack_only: false,
        };
        let p = NetFaultPolicy::new(cfg, 1, 2);
        let (v, _) = p.route(0, 1, class::CONTROL, SimTime::from_nanos(10));
        assert_eq!(v, FaultVerdict::Deliver, "control traffic is exempt");
        let (v, _) = p.route(0, 1, class::SYSTEM, SimTime::from_nanos(10));
        assert_eq!(v, FaultVerdict::Deliver, "system traffic is exempt");
        let (v, _) = p.route(0, 1, class::HASH, SimTime::from_nanos(10));
        assert_eq!(v, FaultVerdict::Deliver, "hash traffic is exempt");
        let (v, _) = p.route(0, 1, class::APP, SimTime::from_nanos(10));
        assert_eq!(
            v,
            FaultVerdict::Drop,
            "faultable draw was not consumed early"
        );
    }

    #[test]
    fn ack_only_exempts_app_traffic() {
        let cfg = NetFaultConfig {
            drop_per_64k: 65_536,
            dup_per_64k: 0,
            delay_per_64k: 0,
            delay_ns: 0,
            ack_only: true,
        };
        let p = NetFaultPolicy::new(cfg, 1, 2);
        let (v, _) = p.route(0, 1, class::APP, SimTime::ZERO);
        assert_eq!(v, FaultVerdict::Deliver);
        let (v, _) = p.route(0, 1, class::ACK, SimTime::ZERO);
        assert_eq!(v, FaultVerdict::Drop);
    }

    #[test]
    fn delay_raises_the_link_floor_and_preserves_link_fifo() {
        let cfg = NetFaultConfig {
            drop_per_64k: 0,
            dup_per_64k: 0,
            delay_per_64k: 65_536,
            delay_ns: 500,
            ack_only: false,
        };
        let p = NetFaultPolicy::new(cfg, 9, 2);
        let (v, a1) = p.route(0, 1, class::APP, SimTime::from_nanos(100));
        assert_eq!(v, FaultVerdict::Delay);
        assert_eq!(a1, SimTime::from_nanos(600));
        // A later message with an *earlier* own arrival is clamped behind it.
        let (_, a2) = p.route(0, 1, class::APP, SimTime::from_nanos(150));
        assert!(a2 >= a1, "link floor must preserve per-link FIFO");
        // Exempt classes respect the floor too.
        let (v3, a3) = p.route(0, 1, class::CONTROL, SimTime::from_nanos(10));
        assert_eq!(v3, FaultVerdict::Deliver);
        assert!(a3 >= a2);
        // The other direction of the link is independent.
        let (_, b) = p.route(1, 0, class::CONTROL, SimTime::from_nanos(10));
        assert_eq!(b, SimTime::from_nanos(10));
    }

    #[test]
    fn presets_validate() {
        NetFaultConfig::lossy_links().validate();
        NetFaultConfig::delayed_acks().validate();
        assert!(NetFaultConfig::lossy_links().faultable(class::APP));
        assert!(!NetFaultConfig::delayed_acks().faultable(class::APP));
        assert!(NetFaultConfig::delayed_acks().faultable(class::ACK));
    }

    #[test]
    #[should_panic(expected = "net-fault rates")]
    fn oversubscribed_rates_panic() {
        NetFaultConfig {
            drop_per_64k: 40_000,
            dup_per_64k: 40_000,
            delay_per_64k: 0,
            delay_ns: 0,
            ack_only: false,
        }
        .validate();
    }
}
