//! Lightweight event tracing.
//!
//! The send-determinism checker (in the `workloads` crate) and several
//! integration tests need to compare the *sequence of send events* of a
//! process across executions — the operational form of the paper's
//! Definition 1. [`EventTrace`] records those events with a stable digest of
//! the payload so traces can be compared cheaply.

use crate::fabric::EndpointId;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

/// Kinds of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An application-level send was issued.
    Send,
    /// An application-level receive completed.
    RecvComplete,
    /// A crash was observed locally.
    Crash,
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// The process on which the event occurred.
    pub process: EndpointId,
    /// Event kind.
    pub kind: EventKind,
    /// The communication peer (destination for sends, source for receives);
    /// `None` for local events such as crashes.
    pub peer: Option<usize>,
    /// Application-level tag of the message, if any.
    pub tag: Option<i64>,
    /// FNV-1a digest of the payload (0 for empty payloads).
    pub payload_digest: u64,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Virtual time of the event. Excluded from determinism comparisons
    /// (timing is allowed to differ between executions).
    pub at: SimTime,
}

impl TraceEvent {
    /// The portion of the event relevant for send-determinism comparison:
    /// everything except the timestamp.
    pub fn determinism_key(&self) -> (EventKind, Option<usize>, Option<i64>, u64, usize) {
        (
            self.kind,
            self.peer,
            self.tag,
            self.payload_digest,
            self.payload_len,
        )
    }
}

/// FNV-1a digest of a byte slice. Stable across platforms and executions.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A shared, append-only event trace (one per simulated job).
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    events: Arc<Mutex<Vec<TraceEvent>>>,
    enabled: bool,
}

impl EventTrace {
    /// An enabled trace.
    pub fn enabled() -> Self {
        EventTrace {
            events: Arc::new(Mutex::new(Vec::new())),
            enabled: true,
        }
    }

    /// A disabled trace: `record` becomes a no-op. This is the default so
    /// that benchmark runs pay nothing for tracing.
    pub fn disabled() -> Self {
        EventTrace {
            events: Arc::new(Mutex::new(Vec::new())),
            enabled: false,
        }
    }

    /// Is recording enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled).
    pub fn record(&self, ev: TraceEvent) {
        if self.enabled {
            self.events.lock().push(ev);
        }
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Events of one process, in order.
    pub fn events_of(&self, process: EndpointId) -> Vec<TraceEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.process == process)
            .cloned()
            .collect()
    }

    /// The per-process sequence of send events, reduced to their determinism
    /// keys — the object compared by Definition 1.
    pub fn send_sequence(
        &self,
        process: EndpointId,
    ) -> Vec<(EventKind, Option<usize>, Option<i64>, u64, usize)> {
        self.events_of(process)
            .into_iter()
            .filter(|e| e.kind == EventKind::Send)
            .map(|e| e.determinism_key())
            .collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(proc_: usize, kind: EventKind, peer: usize, tag: i64, payload: &[u8]) -> TraceEvent {
        TraceEvent {
            process: EndpointId(proc_),
            kind,
            peer: Some(peer),
            tag: Some(tag),
            payload_digest: digest(payload),
            payload_len: payload.len(),
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        assert_eq!(digest(b"hello"), digest(b"hello"));
        assert_ne!(digest(b"hello"), digest(b"hellp"));
        assert_eq!(digest(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = EventTrace::disabled();
        t.record(ev(0, EventKind::Send, 1, 0, b"x"));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let t = EventTrace::enabled();
        t.record(ev(0, EventKind::Send, 1, 0, b"a"));
        t.record(ev(1, EventKind::RecvComplete, 0, 0, b"a"));
        t.record(ev(0, EventKind::Send, 1, 1, b"b"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.events_of(EndpointId(0)).len(), 2);
        assert_eq!(t.send_sequence(EndpointId(0)).len(), 2);
        assert_eq!(t.send_sequence(EndpointId(1)).len(), 0);
    }

    #[test]
    fn determinism_key_ignores_time() {
        let mut a = ev(0, EventKind::Send, 1, 7, b"payload");
        let mut b = a.clone();
        a.at = SimTime::from_nanos(1);
        b.at = SimTime::from_nanos(999);
        assert_eq!(a.determinism_key(), b.determinism_key());
    }

    #[test]
    fn send_sequence_differs_when_payload_differs() {
        let t1 = EventTrace::enabled();
        t1.record(ev(0, EventKind::Send, 1, 0, b"a"));
        let t2 = EventTrace::enabled();
        t2.record(ev(0, EventKind::Send, 1, 0, b"b"));
        assert_ne!(
            t1.send_sequence(EndpointId(0)),
            t2.send_sequence(EndpointId(0))
        );
    }

    #[test]
    fn trace_is_shared_between_clones() {
        let t = EventTrace::enabled();
        let t2 = t.clone();
        t.record(ev(0, EventKind::Send, 1, 0, b"x"));
        assert_eq!(t2.len(), 1);
    }
}
