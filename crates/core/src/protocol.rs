//! The SDR-MPI replication protocol (Algorithm 1 of the paper).
//!
//! SDR-MPI is a *parallel* replication protocol for send-deterministic
//! applications. Replica `k` of rank `i` sends each application message only
//! to replica `k` of the destination rank `j`; every replica of `j` that
//! receives its copy acknowledges it to the *other* replicas of `i`
//! (on the library-level `irecvComplete` event). A send request completes at
//! the application level only once the direct send has been handed to the
//! network *and* the acknowledgements from all other replicas of the
//! destination rank have been collected — guaranteeing that if the sender's
//! counterpart replica crashes, some replica still holds every message the
//! crashed process might not have delivered, and can re-send it
//! (the `upon failure` handler below).
//!
//! Because the application is send-deterministic, no leader is needed to agree
//! on the outcome of `MPI_ANY_SOURCE` receptions or other non-deterministic
//! calls: replicas may temporarily diverge in their reception order without
//! that divergence ever being observable in the messages they send
//! (Section 3.1 of the paper).

use crate::config::{AckOn, ReplicationConfig};
use crate::layout::{ReplicaLayout, ReplicaMap};
use bytes::Bytes;
use sim_mpi::matching::KeyHasher;
use sim_mpi::pml::{MsgMeta, Pml, PmlEvent};
use sim_mpi::{
    CommId, MpiError, PmlReqId, ProtoRecvReq, ProtoSendReq, Protocol, Rank, Status, Tag, TagSel,
};
use sim_net::stats::class;
use sim_net::{EndpointId, FailureEvent, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::BuildHasherDefault;
use std::sync::Arc;

/// Per-message bookkeeping maps ride the matching engine's trusted-key
/// multiplicative hasher instead of SipHash.
type HashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<KeyHasher>>;

/// Control-message kinds carried in `header[0]` of SDR-MPI protocol traffic.
pub mod ctl {
    /// Acknowledgement of an application message (class `ACK`, or class
    /// `CONTROL` when re-emitted reliably in response to an
    /// [`ACK_PROBE`] under a lossy transport).
    pub const ACK: i64 = 1;
    /// Recovery notification broadcast by the substitute after forking a new
    /// replica (class `CONTROL`), Section 3.4.
    pub const RECOVERY_NOTIFY: i64 = 2;
    /// Self-addressed retransmission timer (class `CONTROL`): fires the
    /// timeout/backoff check for one send-log entry under a lossy transport.
    pub const RETX_TIMER: i64 = 3;
    /// "Have you seen sequence `s` from my rank?" probe (class `CONTROL`)
    /// sent to a *cross* replica whose acknowledgement is overdue — the
    /// sender cannot retransmit the payload on that link (the replica
    /// receives its copy from its own counterpart), but a dropped ack can be
    /// re-requested reliably.
    pub const ACK_PROBE: i64 = 4;
    /// Cumulative "everything below `upto` from your rank is received and
    /// acknowledged" notice (class `CONTROL`), flushed at `MPI_Finalize` so
    /// a process can exit without stranding senders whose per-message acks
    /// were dropped after the receiver's last chance to re-emit them.
    pub const FIN_ACK: i64 = 5;
}

/// Virtual-time base of the lossy-transport retransmission timer (50 µs —
/// comfortably above any one-message round trip of the bundled network
/// models, so a timer firing almost always means real loss).
pub const RETX_BASE_NS: u64 = 50_000;

/// A send-log entry still unacknowledged after this many doubled timeouts
/// aborts the process: at the default campaign fault rates the probability of
/// that many consecutive losses on one link is negligible, so hitting the cap
/// indicates a protocol bug rather than bad luck.
pub const RETX_MAX_ATTEMPTS: u32 = 32;

/// Attempt count from which each retransmission timeout additionally sleeps
/// a short *real-time* interval. Virtual timer pops are instantaneous in
/// real time, so repeated timeouts usually mean the peer's carrier thread is
/// starved of physical CPU (single-core or loaded hosts), not that the
/// network lost every copy; sleeping lets already-emitted acknowledgements
/// physically arrive long before [`RETX_MAX_ATTEMPTS`] can be reached.
pub const RETX_REAL_BACKOFF_ATTEMPTS: u32 = 8;

/// Tracks which application-level sequence numbers have already been delivered
/// from one sender rank, so duplicates created by post-failure re-sends can be
/// dropped.
#[derive(Debug, Default, Clone)]
pub struct SeqTracker {
    next_expected: u64,
    ahead: BTreeSet<u64>,
}

impl SeqTracker {
    /// The cumulative delivery frontier: every sequence `< next_expected()`
    /// has been delivered in order. This is the value recovery merges across
    /// surviving replicas to form the union ack frontier.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }
}

impl SeqTracker {
    /// Has `seq` already been delivered?
    pub fn seen(&self, seq: u64) -> bool {
        seq < self.next_expected || self.ahead.contains(&seq)
    }

    /// Record delivery of `seq`. Returns `false` if it was already delivered
    /// (i.e. this is a duplicate).
    pub fn record(&mut self, seq: u64) -> bool {
        if self.seen(seq) {
            return false;
        }
        if seq == self.next_expected {
            self.next_expected += 1;
            while self.ahead.remove(&self.next_expected) {
                self.next_expected += 1;
            }
        } else {
            self.ahead.insert(seq);
        }
        true
    }

    /// Number of out-of-order sequence numbers currently held.
    pub fn pending_out_of_order(&self) -> usize {
        self.ahead.len()
    }
}

#[derive(Debug)]
pub(crate) struct SendEntry {
    pub(crate) dst_rank: Rank,
    pub(crate) comm: CommId,
    pub(crate) tag: Tag,
    pub(crate) seq: u64,
    /// Retained until all acks are in, so the substitute logic can re-send it.
    pub(crate) payload: Bytes,
    pub(crate) pml_reqs: Vec<PmlReqId>,
    /// Wire (stream) sequence of each direct send, per target, so the lossy
    /// retransmission path can replay the payload under the *same* sequence
    /// and the receiver's window dedups/reorders it correctly. Empty on
    /// reliable transports.
    pub(crate) wire_sends: Vec<(EndpointId, u64)>,
    /// Retransmission-timer firings for this entry so far (lossy mode).
    pub(crate) retx_attempts: u32,
    pub(crate) acks_expected: BTreeSet<EndpointId>,
    pub(crate) acks_received: BTreeSet<EndpointId>,
    /// Latest arrival time among the acknowledgements collected so far; the
    /// application-level send completion (return from `MPI_Wait`) is
    /// time-stamped no earlier than this.
    pub(crate) completion_floor: SimTime,
    /// The application has released its request handle. Once this entry is
    /// also fully acked it is garbage — the ack-driven GC removes it the
    /// moment the last acknowledgement arrives, keeping the send log bounded.
    pub(crate) app_freed: bool,
}

impl SendEntry {
    pub(crate) fn fully_acked(&self) -> bool {
        self.acks_expected.is_subset(&self.acks_received)
    }
}

#[derive(Debug)]
pub(crate) struct RecvEntry {
    pub(crate) src_rank: Option<Rank>,
    pub(crate) comm: CommId,
    pub(crate) tag: TagSel,
    pub(crate) pml_req: PmlReqId,
    /// Filled in once a non-duplicate message completes at the library level.
    pub(crate) meta: Option<MsgMeta>,
    /// Deferred-ack bookkeeping for the [`AckOn::AppWait`] ablation:
    /// (sender rank, sender replica, app-level seq, message arrival).
    pub(crate) deferred_ack: Option<(Rank, usize, u64, SimTime)>,
    /// Acknowledgement-emission CPU time that was spent while this process's
    /// clock was still behind the message's arrival. It is re-applied when the
    /// application completes the receive, so that the reception processing
    /// (match + ack emission) shows up on the critical path exactly as it does
    /// in a library without asynchronous progress.
    pub(crate) post_arrival_cost: SimTime,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SdrCounters {
    /// Acknowledgements emitted by this process.
    pub acks_sent: u64,
    /// Acknowledgements received by this process.
    pub acks_received: u64,
    /// Application messages re-sent on behalf of a failed replica.
    pub resends: u64,
    /// Duplicate application messages dropped by the sequence filter.
    pub duplicates_dropped: u64,
    /// Failure notifications handled.
    pub failures_handled: u64,
}

/// The per-physical-process SDR-MPI protocol instance.
pub struct SdrProtocol {
    pub(crate) map: Arc<dyn ReplicaMap>,
    pub(crate) cfg: ReplicationConfig,
    pub(crate) my_rank: Rank,
    pub(crate) my_replica: usize,

    // --- Algorithm 1 state -------------------------------------------------
    /// `physicalDests[rank]`: replicas of `rank` this process sends application
    /// messages to directly.
    pub(crate) physical_dests: Vec<BTreeSet<EndpointId>>,
    /// `physicalSrc[rank]`: the replica of `rank` this process receives from.
    pub(crate) physical_src: Vec<EndpointId>,
    /// `substitute[rep]`: which replica id of *this* process's rank is in
    /// charge of sending on behalf of replica `rep`.
    pub(crate) substitute: Vec<usize>,
    /// Liveness of every physical process, as known locally.
    pub(crate) alive: Vec<bool>,

    // --- sequencing and request bookkeeping --------------------------------
    pub(crate) send_seq: Vec<u64>,
    pub(crate) recv_seen: Vec<SeqTracker>,
    pub(crate) sends: BTreeMap<u64, SendEntry>,
    pub(crate) recvs: BTreeMap<u64, RecvEntry>,
    next_req: u64,
    pml_to_recv: HashMap<PmlReqId, u64>,
    early_acks: HashMap<(Rank, u64), Vec<(EndpointId, SimTime)>>,
    /// Cumulative pre-acknowledgements from peers' `FIN_ACK` notices:
    /// `(dst_rank, acker) → upto` means `acker` has received every
    /// application sequence `< upto` addressed to `dst_rank`. Folded into new
    /// send entries at `isend` time, covering the replica-skew case where a
    /// slow replica posts a send after its fast counterpart's receiver has
    /// already finalized.
    fin_acked: HashMap<(Rank, EndpointId), u64>,
    /// Lossy-transport masking mode: captured from the PML at `init` (true
    /// iff a `NetFaultPolicy` is installed on the fabric). Switches on
    /// ack-everyone, the retransmission timer and the finalize drain.
    lossy: bool,
    counters: SdrCounters,
}

impl std::fmt::Debug for SdrProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdrProtocol")
            .field("rank", &self.my_rank)
            .field("replica", &self.my_replica)
            .field("pending_sends", &self.sends.len())
            .field("pending_recvs", &self.recvs.len())
            .finish()
    }
}

impl SdrProtocol {
    /// Protocol instance for physical process `endpoint` in a job of
    /// `app_ranks` logical ranks under `cfg`, on the classic uniform layout.
    pub fn new(endpoint: EndpointId, app_ranks: usize, cfg: ReplicationConfig) -> Self {
        let map: Arc<dyn ReplicaMap> = Arc::new(ReplicaLayout::new(app_ranks, cfg.degree));
        SdrProtocol::new_with_map(endpoint, map, cfg)
    }

    /// Protocol instance for physical process `endpoint` on an arbitrary
    /// replica map. The per-rank routing tables come straight from the map's
    /// mixed-degree routing rule ([`ReplicaMap::direct_src`] /
    /// [`ReplicaMap::direct_dests`]); on uniform maps this is the paper's
    /// "replica `k` talks to replica `k`".
    pub fn new_with_map(
        endpoint: EndpointId,
        map: Arc<dyn ReplicaMap>,
        cfg: ReplicationConfig,
    ) -> Self {
        let (my_rank, my_replica) = map.locate(endpoint);
        let app_ranks = map.ranks();
        let physical_dests = (0..app_ranks)
            .map(|rank| {
                map.direct_dests(my_rank, my_replica, rank)
                    .into_iter()
                    .collect::<BTreeSet<_>>()
            })
            .collect();
        let physical_src = (0..app_ranks)
            .map(|rank| map.direct_src(my_replica, rank))
            .collect();
        let my_degree = map.degree_of(my_rank);
        let physical = map.physical_processes();
        SdrProtocol {
            map,
            cfg,
            my_rank,
            my_replica,
            physical_dests,
            physical_src,
            substitute: (0..my_degree).collect(),
            alive: vec![true; physical],
            send_seq: vec![0; app_ranks],
            recv_seen: vec![SeqTracker::default(); app_ranks],
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            next_req: 1,
            pml_to_recv: HashMap::default(),
            early_acks: HashMap::default(),
            fin_acked: HashMap::default(),
            lossy: false,
            counters: SdrCounters::default(),
        }
    }

    /// Experiment counters.
    pub fn counters(&self) -> SdrCounters {
        self.counters
    }

    /// The application-level send sequence numbers, one per destination rank
    /// (exposed for recovery demonstrations and diagnostics).
    pub fn send_sequence_numbers(&self) -> Vec<u64> {
        self.send_seq.clone()
    }

    /// Has this process already delivered application message `seq` from
    /// `src_rank`? (Exposed for recovery demonstrations and diagnostics.)
    pub fn has_delivered(&self, src_rank: Rank, seq: u64) -> bool {
        self.recv_seen
            .get(src_rank)
            .map(|t| t.seen(seq))
            .unwrap_or(false)
    }

    /// The replica map in use.
    pub fn map(&self) -> Arc<dyn ReplicaMap> {
        Arc::clone(&self.map)
    }

    fn is_alive(&self, e: EndpointId) -> bool {
        self.alive.get(e.0).copied().unwrap_or(false)
    }

    /// Deterministic substitute election: the lowest-numbered alive replica of
    /// `rank` (Algorithm 1, `electSubstitute`). Returns `None` when every
    /// replica of the rank has failed — which for a singleton rank of a
    /// partial map is its first (and only) crash.
    fn elect_substitute(&self, rank: Rank) -> Option<usize> {
        (0..self.map.degree_of(rank)).find(|&rep| self.is_alive(self.map.endpoint(rank, rep)))
    }

    fn ack_header(sender_rank: Rank, acker_rank: Rank, seq: u64) -> [i64; 8] {
        [
            ctl::ACK,
            sender_rank as i64,
            acker_rank as i64,
            seq as i64,
            0,
            0,
            0,
            0,
        ]
    }

    fn send_acks_for(
        &mut self,
        pml: &mut Pml,
        src_rank: Rank,
        src_replica: usize,
        seq: u64,
        not_before: SimTime,
    ) {
        for rep in 0..self.map.degree_of(src_rank) {
            if rep == src_replica && !self.lossy {
                // Crossed-ack topology: the direct sender learns of delivery
                // from the *other* replicas. Under a lossy transport the
                // direct sender is acked too — it owns the only link the
                // payload can be retransmitted on, so it must be the one to
                // detect a dropped direct delivery (DESIGN.md §5.5).
                continue;
            }
            let target = self.map.endpoint(src_rank, rep);
            if self.is_alive(target) {
                // The ack reacts to the received message: it cannot be
                // injected before that message has arrived, even if this
                // process's clock has not caught up with the arrival yet.
                pml.send_control_at(
                    target,
                    class::ACK,
                    Self::ack_header(src_rank, self.my_rank, seq),
                    Bytes::new(),
                    not_before,
                );
                self.counters.acks_sent += 1;
            }
        }
    }

    fn register_ack(&mut self, from: EndpointId, dst_rank: Rank, seq: u64, arrival: SimTime) {
        self.counters.acks_received += 1;
        // Find the matching send entry (messages to `dst_rank` with `seq`).
        let matching = self
            .sends
            .iter_mut()
            .find(|(_, e)| e.dst_rank == dst_rank && e.seq == seq)
            .map(|(id, entry)| {
                entry.acks_received.insert(from);
                entry.completion_floor = entry.completion_floor.max(arrival);
                (*id, entry.app_freed && entry.fully_acked())
            });
        if let Some((id, garbage)) = matching {
            if garbage {
                // Ack-driven GC: the application already released the request
                // and this was the last missing acknowledgement — the payload
                // can never be needed for a re-send again.
                self.sends.remove(&id);
            }
        } else if seq >= self.send_seq[dst_rank] {
            // The ack raced ahead of the local send (replicas may skew):
            // remember it until the send is posted.
            self.early_acks
                .entry((dst_rank, seq))
                .or_default()
                .push((from, arrival));
        }
        // Otherwise the send has already completed and been freed; stale ack.
    }

    fn handle_recv_complete(&mut self, pml: &mut Pml, pml_req: PmlReqId, meta: MsgMeta) {
        let Some(&proto_id) = self.pml_to_recv.get(&pml_req) else {
            // Not one of ours (should not happen: every application receive is
            // registered). Ignore defensively.
            return;
        };
        let (src_rank, src_replica) = self.map.locate(meta.src);
        let seq = meta.aux as u64;
        let fresh = self.recv_seen[src_rank].record(seq);
        if !fresh {
            // Duplicate delivery caused by a post-failure re-send: drop the
            // payload and re-arm the receive with the same filter.
            self.counters.duplicates_dropped += 1;
            if self.lossy {
                // The sender evidently lost our acknowledgement: re-emit it.
                self.send_acks_for(pml, src_rank, src_replica, seq, meta.arrival);
            }
            let _ = pml.take_recv(pml_req);
            self.pml_to_recv.remove(&pml_req);
            let (new_pml_req, _) = {
                let entry = self.recvs.get(&proto_id).expect("recv entry exists");
                let src = entry.src_rank.map(|r| self.physical_src[r]);
                (pml.irecv(src, entry.comm, entry.tag), ())
            };
            let entry = self.recvs.get_mut(&proto_id).expect("recv entry exists");
            entry.pml_req = new_pml_req;
            self.pml_to_recv.insert(new_pml_req, proto_id);
            return;
        }
        // Record completion metadata for status translation. A lossy
        // transport forces ack-at-receipt: the deferred (AppWait) and
        // disabled (Never) ablations would let the sender's retransmission
        // timer fire on messages that were in fact delivered.
        let ack_on = if self.lossy {
            AckOn::RecvComplete
        } else {
            self.cfg.ack_on
        };
        if let Some(entry) = self.recvs.get_mut(&proto_id) {
            entry.meta = Some(meta.clone());
            match ack_on {
                AckOn::RecvComplete | AckOn::Never => {}
                AckOn::AppWait => {
                    entry.deferred_ack = Some((src_rank, src_replica, seq, meta.arrival));
                }
            }
        }
        if ack_on == AckOn::RecvComplete {
            // The paper's design: acknowledge on the library-level
            // irecvComplete event (Algorithm 1, lines 15-17).
            let before = pml.now();
            self.send_acks_for(pml, src_rank, src_replica, seq, meta.arrival);
            let cost = pml.now() - before;
            // If the ack was emitted while this process was still (virtually)
            // idle before the message's arrival, the charge above is absorbed
            // when the clock later synchronises to the arrival; remember it so
            // the receive completion re-applies it on the critical path.
            if before < meta.arrival {
                if let Some(entry) = self.recvs.get_mut(&proto_id) {
                    entry.post_arrival_cost = cost;
                }
            }
        }
        // AckOn::Never: no acknowledgement at all (baseline configurations).
    }

    /// Section 3.4: a recovery notification announces that `recovered` has
    /// been forked from the substitute's state and is live again. Relying on
    /// FIFO channels, any message addressed to the recovered process's rank
    /// that has not been acknowledged by the substitute *at the moment this
    /// notification is processed* was not part of the forked state, so the
    /// sender replays it directly to the new process. Acknowledgements toward
    /// the recovered process resume for messages received afterwards. With
    /// degree ≥ 3 the fork source is the deterministically elected lowest
    /// surviving replica (fork-election), so "the substitute" below is that
    /// replica's endpoint.
    pub(crate) fn handle_recovery_notification(&mut self, pml: &mut Pml, recovered: EndpointId) {
        let (rrank, rrep) = self.map.locate(recovered);
        if recovered.0 < self.alive.len() {
            self.alive[recovered.0] = true;
        }
        let my_degree = self.map.degree_of(self.my_rank);
        if self.my_rank == rrank {
            // Replicas of the recovered rank: the recovered process is in
            // charge of itself again; stop sending on its behalf.
            for l in 0..my_degree {
                if l == rrep {
                    self.substitute[l] = rrep;
                }
            }
            if self.my_replica != rrep {
                // I was the substitute: stop sending on behalf of the
                // recovered replica (drop its counterpart destinations, which
                // are all distinct from my own because rrep != my_replica).
                for rank in 0..self.map.ranks() {
                    if rrep < self.map.degree_of(rank) {
                        let proxy_dest = self.map.endpoint(rank, rrep);
                        self.physical_dests[rank].remove(&proxy_dest);
                    }
                }
            }
            return;
        }
        if rrep % my_degree == self.my_replica {
            // The recovered process is one of my direct destinations for rank
            // `rrank`: resume sending directly to it, and replay every
            // message it cannot have inherited from the fork source's state
            // (those not yet acknowledged by that survivor).
            self.physical_dests[rrank].insert(recovered);
            let mut replays = Vec::new();
            for entry in self.sends.values_mut() {
                if entry.dst_rank != rrank {
                    continue;
                }
                let sub_ep = {
                    // The fork source is the lowest alive replica of rrank
                    // other than the recovered process itself.
                    let mut sub = None;
                    for rep in 0..self.map.degree_of(rrank) {
                        let e = self.map.endpoint(rrank, rep);
                        if e != recovered && self.alive[e.0] {
                            sub = Some(e);
                            break;
                        }
                    }
                    sub
                };
                let acked_by_sub = sub_ep
                    .map(|s| entry.acks_received.contains(&s))
                    .unwrap_or(false);
                if !acked_by_sub {
                    replays.push((entry.comm, entry.tag, entry.seq, entry.payload.clone()));
                }
            }
            for (comm, tag, seq, payload) in replays {
                let req = pml.isend(recovered, comm, tag, seq as i64, payload);
                // PML sends complete immediately; free the handle right away
                // so replays do not leak request-table entries.
                pml.free(req);
                self.counters.resends += 1;
            }
            // Replays happen outside the normal send→wait flow: push the
            // staged batch now so the recovered process sees it promptly.
            pml.flush();
        }
        // Processes that receive from the substitute (my_replica != rrep) only
        // need the liveness update: the ack rule "ack every alive replica of
        // the sender rank except the one received from" now includes the
        // recovered process again, exactly for messages received after this
        // notification (FIFO ordering argument of Section 3.4).
    }

    /// Algorithm 1, `upon failure of p^rep_rank`.
    fn handle_failure(&mut self, pml: &mut Pml, ev: FailureEvent) {
        if ev.endpoint.0 >= self.alive.len() || !self.alive[ev.endpoint.0] {
            return; // unknown or already handled
        }
        self.alive[ev.endpoint.0] = false;
        self.counters.failures_handled += 1;
        let (failed_rank, failed_rep) = self.map.locate(ev.endpoint);
        let Some(sub) = self.elect_substitute(failed_rank) else {
            // Every replica of the rank is gone; nothing the protocol can do
            // (the paper would fall back to checkpoint/restart here). Abort
            // this process with a clear error instead of letting the job hang
            // on receives that can never be satisfied. For a singleton rank
            // of a partial map this fires on the rank's first crash, so the
            // typed `RankLost` surfaces promptly.
            std::panic::panic_any(MpiError::RankLost {
                rank: failed_rank,
                degree: self.map.degree_of(failed_rank),
            });
        };

        if failed_rank == self.my_rank {
            let my_degree = self.map.degree_of(self.my_rank);
            // I am a replica of the failed process's rank.
            if sub == self.my_replica {
                // I am the elected substitute (Algorithm 1, lines 21-25).
                let delegated: Vec<usize> = (0..my_degree)
                    .filter(|&l| self.substitute[l] == failed_rep || l == failed_rep)
                    .collect();
                for &l in &delegated {
                    // Add the failed replica set's destinations to mine
                    // (only ranks that actually have a replica slot `l`).
                    for rank in 0..self.map.ranks() {
                        if l >= self.map.degree_of(rank) {
                            continue;
                        }
                        let target = self.map.endpoint(rank, l);
                        if self.is_alive(target) {
                            self.physical_dests[rank].insert(target);
                        }
                    }
                    // Re-send every message whose ack from replica `l` of the
                    // destination rank is missing.
                    let mut resends = Vec::new();
                    for entry in self.sends.values_mut() {
                        if l >= self.map.degree_of(entry.dst_rank) {
                            continue;
                        }
                        let target = self.map.endpoint(entry.dst_rank, l);
                        if !self.alive[target.0] {
                            continue;
                        }
                        if !entry.acks_received.contains(&target) {
                            resends.push((
                                target,
                                entry.comm,
                                entry.tag,
                                entry.seq,
                                entry.payload.clone(),
                            ));
                        }
                        // Delivery is now guaranteed over our own reliable
                        // channel; stop waiting for that ack.
                        entry.acks_expected.remove(&target);
                        entry.acks_received.insert(target);
                    }
                    for (target, comm, tag, seq, payload) in resends {
                        let req = pml.isend(target, comm, tag, seq as i64, payload);
                        self.counters.resends += 1;
                        // Attach the resend to its entry so completion still
                        // covers it.
                        if let Some(entry) = self
                            .sends
                            .values_mut()
                            .find(|e| e.seq == seq && self.map.rank_of(target) == e.dst_rank)
                        {
                            entry.pml_reqs.push(req);
                        }
                    }
                }
            }
            // Everyone in the rank updates the substitution table
            // (Algorithm 1, lines 26-27).
            for l in 0..my_degree {
                if self.substitute[l] == failed_rep {
                    self.substitute[l] = sub;
                }
            }
            if self.substitute[failed_rep] == failed_rep {
                self.substitute[failed_rep] = sub;
            }
        } else {
            // Algorithm 1, lines 28-35: I am not a replica of the failed rank.
            let new_src = self.map.endpoint(failed_rank, sub);
            if self.physical_src[failed_rank] == ev.endpoint {
                self.physical_src[failed_rank] = new_src;
            }
            // Cancel ack expectations that the dead process would have sent
            // (it was a destination-rank replica for my sends to failed_rank).
            for entry in self.sends.values_mut() {
                if entry.dst_rank == failed_rank {
                    entry.acks_expected.remove(&ev.endpoint);
                    // The direct send to the dead process (if any) is moot; the
                    // PML send already completed, nothing to cancel there.
                }
            }
            // Redirect pending receives that were expecting the dead process.
            let pending = pml.pending_recvs_from(ev.endpoint);
            for pml_req in pending {
                pml.redirect_recv(pml_req, Some(new_src));
            }
        }
        // Substitute re-sends (above) bypass the send→wait flow; flush them
        // so the affected peers are woken without waiting for this process's
        // next blocking boundary.
        pml.flush();
        self.collect_send_log_garbage();
    }

    /// Drop send-log entries whose request the application has released and
    /// whose acknowledgements are all in. Called after every state change
    /// that can complete an entry's ack set without going through
    /// [`SdrProtocol::register_ack`] (the failure handler force-completes
    /// acks of dead replicas).
    fn collect_send_log_garbage(&mut self) {
        self.sends.retain(|_, e| !(e.app_freed && e.fully_acked()));
    }

    /// Arm (or re-arm) the retransmission timer for send-log entry `id`: a
    /// self-addressed CONTROL message whose virtual arrival is the timeout
    /// deadline. Self-sends bypass the outbox, so the timer is queued in this
    /// process's own inbox immediately — a process with an unacked send can
    /// therefore never be judged quiescent, which is what keeps deadlock
    /// detection exact under message loss (DESIGN.md §5.5).
    fn arm_retx_timer(&mut self, pml: &mut Pml, id: u64, deadline: SimTime) {
        let me = pml.endpoint_id();
        pml.send_control_at(
            me,
            class::CONTROL,
            [ctl::RETX_TIMER, id as i64, 0, 0, 0, 0, 0, 0],
            Bytes::new(),
            deadline,
        );
    }

    /// A retransmission timer fired for send-log entry `id` at virtual time
    /// `now`. If the entry is still missing acknowledgements, chase each
    /// missing one — replay the payload on direct links (same wire sequence,
    /// so the receiver's window dedups it), probe cross replicas reliably —
    /// and re-arm the timer with doubled backoff.
    fn handle_retx_timer(&mut self, pml: &mut Pml, id: u64, now: SimTime) {
        let Some(entry) = self.sends.get_mut(&id) else {
            return; // already acked and collected: stale timer
        };
        if entry.fully_acked() {
            return;
        }
        entry.retx_attempts += 1;
        let attempts = entry.retx_attempts;
        // The deadline has been reached in *virtual* time only — popping a
        // self-addressed timer is instantaneous in real time. Before judging
        // the timeout, sync our clock to the deadline and cross the
        // scheduler's advance boundary, handing the run permit to any ready
        // process earlier in virtual time. Without this, a process whose
        // inbox the timer keeps warm never parks and never yields, starving
        // the very peers whose acknowledgements would cancel the timer while
        // the attempt counter races to its cap (DESIGN.md §5.5).
        pml.wait_until(now);
        // The boundary above yields only within the scheduler's permit pool;
        // on a loaded (or single-core) host the peer's *carrier thread* may
        // still be waiting for physical CPU while this process — whose timer
        // pops cost nanoseconds of real time each — races through backoff
        // rounds. A timeout is a slow path: give the OS a scheduling point
        // every attempt, and once attempts pile up, a short real sleep, so
        // acknowledgements already emitted get physical time to arrive
        // before the attempt cap can possibly be reached.
        std::thread::yield_now();
        if attempts >= RETX_REAL_BACKOFF_ATTEMPTS {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        assert!(
            attempts <= RETX_MAX_ATTEMPTS,
            "send to rank {} seq {} still unacked after {} retransmission timeouts",
            entry.dst_rank,
            entry.seq,
            RETX_MAX_ATTEMPTS,
        );
        let missing: Vec<EndpointId> = entry
            .acks_expected
            .difference(&entry.acks_received)
            .copied()
            .collect();
        let (comm, tag, seq, payload) = (entry.comm, entry.tag, entry.seq, entry.payload.clone());
        let wire_sends = entry.wire_sends.clone();
        for target in missing {
            if !self.is_alive(target) {
                continue;
            }
            if let Some(&(_, wire_seq)) = wire_sends.iter().find(|(e, _)| *e == target) {
                pml.resend_app(target, comm, tag, seq as i64, wire_seq, payload.clone());
            } else {
                pml.send_control_at(
                    target,
                    class::CONTROL,
                    [
                        ctl::ACK_PROBE,
                        self.my_rank as i64,
                        seq as i64,
                        0,
                        0,
                        0,
                        0,
                        0,
                    ],
                    Bytes::new(),
                    now,
                );
            }
        }
        let backoff = SimTime::from_nanos(RETX_BASE_NS << (attempts - 1).min(16));
        self.arm_retx_timer(pml, id, now.saturating_add(backoff));
        // The timer fires outside the normal send→wait flow; push the staged
        // retransmits now so the receivers are woken promptly.
        pml.flush();
    }

    /// A peer probes whether application sequence `seq` from `sender_rank`
    /// has been delivered here. If it has, re-emit the acknowledgement — on
    /// the reliable CONTROL class, so a probe/re-ack exchange always
    /// terminates regardless of the fault rates on the ACK class.
    fn handle_ack_probe(
        &mut self,
        pml: &mut Pml,
        prober: EndpointId,
        sender_rank: Rank,
        seq: u64,
        arrival: SimTime,
    ) {
        if self.recv_seen[sender_rank].seen(seq) {
            pml.send_control_at(
                prober,
                class::CONTROL,
                Self::ack_header(sender_rank, self.my_rank, seq),
                Bytes::new(),
                arrival,
            );
            self.counters.acks_sent += 1;
        }
        // Not seen yet: our own direct sender's retransmission timer is in
        // charge of getting the payload here; we will ack on delivery.
    }

    /// A peer's finalize-time cumulative acknowledgement: `acker` (a replica
    /// of rank `rank_of(acker)`) has received everything this rank ever sent
    /// it below `upto`. Acks every matching live entry and is remembered for
    /// sends this (possibly slower) replica has not posted yet.
    fn handle_fin_ack(&mut self, acker: EndpointId, upto: u64, arrival: SimTime) {
        let acker_rank = self.map.rank_of(acker);
        for entry in self.sends.values_mut() {
            if entry.dst_rank == acker_rank && entry.seq < upto {
                entry.acks_received.insert(acker);
                entry.completion_floor = entry.completion_floor.max(arrival);
            }
        }
        let slot = self.fin_acked.entry((acker_rank, acker)).or_insert(0);
        *slot = (*slot).max(upto);
        self.collect_send_log_garbage();
    }
}

impl Protocol for SdrProtocol {
    fn app_rank(&self) -> Rank {
        self.my_rank
    }

    fn app_size(&self) -> usize {
        self.map.ranks()
    }

    fn replica_id(&self) -> usize {
        self.my_replica
    }

    fn is_primary(&self) -> bool {
        self.my_replica == self.cfg.primary_replica
    }

    fn init(&mut self, pml: &mut Pml) {
        // Capture the transport mode once: the fault policy is installed on
        // the fabric before any process starts, so this cannot change
        // mid-run.
        self.lossy = pml.lossy_transport();
    }

    fn isend(
        &mut self,
        pml: &mut Pml,
        dst: Rank,
        comm: CommId,
        tag: Tag,
        payload: Bytes,
    ) -> ProtoSendReq {
        assert!(
            dst < self.map.ranks(),
            "destination rank {dst} out of range"
        );
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;

        let mut entry = SendEntry {
            dst_rank: dst,
            comm,
            tag,
            seq,
            payload: payload.clone(),
            pml_reqs: Vec::new(),
            wire_sends: Vec::new(),
            retx_attempts: 0,
            acks_expected: BTreeSet::new(),
            acks_received: BTreeSet::new(),
            completion_floor: SimTime::ZERO,
            app_freed: false,
        };
        // Algorithm 1, MPI_Isend (lines 4-9): send directly to every replica in
        // physicalDests, expect an ack from every other alive replica. The
        // payload clones share one allocation (`Bytes` is refcounted) and the
        // whole fan-out lands in the endpoint's staged outbox, so the
        // replication degree multiplies neither copies nor channel/wake
        // operations beyond one per distinct destination.
        //
        // Under a lossy transport the ack set widens to *every* alive replica
        // of the destination rank, direct targets included: the direct sender
        // owns the only link a dropped payload can be retransmitted on, so it
        // must learn of delivery (or the lack of it) itself.
        for rep in 0..self.map.degree_of(dst) {
            let target = self.map.endpoint(dst, rep);
            if self.physical_dests[dst].contains(&target) {
                if self.is_alive(target) {
                    if self.lossy {
                        let (req, wire_seq) =
                            pml.isend_tracked(target, comm, tag, seq as i64, payload.clone());
                        entry.pml_reqs.push(req);
                        entry.wire_sends.push((target, wire_seq));
                        entry.acks_expected.insert(target);
                    } else {
                        let req = pml.isend(target, comm, tag, seq as i64, payload.clone());
                        entry.pml_reqs.push(req);
                    }
                }
            } else if self.is_alive(target) && (self.lossy || self.cfg.ack_on != AckOn::Never) {
                entry.acks_expected.insert(target);
            }
        }
        // Fold in acks that arrived before this send was posted.
        if let Some(early) = self.early_acks.remove(&(dst, seq)) {
            for (e, arrival) in early {
                entry.acks_received.insert(e);
                entry.completion_floor = entry.completion_floor.max(arrival);
            }
        }
        // Fold in cumulative finalize-time acks from peers that already
        // exited (replica skew: their counterpart sent — and they received —
        // this sequence before we posted it).
        if self.lossy {
            for target in entry.acks_expected.clone() {
                if self
                    .fin_acked
                    .get(&(dst, target))
                    .is_some_and(|&upto| seq < upto)
                {
                    entry.acks_received.insert(target);
                }
            }
        }
        let id = self.next_req;
        self.next_req += 1;
        let armed = self.lossy && !entry.fully_acked();
        self.sends.insert(id, entry);
        if armed {
            let deadline = pml.now().saturating_add(SimTime::from_nanos(RETX_BASE_NS));
            self.arm_retx_timer(pml, id, deadline);
        }
        ProtoSendReq(id)
    }

    fn irecv(
        &mut self,
        pml: &mut Pml,
        src: Option<Rank>,
        comm: CommId,
        tag: TagSel,
    ) -> ProtoRecvReq {
        // Algorithm 1, MPI_Irecv (lines 10-11): receive from physicalSrc[rank];
        // MPI_ANY_SOURCE stays an any-source receive — send-determinism makes a
        // leader-decided source unnecessary (Section 3.1).
        let phys_src = src.map(|r| {
            assert!(r < self.map.ranks(), "source rank {r} out of range");
            self.physical_src[r]
        });
        let pml_req = pml.irecv(phys_src, comm, tag);
        let id = self.next_req;
        self.next_req += 1;
        self.recvs.insert(
            id,
            RecvEntry {
                src_rank: src,
                comm,
                tag,
                pml_req,
                meta: None,
                deferred_ack: None,
                post_arrival_cost: SimTime::ZERO,
            },
        );
        self.pml_to_recv.insert(pml_req, id);
        ProtoRecvReq(id)
    }

    fn send_complete(&mut self, pml: &mut Pml, req: ProtoSendReq) -> bool {
        match self.sends.get(&req.0) {
            None => true,
            Some(entry) => {
                entry.pml_reqs.iter().all(|r| pml.is_complete(*r)) && entry.fully_acked()
            }
        }
    }

    fn recv_complete(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> bool {
        match self.recvs.get(&req.0) {
            None => true,
            Some(entry) => entry.meta.is_some() && pml.is_complete(entry.pml_req),
        }
    }

    fn take_recv(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> Option<(Status, Bytes)> {
        let ready = self
            .recvs
            .get(&req.0)
            .map(|e| e.meta.is_some())
            .unwrap_or(false);
        if !ready {
            return None;
        }
        let entry = self.recvs.remove(&req.0).expect("checked above");
        self.pml_to_recv.remove(&entry.pml_req);
        let (meta, payload) = pml.take_recv(entry.pml_req)?;
        if !entry.post_arrival_cost.is_zero() {
            pml.endpoint_mut()
                .clock_mut()
                .charge_comm(entry.post_arrival_cost);
        }
        if let Some((src_rank, src_replica, seq, arrival)) = entry.deferred_ack {
            // AppWait ablation: acknowledge only now that the application has
            // completed the receive.
            self.send_acks_for(pml, src_rank, src_replica, seq, arrival);
        }
        let src_rank = self.map.rank_of(meta.src);
        Some((
            Status {
                source: src_rank,
                tag: meta.tag,
                len: meta.len,
            },
            payload,
        ))
    }

    fn free_send(&mut self, pml: &mut Pml, req: ProtoSendReq) {
        let fully_acked = {
            let Some(entry) = self.sends.get_mut(&req.0) else {
                return;
            };
            // The application-level send completion (return from MPI_Wait)
            // happens no earlier than the last acknowledgement it waited for.
            pml.endpoint_mut()
                .clock_mut()
                .sync_to(entry.completion_floor);
            for r in std::mem::take(&mut entry.pml_reqs) {
                pml.free(r);
            }
            entry.app_freed = true;
            entry.fully_acked()
        };
        if fully_acked {
            self.sends.remove(&req.0);
        }
        // Not fully acked: the entry stays in the send log so a substitute
        // can still re-send the payload; the ack-driven GC reclaims it when
        // the last acknowledgement arrives.
    }

    fn handle_event(&mut self, pml: &mut Pml, ev: PmlEvent) {
        match ev {
            PmlEvent::RecvCompleted { req, meta } => self.handle_recv_complete(pml, req, meta),
            PmlEvent::Control {
                src,
                class: cls,
                header,
                arrival,
                ..
            } => {
                // Acks normally travel on the (faultable) ACK class; probe
                // responses re-emit them on the reliable CONTROL class, so the
                // ack branch accepts both.
                if (cls == class::ACK || cls == class::CONTROL) && header[0] == ctl::ACK {
                    let sender_rank = header[1] as usize;
                    debug_assert_eq!(sender_rank, self.my_rank, "ack routed to the wrong rank");
                    let acker_rank = header[2] as usize;
                    let seq = header[3] as u64;
                    let _ = acker_rank;
                    self.register_ack(src, self.map.rank_of(src), seq, arrival);
                } else if cls == class::CONTROL && header[0] == ctl::RECOVERY_NOTIFY {
                    let recovered = EndpointId(header[1] as usize);
                    self.handle_recovery_notification(pml, recovered);
                } else if cls == class::CONTROL && header[0] == ctl::RETX_TIMER {
                    self.handle_retx_timer(pml, header[1] as u64, arrival);
                } else if cls == class::CONTROL && header[0] == ctl::ACK_PROBE {
                    self.handle_ack_probe(pml, src, header[1] as usize, header[2] as u64, arrival);
                } else if cls == class::CONTROL && header[0] == ctl::FIN_ACK {
                    self.handle_fin_ack(src, header[1] as u64, arrival);
                }
            }
            PmlEvent::DuplicateSuppressed {
                src, aux, arrival, ..
            } => {
                // The PML's wire window discarded a retransmit whose original
                // made it through after all: the sender is still missing our
                // acknowledgement, so re-emit it.
                let (src_rank, src_replica) = self.map.locate(src);
                self.counters.duplicates_dropped += 1;
                self.send_acks_for(pml, src_rank, src_replica, aux as u64, arrival);
            }
            PmlEvent::ProcessFailed(ev) => self.handle_failure(pml, ev),
        }
    }

    fn finalize(&mut self, pml: &mut Pml) {
        if !self.lossy {
            return;
        }
        // Termination under loss, two steps (DESIGN.md §5.5):
        //
        // 1. Flush cumulative acknowledgements on the reliable CONTROL class.
        //    At finalize this process has received *everything* any peer will
        //    ever send it (the app completed all its receives, and the wire
        //    window admits no gaps), so one `upto` per sender rank covers
        //    every per-message ack a fault may have eaten — senders can
        //    complete even after we exit.
        let me = pml.endpoint_id();
        for src_rank in 0..self.map.ranks() {
            let upto = self.recv_seen[src_rank].next_expected;
            if upto == 0 {
                continue;
            }
            for rep in 0..self.map.degree_of(src_rank) {
                let target = self.map.endpoint(src_rank, rep);
                if target != me && self.is_alive(target) {
                    pml.send_control_at(
                        target,
                        class::CONTROL,
                        [ctl::FIN_ACK, upto as i64, 0, 0, 0, 0, 0, 0],
                        Bytes::new(),
                        pml.now(),
                    );
                }
            }
        }
        pml.flush();
        // 2. Drain the send log: keep progressing (retransmission timers,
        //    probe responses, peers' FIN_ACKs) until every entry is fully
        //    acknowledged — exiting earlier would strand a receiver whose
        //    copy of a payload was dropped.
        while self.sends.values().any(|e| !e.fully_acked()) {
            match pml.progress_blocking("SDR-MPI finalize: draining unacked send log") {
                Ok(events) => {
                    for ev in events {
                        self.handle_event(pml, ev);
                    }
                }
                Err(err) => std::panic::panic_any(err),
            }
        }
    }

    fn describe_pending(&self) -> String {
        let waiting_acks: usize = self.sends.values().filter(|e| !e.fully_acked()).count();
        format!(
            "SDR-MPI rank {} replica {}: {} sends awaiting acks, {} receives outstanding",
            self.my_rank,
            self.my_replica,
            waiting_acks,
            self.recvs.len()
        )
    }

    fn send_log_len(&self) -> usize {
        self.sends.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_tracker_in_order() {
        let mut t = SeqTracker::default();
        for s in 0..10 {
            assert!(!t.seen(s));
            assert!(t.record(s));
            assert!(t.seen(s));
        }
        assert_eq!(t.pending_out_of_order(), 0);
    }

    #[test]
    fn seq_tracker_detects_duplicates() {
        let mut t = SeqTracker::default();
        assert!(t.record(0));
        assert!(!t.record(0), "duplicate must be rejected");
        assert!(t.record(1));
        assert!(!t.record(0));
        assert!(!t.record(1));
    }

    #[test]
    fn seq_tracker_out_of_order_then_compacts() {
        let mut t = SeqTracker::default();
        assert!(t.record(2));
        assert!(t.record(0));
        assert_eq!(t.pending_out_of_order(), 1);
        assert!(t.record(1));
        assert_eq!(t.pending_out_of_order(), 0);
        assert!(!t.record(2));
        assert!(t.record(3));
    }

    #[test]
    fn initial_routing_is_own_replica_set() {
        let proto = SdrProtocol::new(EndpointId(5), 4, ReplicationConfig::dual());
        // Endpoint 5 with 4 ranks → rank 1, replica 1.
        assert_eq!(proto.app_rank(), 1);
        assert_eq!(proto.replica_id(), 1);
        assert!(!proto.is_primary());
        for rank in 0..4 {
            assert_eq!(
                proto.physical_src[rank],
                EndpointId(4 + rank),
                "replica 1 receives from replica 1 of every rank"
            );
            assert!(proto.physical_dests[rank].contains(&EndpointId(4 + rank)));
            assert_eq!(proto.physical_dests[rank].len(), 1);
        }
    }

    #[test]
    fn partial_map_singleton_routing_is_symmetric() {
        use crate::layout::{MappingPolicy, PartialLayout};
        let map: Arc<dyn ReplicaMap> =
            Arc::new(PartialLayout::new(2, &[0], MappingPolicy::Adjacent).unwrap());
        // The singleton (rank 1, endpoint 1) feeds both replicas of rank 0
        // directly and therefore expects no acknowledgements from them.
        let singleton =
            SdrProtocol::new_with_map(EndpointId(1), Arc::clone(&map), ReplicationConfig::dual());
        assert_eq!(singleton.app_rank(), 1);
        assert_eq!(singleton.physical_dests[0].len(), 2);
        // Replica 1 of rank 0 (endpoint 2) sends nothing to the singleton
        // directly; replica 0 (endpoint 0) owns the direct copy.
        let rep1 =
            SdrProtocol::new_with_map(EndpointId(2), Arc::clone(&map), ReplicationConfig::dual());
        assert!(rep1.physical_dests[1].is_empty());
        let rep0 =
            SdrProtocol::new_with_map(EndpointId(0), Arc::clone(&map), ReplicationConfig::dual());
        assert_eq!(rep0.physical_dests[1].len(), 1);
        assert!(rep0.physical_dests[1].contains(&EndpointId(1)));
        // Both replicas of rank 0 receive rank 1's messages from the
        // singleton itself.
        assert_eq!(rep0.physical_src[1], EndpointId(1));
        assert_eq!(rep1.physical_src[1], EndpointId(1));
    }

    #[test]
    fn losing_a_singleton_rank_aborts_promptly_with_degree_one() {
        use crate::layout::{MappingPolicy, PartialLayout};
        let map: Arc<dyn ReplicaMap> =
            Arc::new(PartialLayout::new(2, &[0], MappingPolicy::Adjacent).unwrap());
        let mut pml = pml_for(2, 3);
        let mut proto = SdrProtocol::new_with_map(EndpointId(2), map, ReplicationConfig::dual());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            proto.handle_event(
                &mut pml,
                sim_mpi::PmlEvent::ProcessFailed(sim_net::FailureEvent {
                    endpoint: EndpointId(1),
                    at: SimTime::ZERO,
                    seq: 0,
                }),
            );
        }));
        let err = result.expect_err("a singleton crash is unsurvivable");
        let mpi_err = err
            .downcast_ref::<MpiError>()
            .expect("panic payload is an MpiError");
        assert_eq!(*mpi_err, MpiError::RankLost { rank: 1, degree: 1 });
    }

    #[test]
    fn substitute_election_is_lowest_alive_replica() {
        let mut proto = SdrProtocol::new(EndpointId(0), 2, ReplicationConfig::with_degree(3));
        assert_eq!(proto.elect_substitute(1), Some(0));
        // Kill replica 0 of rank 1 (endpoint 1).
        proto.alive[1] = false;
        assert_eq!(proto.elect_substitute(1), Some(1));
        // Kill replica 1 of rank 1 (endpoint 3).
        proto.alive[3] = false;
        assert_eq!(proto.elect_substitute(1), Some(2));
        // Kill the last one.
        proto.alive[5] = false;
        assert_eq!(proto.elect_substitute(1), None);
    }

    #[test]
    fn ack_header_roundtrip() {
        let h = SdrProtocol::ack_header(3, 7, 42);
        assert_eq!(h[0], ctl::ACK);
        assert_eq!(h[1], 3);
        assert_eq!(h[2], 7);
        assert_eq!(h[3], 42);
    }

    #[test]
    fn counters_start_at_zero() {
        let proto = SdrProtocol::new(EndpointId(0), 2, ReplicationConfig::dual());
        assert_eq!(proto.counters(), SdrCounters::default());
    }

    fn pml_for(endpoint: usize, n: usize) -> Pml {
        use sim_net::{Cluster, Fabric, LogGpModel, Placement};
        let f = Fabric::new(
            n,
            LogGpModel::fast_test_model(),
            Cluster::new(n, 1),
            Placement::Packed,
        );
        Pml::new(f.endpoint(EndpointId(endpoint)))
    }

    #[test]
    fn ack_driven_gc_prunes_entry_freed_before_last_ack() {
        // Rank 0 replica 0 (endpoint 0) sends to rank 1; the ack expected
        // from rank 1's replica 1 (endpoint 3) has not arrived when the
        // application releases the request. The entry must stay in the send
        // log (a substitute may still need the payload) and be reclaimed the
        // moment the ack lands.
        let mut pml = pml_for(0, 4);
        let mut proto = SdrProtocol::new(EndpointId(0), 2, ReplicationConfig::dual());
        let req = proto.isend(&mut pml, 1, CommId::WORLD, 7, Bytes::from_static(b"log me"));
        assert_eq!(proto.send_log_len(), 1);
        proto.free_send(&mut pml, req);
        assert_eq!(
            proto.send_log_len(),
            1,
            "entry retained while an ack is outstanding"
        );
        proto.handle_event(
            &mut pml,
            sim_mpi::PmlEvent::Control {
                src: EndpointId(3),
                class: class::ACK,
                header: SdrProtocol::ack_header(0, 1, 0),
                payload: Bytes::new(),
                arrival: SimTime::from_nanos(50),
            },
        );
        assert_eq!(
            proto.send_log_len(),
            0,
            "last ack garbage-collects the entry"
        );
        assert_eq!(proto.counters().acks_received, 1);
    }

    #[test]
    fn fully_acked_entry_freed_immediately_on_app_free() {
        let mut pml = pml_for(0, 4);
        let mut proto = SdrProtocol::new(EndpointId(0), 2, ReplicationConfig::dual());
        let req = proto.isend(&mut pml, 1, CommId::WORLD, 7, Bytes::from_static(b"x"));
        proto.handle_event(
            &mut pml,
            sim_mpi::PmlEvent::Control {
                src: EndpointId(3),
                class: class::ACK,
                header: SdrProtocol::ack_header(0, 1, 0),
                payload: Bytes::new(),
                arrival: SimTime::from_nanos(50),
            },
        );
        assert_eq!(proto.send_log_len(), 1, "retained until the app frees it");
        assert!(proto.send_complete(&mut pml, req));
        proto.free_send(&mut pml, req);
        assert_eq!(proto.send_log_len(), 0);
    }

    #[test]
    fn losing_every_replica_of_a_rank_aborts_with_clear_error() {
        let mut pml = pml_for(0, 4);
        let mut proto = SdrProtocol::new(EndpointId(0), 2, ReplicationConfig::dual());
        // First failure of rank 1 elects the other replica as substitute.
        proto.handle_event(
            &mut pml,
            sim_mpi::PmlEvent::ProcessFailed(sim_net::FailureEvent {
                endpoint: EndpointId(1),
                at: SimTime::ZERO,
                seq: 0,
            }),
        );
        // Second failure leaves rank 1 with no replica: clear abort.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            proto.handle_event(
                &mut pml,
                sim_mpi::PmlEvent::ProcessFailed(sim_net::FailureEvent {
                    endpoint: EndpointId(3),
                    at: SimTime::ZERO,
                    seq: 1,
                }),
            );
        }));
        let err = result.expect_err("losing every replica must abort");
        let mpi_err = err
            .downcast_ref::<MpiError>()
            .expect("panic payload is an MpiError");
        assert_eq!(
            *mpi_err,
            MpiError::RankLost { rank: 1, degree: 2 },
            "error names the lost rank"
        );
        assert!(mpi_err.to_string().contains("rank 1"));
    }
}
