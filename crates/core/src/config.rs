//! Configuration of the SDR-MPI replication protocol.

use serde::{Deserialize, Serialize};

/// When the replication layer emits the acknowledgement for a received
/// message.
///
/// The paper (Section 3.3) argues that acks *must* be emitted on the
/// library-level `irecvComplete` event: if they were only sent when the
/// application completes the receive (`MPI_Wait`), the common
/// `MPI_Irecv; MPI_Send; MPI_Wait` exchange pattern would deadlock, because
/// `MPI_Send` cannot finish before receiving acks and the peer's ack would
/// only be produced after its own `MPI_Send` finished. [`AckOn::AppWait`]
/// exists purely to demonstrate that deadlock in tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AckOn {
    /// Acknowledge when the message completes at the MPI-library level
    /// (the paper's design).
    RecvComplete,
    /// Acknowledge only when the application waits on the receive request
    /// (deadlock-prone; used as an ablation).
    AppWait,
    /// Never acknowledge. The protocol then degenerates to a plain parallel
    /// replication scheme without crash tolerance — the configuration used by
    /// the redMPI-style and mirror baselines in `repl-baselines`, which add
    /// their own traffic on top.
    Never,
}

/// SDR-MPI configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Replication degree `r` (number of replicas per MPI rank). The paper's
    /// experiments and its recovery protocol use `r = 2`.
    pub degree: usize,
    /// When to emit acknowledgements.
    pub ack_on: AckOn,
    /// Which replica set's application output is reported as the job result.
    pub primary_replica: usize,
}

impl ReplicationConfig {
    /// Dual replication (the paper's configuration).
    pub fn dual() -> Self {
        ReplicationConfig {
            degree: 2,
            ack_on: AckOn::RecvComplete,
            primary_replica: 0,
        }
    }

    /// Replication with an arbitrary degree.
    pub fn with_degree(degree: usize) -> Self {
        assert!(degree >= 1, "replication degree must be at least 1");
        ReplicationConfig {
            degree,
            ack_on: AckOn::RecvComplete,
            primary_replica: 0,
        }
    }

    /// Switch the ack moment (ablation).
    pub fn ack_on(mut self, ack_on: AckOn) -> Self {
        self.ack_on = ack_on;
        self
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig::dual()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_is_degree_two_recv_complete() {
        let c = ReplicationConfig::dual();
        assert_eq!(c.degree, 2);
        assert_eq!(c.ack_on, AckOn::RecvComplete);
        assert_eq!(c.primary_replica, 0);
        assert_eq!(ReplicationConfig::default(), c);
    }

    #[test]
    fn builder_style_ack_on() {
        let c = ReplicationConfig::with_degree(3).ack_on(AckOn::AppWait);
        assert_eq!(c.degree, 3);
        assert_eq!(c.ack_on, AckOn::AppWait);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_degree_rejected() {
        ReplicationConfig::with_degree(0);
    }
}
