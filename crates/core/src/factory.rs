//! Launch-time integration: the [`SdrFactory`] plugs the SDR-MPI protocol into
//! the `sim-mpi` job launcher, and [`replicated_job`] builds a ready-to-run
//! [`JobBuilder`] with the paper's placement policy (different replicas of a
//! rank on different nodes).

use crate::config::ReplicationConfig;
use crate::layout::{LayoutError, MappingPolicy, PartialLayout, ReplicaMap};
use crate::protocol::SdrProtocol;
use sim_mpi::{JobBuilder, Protocol, ProtocolFactory, Rank};
use sim_net::{Cluster, EndpointId, Placement};
use std::sync::Arc;

/// Protocol factory for SDR-MPI.
#[derive(Debug, Clone)]
pub struct SdrFactory {
    cfg: ReplicationConfig,
    /// Explicit replica map; `None` means the classic uniform product layout
    /// derived from `cfg.degree`.
    map: Option<Arc<dyn ReplicaMap>>,
}

impl SdrFactory {
    /// Factory with an explicit configuration on the classic uniform layout.
    pub fn new(cfg: ReplicationConfig) -> Self {
        SdrFactory { cfg, map: None }
    }

    /// Dual replication (the paper's configuration).
    pub fn dual() -> Self {
        SdrFactory::new(ReplicationConfig::dual())
    }

    /// Factory on an arbitrary replica map (partial replication, CYCLIC
    /// numbering, mixed degrees). The job's rank count must match the map's.
    pub fn with_map(cfg: ReplicationConfig, map: Arc<dyn ReplicaMap>) -> Self {
        SdrFactory {
            cfg,
            map: Some(map),
        }
    }

    /// The configuration this factory installs.
    pub fn config(&self) -> ReplicationConfig {
        self.cfg
    }
}

impl ProtocolFactory for SdrFactory {
    fn physical_processes(&self, app_ranks: usize) -> usize {
        match &self.map {
            Some(map) => {
                assert_eq!(
                    map.ranks(),
                    app_ranks,
                    "replica map rank count must match the job"
                );
                map.physical_processes()
            }
            None => app_ranks * self.cfg.degree,
        }
    }

    fn build(&self, endpoint: EndpointId, app_ranks: usize) -> Box<dyn Protocol> {
        match &self.map {
            Some(map) => Box::new(SdrProtocol::new_with_map(
                endpoint,
                Arc::clone(map),
                self.cfg,
            )),
            None => Box::new(SdrProtocol::new(endpoint, app_ranks, self.cfg)),
        }
    }

    fn name(&self) -> &str {
        "sdr-mpi"
    }
}

/// A [`JobBuilder`] for `app_ranks` logical ranks replicated according to
/// `cfg`, with the paper's placement: one core per physical process and the
/// replica sets on disjoint node slices.
pub fn replicated_job(app_ranks: usize, cfg: ReplicationConfig) -> JobBuilder {
    let physical = app_ranks * cfg.degree;
    JobBuilder::new(app_ranks)
        .protocol(Arc::new(SdrFactory::new(cfg)))
        .cluster(Cluster::new(physical, 1))
        .placement(Placement::ReplicaSets {
            ranks: app_ranks,
            degree: cfg.degree,
        })
}

/// A [`JobBuilder`] on an arbitrary replica map. One core per physical
/// process; with one process per node the packed placement is equivalent to
/// any replica-spreading policy, so non-product maps (partial, CYCLIC) need
/// no dedicated placement variant.
pub fn mapped_job(map: Arc<dyn ReplicaMap>, cfg: ReplicationConfig) -> JobBuilder {
    let physical = map.physical_processes();
    JobBuilder::new(map.ranks())
        .protocol(Arc::new(SdrFactory::with_map(cfg, map)))
        .cluster(Cluster::new(physical, 1))
        .placement(Placement::Packed)
}

/// A partially replicated [`JobBuilder`]: the ranks in `replicated` run at
/// degree 2 (ADJACENT numbering), every other rank is a singleton. Invalid
/// subsets surface as typed [`LayoutError`]s.
pub fn partial_replicated_job(
    app_ranks: usize,
    replicated: &[Rank],
    cfg: ReplicationConfig,
) -> Result<JobBuilder, LayoutError> {
    let map = PartialLayout::new(app_ranks, replicated, MappingPolicy::Adjacent)?;
    Ok(mapped_job(Arc::new(map), cfg))
}

/// A partially replicated [`JobBuilder`] covering the first
/// `ceil(coverage · app_ranks)` ranks — the overhead-vs-coverage sweep's
/// deterministic subset.
pub fn coverage_job(
    app_ranks: usize,
    coverage: f64,
    cfg: ReplicationConfig,
) -> Result<JobBuilder, LayoutError> {
    let map = PartialLayout::with_coverage(app_ranks, coverage, MappingPolicy::Adjacent)?;
    Ok(mapped_job(Arc::new(map), cfg))
}

/// A native (non-replicated) [`JobBuilder`] with the same cluster conventions,
/// for apples-to-apples baseline runs.
pub fn native_job(app_ranks: usize) -> JobBuilder {
    JobBuilder::new(app_ranks)
        .cluster(Cluster::new(app_ranks, 1))
        .placement(Placement::Packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AckOn;
    use bytes::Bytes;
    use sim_mpi::{ReduceOp, ANY_SOURCE};
    use sim_net::{CrashSchedule, LogGpModel, NetFaultConfig, SimTime};
    use std::time::Duration;

    fn fast() -> LogGpModel {
        LogGpModel::fast_test_model()
    }

    #[test]
    fn factory_sizes_and_identity() {
        let f = SdrFactory::dual();
        assert_eq!(f.physical_processes(8), 16);
        assert_eq!(f.name(), "sdr-mpi");
        let p = f.build(EndpointId(11), 8);
        assert_eq!(p.app_rank(), 3);
        assert_eq!(p.replica_id(), 1);
        assert!(!p.is_primary());
        let p0 = f.build(EndpointId(3), 8);
        assert!(p0.is_primary());
    }

    #[test]
    fn replicated_ping_pong_matches_native_results() {
        let app = |p: &mut sim_mpi::Process| {
            let world = p.world();
            if p.rank() == 0 {
                p.send_bytes(world, 1, 1, Bytes::from_static(b"ping"));
                let (_, reply) = p.recv_bytes(world, 1, 2);
                String::from_utf8(reply.to_vec()).unwrap()
            } else {
                let (_, msg) = p.recv_bytes(world, 0, 1);
                assert_eq!(&msg[..], b"ping");
                p.send_bytes(world, 0, 2, Bytes::from_static(b"pong"));
                "sender".to_string()
            }
        };
        let native = native_job(2).network(fast()).run(app);
        let replicated = replicated_job(2, ReplicationConfig::dual())
            .network(fast())
            .run(app);
        assert!(native.all_finished());
        assert!(replicated.all_finished());
        assert_eq!(native.primary_results(), replicated.primary_results());
        // Parallel protocol: application messages double (each replica set runs
        // its own copy), and acks flow (one per received message per other
        // replica of the sender rank).
        assert_eq!(replicated.stats.app_msgs(), 2 * native.stats.app_msgs());
        assert_eq!(replicated.stats.ack_msgs(), replicated.stats.app_msgs());
        assert_eq!(native.stats.ack_msgs(), 0);
        // Both replica sets report the application result.
        assert_eq!(replicated.processes.len(), 4);
    }

    #[test]
    fn replicated_collectives_produce_correct_results() {
        let report = replicated_job(4, ReplicationConfig::dual())
            .network(fast())
            .run(|p| {
                let world = p.world();
                p.barrier(world);
                let sum = p.allreduce_f64(world, ReduceOp::Sum, (p.rank() + 1) as f64);
                let bcast = p.bcast_f64s(
                    world,
                    1,
                    if p.rank() == 1 {
                        Some(&[2.5][..])
                    } else {
                        None
                    },
                );
                let gathered = p.gather_bytes(world, 0, Bytes::from(vec![p.rank() as u8]));
                let gathered_ok = match gathered {
                    Some(blocks) => blocks.iter().enumerate().all(|(i, b)| b[0] as usize == i),
                    None => true,
                };
                (sum, bcast[0], gathered_ok)
            });
        assert!(report.all_finished());
        for r in report.primary_results() {
            assert_eq!(*r, (10.0, 2.5, true));
        }
        // Non-primary replicas computed the same thing.
        for proc in &report.processes {
            if let Some(r) = proc.outcome.result() {
                assert_eq!(*r, (10.0, 2.5, true));
            }
        }
    }

    #[test]
    fn any_source_reception_needs_no_leader() {
        // HPCCG/CM1-style anonymous receptions: rank 0 receives from everyone
        // with MPI_ANY_SOURCE. Under SDR-MPI each replica decides locally; the
        // run must produce identical data on both replicas with zero control
        // messages (no leader decisions).
        let report = replicated_job(4, ReplicationConfig::dual())
            .network(fast())
            .run(|p| {
                let world = p.world();
                if p.rank() == 0 {
                    let mut total = 0u64;
                    for _ in 0..3 {
                        let (_, data) = p.recv_bytes(world, ANY_SOURCE, 7);
                        total += sim_mpi::datatype::bytes_to_u64s(&data)[0];
                    }
                    total
                } else {
                    p.send_u64s(world, 0, 7, &[p.rank() as u64 * 100]);
                    0
                }
            });
        assert!(report.all_finished());
        assert_eq!(report.primary_results()[0], &600);
        // Every replica of rank 0 got the same total.
        for proc in report.processes.iter().filter(|p| p.app_rank == 0) {
            assert_eq!(proc.outcome.result(), Some(&600));
        }
        assert_eq!(report.stats.control_msgs(), 0, "no leader traffic");
    }

    #[test]
    fn replica_crash_mid_run_application_still_completes() {
        // Figure 3 scenario: two ranks, dual replication, repeated exchange;
        // replica 1 of rank 1 (endpoint 3) crashes after its second send. The
        // application (both replica sets' surviving processes) completes.
        let rounds = 6u64;
        let report = replicated_job(2, ReplicationConfig::dual())
            .network(fast())
            .crash(EndpointId(3), CrashSchedule::AfterSend { nth: 2 })
            .recv_timeout(Duration::from_secs(5))
            .run(move |p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let mut acc = 0u64;
                for round in 0..rounds {
                    if p.rank() == 1 {
                        p.send_u64s(world, peer, 1, &[round]);
                        let (_, v) = p.recv_u64s(world, peer as i64, 2);
                        acc += v[0];
                    } else {
                        let (_, v) = p.recv_u64s(world, peer as i64, 1);
                        acc += v[0];
                        p.send_u64s(world, peer, 2, &[round * 10]);
                    }
                }
                acc
            });
        // Endpoint 3 crashed; everyone else finished.
        assert_eq!(report.crashed(), vec![EndpointId(3)]);
        let finished: Vec<_> = report
            .processes
            .iter()
            .filter(|p| p.outcome.is_finished())
            .map(|p| p.endpoint)
            .collect();
        assert_eq!(finished, vec![EndpointId(0), EndpointId(1), EndpointId(2)]);
        // All finished processes computed the correct sums.
        let expect_rank0: u64 = (0..rounds).sum();
        let expect_rank1: u64 = (0..rounds).map(|r| r * 10).sum();
        for proc in &report.processes {
            if let Some(&acc) = proc.outcome.result() {
                if proc.app_rank == 0 {
                    assert_eq!(acc, expect_rank0);
                } else {
                    assert_eq!(acc, expect_rank1);
                }
            }
        }
    }

    #[test]
    fn crash_of_receiver_side_replica_also_tolerated() {
        // Crash a replica of the *receiving* rank (endpoint 2 = rank 0,
        // replica 1) early in the run: the sender replicas stop expecting its
        // acks and the rest completes.
        let report = replicated_job(2, ReplicationConfig::dual())
            .network(fast())
            .crash(EndpointId(2), CrashSchedule::AtTime { at: SimTime::ZERO })
            .recv_timeout(Duration::from_secs(5))
            .run(|p| {
                let world = p.world();
                if p.rank() == 1 {
                    for i in 0..4u64 {
                        p.send_u64s(world, 0, 1, &[i]);
                    }
                    0
                } else {
                    let mut acc = 0;
                    for _ in 0..4 {
                        let (_, v) = p.recv_u64s(world, 1, 1);
                        acc += v[0];
                    }
                    acc
                }
            });
        assert_eq!(report.crashed(), vec![EndpointId(2)]);
        for proc in &report.processes {
            if proc.app_rank == 0 {
                if let Some(&acc) = proc.outcome.result() {
                    assert_eq!(acc, 6);
                }
            } else {
                assert!(proc.outcome.is_finished() || proc.endpoint == EndpointId(2));
            }
        }
    }

    #[test]
    fn degree_three_replication_works() {
        let report = replicated_job(2, ReplicationConfig::with_degree(3))
            .network(fast())
            .run(|p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let (_, data) = p.sendrecv_bytes(
                    world,
                    peer,
                    0,
                    Bytes::from(vec![p.rank() as u8; 8]),
                    peer as i64,
                    0,
                );
                data[0] as usize
            });
        assert!(report.all_finished());
        assert_eq!(report.processes.len(), 6);
        for proc in &report.processes {
            let expect = 1 - proc.app_rank;
            assert_eq!(proc.outcome.result(), Some(&expect));
        }
        // Each received message is acked to the r-1 = 2 other sender replicas.
        assert_eq!(report.stats.ack_msgs(), report.stats.app_msgs() * 2);
    }

    #[test]
    fn partial_replication_matches_native_results() {
        let app = |p: &mut sim_mpi::Process| {
            let world = p.world();
            let sum = p.allreduce_f64(world, ReduceOp::Sum, (p.rank() * 3 + 1) as f64);
            let peer = (p.rank() + 1) % p.size();
            let from = (p.rank() + p.size() - 1) % p.size();
            let (_, v) = p.sendrecv_bytes(
                world,
                peer,
                5,
                Bytes::from(vec![p.rank() as u8; 16]),
                from as i64,
                5,
            );
            sum + v[0] as f64
        };
        let native = native_job(4).network(fast()).run(app);
        let partial = partial_replicated_job(4, &[0, 2], ReplicationConfig::dual())
            .unwrap()
            .network(fast())
            .run(app);
        assert!(native.all_finished() && partial.all_finished());
        assert_eq!(native.primary_results(), partial.primary_results());
        // 4 singleton-or-primary copies + 2 second copies.
        assert_eq!(partial.processes.len(), 6);
    }

    #[test]
    fn partial_replication_survives_replica_crash_of_covered_rank() {
        // Rank 0 is replicated; losing its second copy must be masked. The
        // second copy never physically sends (its only destination is the
        // singleton rank 1, served by replica 0), so the crash is scheduled
        // on the virtual clock rather than on a send index.
        let partial = partial_replicated_job(2, &[0], ReplicationConfig::dual())
            .unwrap()
            .network(fast())
            .crash(
                EndpointId(2),
                CrashSchedule::AtTime {
                    at: SimTime::from_nanos(1),
                },
            )
            .recv_timeout(Duration::from_secs(5))
            .run(|p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let mut acc = 0u64;
                for round in 0..6u64 {
                    if p.rank() == 0 {
                        p.send_u64s(world, peer, 1, &[round * 2]);
                        let (_, v) = p.recv_u64s(world, peer as i64, 2);
                        acc += v[0];
                    } else {
                        let (_, v) = p.recv_u64s(world, peer as i64, 1);
                        acc += v[0];
                        p.send_u64s(world, peer, 2, &[round * 5]);
                    }
                }
                acc
            });
        assert_eq!(partial.crashed(), vec![EndpointId(2)]);
        let expect0: u64 = (0..6).map(|r| r * 5).sum();
        let expect1: u64 = (0..6).map(|r| r * 2).sum();
        for proc in &partial.processes {
            if proc.endpoint == EndpointId(2) {
                continue;
            }
            let expect = if proc.app_rank == 0 { expect0 } else { expect1 };
            assert_eq!(
                proc.outcome.result(),
                Some(&expect),
                "survivor {:?} must finish with the fault-free result",
                proc.endpoint
            );
        }
    }

    #[test]
    fn partial_replication_unreplicated_crash_is_prompt_rank_lost() {
        // Rank 1 is a singleton: its crash must abort the survivors with a
        // typed RankLost instead of hanging until the receive timeout.
        let partial = partial_replicated_job(2, &[0], ReplicationConfig::dual())
            .unwrap()
            .network(fast())
            .crash(EndpointId(1), CrashSchedule::AfterSend { nth: 1 })
            .recv_timeout(Duration::from_secs(5))
            .run(|p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let mut acc = 0u64;
                for round in 0..6u64 {
                    if p.rank() == 1 {
                        p.send_u64s(world, peer, 1, &[round]);
                        let (_, v) = p.recv_u64s(world, peer as i64, 2);
                        acc += v[0];
                    } else {
                        let (_, v) = p.recv_u64s(world, peer as i64, 1);
                        acc += v[0];
                        p.send_u64s(world, peer, 2, &[round]);
                    }
                }
                acc
            });
        assert_eq!(partial.crashed(), vec![EndpointId(1)]);
        let lost: Vec<String> = partial
            .processes
            .iter()
            .filter(|p| p.endpoint != EndpointId(1))
            .filter_map(|p| match &p.outcome {
                sim_mpi::ProcessOutcome::Panicked(msg) => Some(msg.clone()),
                _ => None,
            })
            .collect();
        assert!(
            !lost.is_empty(),
            "survivors must abort with RankLost, not hang"
        );
        for msg in lost {
            assert!(
                msg.contains("rank 1") && msg.contains("lost all"),
                "panic must name the lost singleton rank: {msg}"
            );
        }
    }

    #[test]
    fn degree_one_behaves_like_native() {
        let app = |p: &mut sim_mpi::Process| {
            let world = p.world();
            p.allreduce_f64(world, ReduceOp::Sum, p.rank() as f64)
        };
        let native = native_job(4).network(fast()).run(app);
        let degree1 = replicated_job(4, ReplicationConfig::with_degree(1))
            .network(fast())
            .run(app);
        assert_eq!(native.primary_results(), degree1.primary_results());
        assert_eq!(native.stats.app_msgs(), degree1.stats.app_msgs());
        assert_eq!(degree1.stats.ack_msgs(), 0);
    }

    #[test]
    fn ack_on_app_wait_deadlocks_irecv_send_wait_pattern() {
        // Section 3.3: if acks were only emitted when the application waits on
        // the receive, the Irecv-Send-Wait exchange deadlocks because both
        // sides block in MPI_Send waiting for an ack that will never be sent.
        let cfg = ReplicationConfig::dual().ack_on(AckOn::AppWait);
        let report = replicated_job(2, cfg)
            .network(fast())
            .recv_timeout(Duration::from_millis(300))
            .run(|p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let rreq = p.irecv_bytes(world, peer as i64, 0);
                // Blocking send: cannot complete before the peer's replicas ack.
                p.send_bytes(world, peer, 0, Bytes::from(vec![1u8; 32]));
                let _ = p.wait(world, rreq);
            });
        assert!(
            !report.deadlocked().is_empty(),
            "AppWait acking must deadlock the exchange"
        );

        // The same pattern with the paper's RecvComplete acking finishes.
        let report_ok = replicated_job(2, ReplicationConfig::dual())
            .network(fast())
            .recv_timeout(Duration::from_secs(5))
            .run(|p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let rreq = p.irecv_bytes(world, peer as i64, 0);
                p.send_bytes(world, peer, 0, Bytes::from(vec![1u8; 32]));
                let _ = p.wait(world, rreq);
            });
        assert!(report_ok.all_finished());
    }

    #[test]
    fn lossy_links_masked_end_to_end() {
        // The tentpole smoke: dual replication over a transport that drops,
        // duplicates and delays ~2.5% of app/ack deliveries each. SDR-MPI's
        // retransmission timer plus the PML wire-seq dedup window must mask
        // every fault: all processes finish, every accumulated checksum is
        // bit-correct, and the fabric counters prove faults actually fired.
        let rounds = 8u64;
        let report = replicated_job(2, ReplicationConfig::dual())
            .network(fast())
            .net_faults(NetFaultConfig::lossy_links(), 0x10551_1105)
            .recv_timeout(Duration::from_secs(30))
            .run(move |p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let mut acc = 0u64;
                for round in 0..rounds {
                    if p.rank() == 0 {
                        p.send_u64s(world, peer, 1, &[round * 3 + 1]);
                        let (_, v) = p.recv_u64s(world, peer as i64, 2);
                        acc = acc.wrapping_mul(31).wrapping_add(v[0]);
                    } else {
                        let (_, v) = p.recv_u64s(world, peer as i64, 1);
                        acc = acc.wrapping_mul(31).wrapping_add(v[0]);
                        p.send_u64s(world, peer, 2, &[round * 7 + 2]);
                    }
                }
                acc
            });
        assert!(
            report.all_finished(),
            "lossy transport must be fully masked: {:?}",
            report
                .processes
                .iter()
                .map(|p| (p.endpoint, p.outcome.is_finished()))
                .collect::<Vec<_>>()
        );
        // Both replicas of each rank computed the identical checksum.
        let mut expect0 = 0u64;
        let mut expect1 = 0u64;
        for round in 0..rounds {
            expect1 = expect1.wrapping_mul(31).wrapping_add(round * 3 + 1);
            expect0 = expect0.wrapping_mul(31).wrapping_add(round * 7 + 2);
        }
        for proc in &report.processes {
            let expect = if proc.app_rank == 0 { expect0 } else { expect1 };
            assert_eq!(proc.outcome.result(), Some(&expect));
        }
        // The faults really fired, and masking really worked.
        assert!(report.stats.msgs_dropped() > 0, "no drops sampled");
        assert!(report.stats.retransmits() > 0, "drops imply retransmits");
        assert_eq!(
            report.stats.dups_suppressed(),
            report.stats.msgs_duplicated(),
            "every duplicated frame must be suppressed exactly once"
        );
    }

    #[test]
    fn delayed_acks_masked_end_to_end() {
        // The second preset: 25% of ack deliveries delayed by 200µs — far
        // past the 50µs retransmission base — provoking spurious retransmits
        // that the receive window must absorb without double delivery.
        let report = replicated_job(2, ReplicationConfig::dual())
            .network(fast())
            .net_faults(NetFaultConfig::delayed_acks(), 0xACDC)
            .recv_timeout(Duration::from_secs(30))
            .run(|p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let mut total = 0u64;
                for round in 0..6u64 {
                    let (_, v) = p.sendrecv_bytes(
                        world,
                        peer,
                        1,
                        Bytes::from((round + p.rank() as u64).to_le_bytes().to_vec()),
                        peer as i64,
                        1,
                    );
                    total += u64::from_le_bytes(v[..8].try_into().unwrap());
                }
                total
            });
        assert!(
            report.all_finished(),
            "delayed acks must be fully masked: {:?}",
            report
                .processes
                .iter()
                .map(|p| (p.endpoint, &p.outcome))
                .collect::<Vec<_>>()
        );
        let expect_r0: u64 = (0..6).map(|r| r + 1).sum();
        let expect_r1: u64 = (0..6).sum();
        for proc in &report.processes {
            let expect = if proc.app_rank == 0 {
                expect_r0
            } else {
                expect_r1
            };
            assert_eq!(proc.outcome.result(), Some(&expect));
        }
        assert!(report.stats.msgs_delayed() > 0, "no ack delays sampled");
        assert_eq!(report.stats.msgs_dropped(), 0, "delayed-acks never drops");
        assert_eq!(
            report.stats.dups_suppressed(),
            report.stats.msgs_duplicated()
        );
    }

    #[test]
    fn send_log_stays_bounded_under_sustained_loss() {
        // Ack-driven GC must keep working when acks themselves get dropped:
        // an unacked entry survives only until its retransmission is
        // re-acked, so the log tracks the (drop rate × retransmission
        // latency) window, not total traffic. 384 synchronous rounds at the
        // lossy-links preset; the bound is far below the round count but
        // generously above the handful of entries a ~2.5% drop rate can keep
        // in flight across one 50µs retransmission window.
        let rounds = 384u64;
        let report = replicated_job(2, ReplicationConfig::dual())
            .network(fast())
            .net_faults(NetFaultConfig::lossy_links(), 0xB0B)
            .recv_timeout(Duration::from_secs(30))
            .run(move |p| {
                let world = p.world();
                let peer = 1 - p.rank();
                let mut peak = 0usize;
                for i in 0..rounds {
                    let (_, v) = p.sendrecv_bytes(
                        world,
                        peer,
                        0,
                        Bytes::from(vec![(i % 256) as u8; 64]),
                        peer as i64,
                        0,
                    );
                    assert_eq!(v.len(), 64);
                    let log = p.protocol().send_log_len();
                    peak = peak.max(log);
                    assert!(
                        log <= 32,
                        "send log grew to {log} entries after {i} rounds: \
                         GC broke under loss"
                    );
                }
                peak as u64
            });
        assert!(report.all_finished());
        assert!(
            report.stats.msgs_dropped() > 0 && report.stats.retransmits() > 0,
            "the run must actually have exercised loss: {} dropped, {} retx",
            report.stats.msgs_dropped(),
            report.stats.retransmits()
        );
        assert_eq!(
            report.stats.dups_suppressed(),
            report.stats.msgs_duplicated()
        );
    }

    #[test]
    fn comm_split_under_replication() {
        let report = replicated_job(4, ReplicationConfig::dual())
            .network(fast())
            .run(|p| {
                let world = p.world();
                let color = (p.rank() / 2) as i64;
                let sub = p.comm_split(world, color, 0).unwrap();
                p.allreduce_f64(sub, ReduceOp::Sum, p.rank() as f64)
            });
        assert!(report.all_finished());
        let results = report.primary_results();
        assert_eq!(results, vec![&1.0, &1.0, &5.0, &5.0]);
    }

    #[test]
    fn replication_overhead_is_small_for_compute_bound_app() {
        // The qualitative Table 1 claim: for compute-dominated applications the
        // wall-clock overhead of dual replication is small.
        let app = |p: &mut sim_mpi::Process| {
            let world = p.world();
            for _ in 0..20 {
                p.compute(SimTime::from_micros(200));
                let peer = (p.rank() + 1) % p.size();
                let from = (p.rank() + p.size() - 1) % p.size();
                p.sendrecv_bytes(world, peer, 0, Bytes::from(vec![0u8; 1024]), from as i64, 0);
            }
            p.now().as_micros_f64()
        };
        let native = native_job(4).network(LogGpModel::infiniband_20g()).run(app);
        let replicated = replicated_job(4, ReplicationConfig::dual())
            .network(LogGpModel::infiniband_20g())
            .run(app);
        assert!(native.all_finished() && replicated.all_finished());
        let t_native = native.elapsed.as_secs_f64();
        let t_repl = replicated.elapsed.as_secs_f64();
        let overhead = (t_repl - t_native) / t_native;
        assert!(
            overhead >= -0.01 && overhead < 0.25,
            "overhead {overhead} out of the expected range (native {t_native}s, replicated {t_repl}s)"
        );
    }
}
