//! # sdr-core — SDR-MPI: replication for send-deterministic MPI applications
//!
//! This crate is the Rust reproduction of the core contribution of
//! *Replication for Send-Deterministic MPI HPC Applications*
//! (Lefray, Ropars, Schiper — FTXS workshop at HPDC, 2013): a **parallel
//! replication protocol** implemented *inside* the MPI library, which uses the
//! send-determinism of typical MPI HPC applications to avoid any leader-based
//! agreement on non-deterministic events (`MPI_ANY_SOURCE`, `MPI_Test`,
//! `MPI_Waitany`).
//!
//! * [`protocol::SdrProtocol`] — Algorithm 1: receiver-driven acknowledgements
//!   emitted on the library-level `irecvComplete` event, send completion
//!   gated on collecting the acks of all other replicas of the destination
//!   rank, and the `upon failure` substitution handler.
//! * [`config::ReplicationConfig`] — replication degree and the ack-timing
//!   ablation ([`config::AckOn`]).
//! * [`layout::ReplicaMap`] — pluggable rank → replica-set mapping: the
//!   transparent `MPI_COMM_WORLD` splitting of Figure 6 ([`layout::ReplicaLayout`]),
//!   uniform degree ≥ 3 ([`layout::UniformLayout`]) and partial replication of a
//!   configured rank subset ([`layout::PartialLayout`]).
//! * [`recovery`] — Section 3.4 generalized: fork-election among surviving
//!   replicas plus ack-frontier merge.
//! * [`factory::replicated_job`] — one-call launcher for replicated jobs.
//!
//! ## Quick example
//!
//! ```
//! use sdr_core::{replicated_job, ReplicationConfig};
//! use sim_mpi::ReduceOp;
//! use sim_net::LogGpModel;
//!
//! // 4 MPI ranks, dual replication (8 physical processes), allreduce.
//! let report = replicated_job(4, ReplicationConfig::dual())
//!     .network(LogGpModel::fast_test_model())
//!     .run(|p| p.allreduce_f64(p.world(), ReduceOp::Sum, (p.rank() + 1) as f64));
//! assert!(report.all_finished());
//! assert_eq!(report.primary_results(), vec![&10.0; 4]);
//! ```

pub mod config;
pub mod factory;
pub mod layout;
pub mod protocol;
pub mod recovery;

pub use config::{AckOn, ReplicationConfig};
pub use factory::{
    coverage_job, mapped_job, native_job, partial_replicated_job, replicated_job, SdrFactory,
};
pub use layout::{
    LayoutError, MappingPolicy, PartialLayout, ReplicaLayout, ReplicaMap, UniformLayout,
};
pub use protocol::{SdrCounters, SdrProtocol, SeqTracker};
pub use recovery::{RecoveryCoordinator, RecoveryError, RecoveryEvent, RecoveryOutcome};
