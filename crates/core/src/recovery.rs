//! Recovery of a failed replica (Section 3.4 of the paper).
//!
//! The paper describes — but, like its Open MPI prototype, does not deploy in
//! production runs — a recovery procedure restricted to dual replication:
//!
//! 1. The substitute of the failed replica *forks* a new process from its own
//!    current state (send-determinism guarantees this state is equivalent to
//!    what the failed replica would have reached).
//! 2. The substitute broadcasts a recovery notification to every alive
//!    physical process.
//! 3. Relying on FIFO channels, each process compares the notification's
//!    arrival with the acknowledgements it has received from the substitute:
//!    messages to the recovered rank not yet acknowledged by the substitute
//!    are re-sent directly to the new replica, and acknowledgements toward the
//!    recovered replica resume for messages received after the notification.
//!
//! In this reproduction the *fork* is modelled as a protocol-state snapshot
//! ([`ReplicaStateSnapshot`]) taken from the substitute and installed into a
//! freshly constructed [`SdrProtocol`] bound to the recovered physical
//! identity; the application-level state hand-off is the responsibility of the
//! scenario (our tests and the `recovery_demo` example use explicit
//! application state, mirroring how the paper's `fork()` would copy it). Step
//! 3 is implemented inside `SdrProtocol::handle_event` so that notification
//! handling uses the regular event path.

use crate::layout::ReplicaLayout;
use crate::protocol::{ctl, SdrProtocol, SeqTracker};
use bytes::Bytes;
use sim_mpi::pml::Pml;
use sim_net::stats::class;
use sim_net::EndpointId;

/// The protocol state copied from the substitute when forking a replacement
/// replica ("the fork" of Section 3.4).
#[derive(Debug, Clone)]
pub struct ReplicaStateSnapshot {
    /// Per-destination-rank application-level send sequence numbers.
    pub send_seq: Vec<u64>,
    /// Per-source-rank delivered-sequence trackers (duplicate filter).
    pub recv_seen: Vec<SeqTracker>,
    /// The rank whose state this snapshot represents.
    pub rank: usize,
}

/// Why a recovery could not be set up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// The replica layout's degree is not two. The paper's recovery protocol
    /// (Section 3.4) relies on there being exactly one surviving replica —
    /// the substitute — whose state is the unique fork source and whose
    /// acknowledgements unambiguously partition the messages to re-send; with
    /// three or more replicas the survivors would additionally have to agree
    /// on which of them forks and on a merged ack frontier, a coordination
    /// problem the paper (and this reproduction) leaves open. See
    /// `DESIGN.md` §4.1.
    UnsupportedDegree {
        /// The replication degree that was requested.
        degree: usize,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::UnsupportedDegree { degree } => write!(
                f,
                "recovery is only supported for dual replication (degree 2), \
                 not degree {degree}: with one survivor the fork source and \
                 the ack frontier are unambiguous (paper §3.4)"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What happened during one recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The physical identity that was recovered.
    pub recovered: EndpointId,
    /// Number of alive processes that were notified.
    pub notified: usize,
}

/// Recovery-related events, for logging/inspection by harnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A snapshot was taken from the substitute.
    SnapshotTaken {
        /// Rank of the substitute (and of the recovered process).
        rank: usize,
    },
    /// The notification broadcast was sent.
    NotificationBroadcast {
        /// The recovered physical process.
        recovered: EndpointId,
        /// How many alive processes were notified.
        notified: usize,
    },
}

/// Orchestrates the recovery of one failed replica. The coordinator runs on
/// the substitute (the alive replica of the failed rank).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCoordinator {
    layout: ReplicaLayout,
}

impl RecoveryCoordinator {
    /// A coordinator for the given replica layout. Recovery is only supported
    /// for dual replication, exactly as in the paper; any other degree is a
    /// typed [`RecoveryError::UnsupportedDegree`] so callers can distinguish
    /// "this configuration cannot recover" from programming errors.
    pub fn new(layout: ReplicaLayout) -> Result<Self, RecoveryError> {
        if layout.degree != 2 {
            return Err(RecoveryError::UnsupportedDegree {
                degree: layout.degree,
            });
        }
        Ok(RecoveryCoordinator { layout })
    }

    /// Capture the substitute's protocol state — the "fork" of the paper.
    pub fn fork_snapshot(&self, substitute: &SdrProtocol) -> ReplicaStateSnapshot {
        ReplicaStateSnapshot {
            send_seq: substitute.send_seq.clone(),
            recv_seen: substitute.recv_seen.clone(),
            rank: substitute.my_rank,
        }
    }

    /// Build the protocol instance of the recovered process from a snapshot.
    /// The returned protocol is bound to the recovered physical identity and
    /// resumes sequence numbering where the substitute's state left off.
    pub fn restore(
        &self,
        recovered: EndpointId,
        snapshot: &ReplicaStateSnapshot,
        cfg: crate::config::ReplicationConfig,
    ) -> SdrProtocol {
        let mut proto = SdrProtocol::new(recovered, self.layout.ranks, cfg);
        assert_eq!(
            proto.my_rank, snapshot.rank,
            "snapshot rank must match the recovered process's rank"
        );
        proto.send_seq = snapshot.send_seq.clone();
        proto.recv_seen = snapshot.recv_seen.clone();
        proto
    }

    /// Broadcast the recovery notification from the substitute to every alive
    /// physical process (Section 3.4). Returns how many were notified.
    ///
    /// The substitute must not fail between the fork and this broadcast (the
    /// paper's explicit requirement); the caller is responsible for honouring
    /// that in failure-injection scenarios.
    pub fn broadcast_notification(
        &self,
        pml: &mut Pml,
        substitute: &SdrProtocol,
        recovered: EndpointId,
    ) -> RecoveryOutcome {
        let mut header = [0i64; 8];
        header[0] = ctl::RECOVERY_NOTIFY;
        header[1] = recovered.0 as i64;
        let mut notified = 0;
        for e in 0..self.layout.physical_processes() {
            let target = EndpointId(e);
            if target == pml.endpoint_id() || target == recovered {
                continue;
            }
            if substitute.alive.get(e).copied().unwrap_or(false) {
                pml.send_control(target, class::CONTROL, header, Bytes::new());
                notified += 1;
            }
        }
        // The fabric-level failure service forgets the failure so the
        // recovered identity can act again.
        pml.endpoint().fabric().failure().mark_recovered(recovered);
        RecoveryOutcome {
            recovered,
            notified,
        }
    }

    /// The replica layout.
    pub fn layout(&self) -> ReplicaLayout {
        self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationConfig;
    use crate::protocol::SdrProtocol;
    use sim_mpi::Protocol as _;

    #[test]
    fn snapshot_restores_sequence_state() {
        let layout = ReplicaLayout::new(2, 2);
        let coord = RecoveryCoordinator::new(layout).unwrap();
        let mut substitute = SdrProtocol::new(EndpointId(1), 2, ReplicationConfig::dual());
        // Simulate some protocol history on the substitute.
        substitute.send_seq = vec![5, 9];
        substitute.recv_seen[0].record(0);
        substitute.recv_seen[0].record(1);
        let snap = coord.fork_snapshot(&substitute);
        assert_eq!(snap.rank, 1);
        assert_eq!(snap.send_seq, vec![5, 9]);

        let restored = coord.restore(EndpointId(3), &snap, ReplicationConfig::dual());
        assert_eq!(restored.app_rank(), 1);
        assert_eq!(restored.replica_id(), 1);
        assert_eq!(restored.send_seq, vec![5, 9]);
        assert!(restored.recv_seen[0].seen(1));
        assert!(!restored.recv_seen[0].seen(2));
    }

    #[test]
    fn recovery_requires_dual_replication() {
        for degree in [1usize, 3, 4, 8] {
            let err = RecoveryCoordinator::new(ReplicaLayout::new(2, degree)).unwrap_err();
            assert_eq!(err, RecoveryError::UnsupportedDegree { degree });
            assert!(
                err.to_string().contains(&format!("degree {degree}")),
                "error must name the offending degree: {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn restore_rejects_wrong_rank() {
        let layout = ReplicaLayout::new(2, 2);
        let coord = RecoveryCoordinator::new(layout).unwrap();
        let substitute = SdrProtocol::new(EndpointId(1), 2, ReplicationConfig::dual());
        let snap = coord.fork_snapshot(&substitute);
        // Endpoint 2 is rank 0, but the snapshot is for rank 1.
        coord.restore(EndpointId(2), &snap, ReplicationConfig::dual());
    }

    fn app_rank_of(proto: &SdrProtocol) -> usize {
        use sim_mpi::Protocol as _;
        proto.app_rank()
    }

    #[test]
    fn snapshot_rank_matches_protocol_rank() {
        let layout = ReplicaLayout::new(4, 2);
        let coord = RecoveryCoordinator::new(layout).unwrap();
        for rank in 0..4 {
            let substitute =
                SdrProtocol::new(layout.endpoint(rank, 0), 4, ReplicationConfig::dual());
            let snap = coord.fork_snapshot(&substitute);
            assert_eq!(snap.rank, app_rank_of(&substitute));
        }
    }
}
