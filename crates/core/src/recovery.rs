//! Recovery of a failed replica (Section 3.4 of the paper, generalized).
//!
//! The paper describes — but, like its Open MPI prototype, does not deploy in
//! production runs — a recovery procedure for dual replication:
//!
//! 1. The substitute of the failed replica *forks* a new process from its own
//!    current state (send-determinism guarantees this state is equivalent to
//!    what the failed replica would have reached).
//! 2. The substitute broadcasts a recovery notification to every alive
//!    physical process.
//! 3. Relying on FIFO channels, each process compares the notification's
//!    arrival with the acknowledgements it has received from the substitute:
//!    messages to the recovered rank not yet acknowledged by the substitute
//!    are re-sent directly to the new replica, and acknowledgements toward the
//!    recovered replica resume for messages received after the notification.
//!
//! With a pluggable [`ReplicaMap`] the procedure generalizes past degree 2 in
//! two steps:
//!
//! * **Fork-election** — when more than one replica of the lost rank
//!   survives, the survivors deterministically elect the fork source: the
//!   lowest surviving replica index ([`RecoveryCoordinator::elect_fork_source`]).
//!   Every survivor computes the same winner from the shared liveness view,
//!   so no extra agreement round is needed.
//! * **Ack-frontier merge** — the survivors' cumulative delivery frontiers
//!   are merged (per-source-rank maximum,
//!   [`RecoveryCoordinator::merge_ack_frontiers`]) so the re-earned send log
//!   is the union view: a message any survivor has delivered needs no replay.
//!
//! In this reproduction the *fork* is modelled as a protocol-state snapshot
//! ([`ReplicaStateSnapshot`]) taken from the elected survivor and installed
//! into a freshly constructed [`SdrProtocol`] bound to the recovered physical
//! identity; the application-level state hand-off is the responsibility of the
//! scenario (our tests and the `recovery_demo` example use explicit
//! application state, mirroring how the paper's `fork()` would copy it). Step
//! 3 is implemented inside `SdrProtocol::handle_event` so that notification
//! handling uses the regular event path.
//!
//! A rank that is not replicated at all (a [`crate::PartialLayout`]
//! singleton) has nothing to fork from: its crash is *not* recoverable, and
//! the protocol surfaces a prompt typed [`sim_mpi::MpiError::RankLost`]
//! instead of hanging — [`RecoveryError::UnreplicatedRank`] is the
//! coordinator-side twin of that condition.

use crate::layout::ReplicaMap;
use crate::protocol::{ctl, SdrProtocol, SeqTracker};
use bytes::Bytes;
use sim_mpi::pml::Pml;
use sim_mpi::Rank;
use sim_net::stats::class;
use sim_net::EndpointId;
use std::sync::Arc;

/// The protocol state copied from the elected survivor when forking a
/// replacement replica ("the fork" of Section 3.4).
#[derive(Debug, Clone)]
pub struct ReplicaStateSnapshot {
    /// Per-destination-rank application-level send sequence numbers.
    pub send_seq: Vec<u64>,
    /// Per-source-rank delivered-sequence trackers (duplicate filter).
    pub recv_seen: Vec<SeqTracker>,
    /// The rank whose state this snapshot represents.
    pub rank: usize,
}

/// Why a recovery could not be set up or carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// No rank in the map is replicated: there is never a survivor to fork
    /// from, so a recovery coordinator would be useless. (A *partially*
    /// replicated map is fine — its replicated ranks recover normally.)
    NoReplicatedRanks,
    /// The rank whose replica was lost is a singleton (degree 1): there is no
    /// surviving copy to fork from. The running protocol surfaces this case
    /// as a prompt `MpiError::RankLost` abort.
    UnreplicatedRank {
        /// The unreplicated rank.
        rank: Rank,
    },
    /// Every replica of the rank is dead — the election has no candidates.
    NoSurvivor {
        /// The fully-lost rank.
        rank: Rank,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoReplicatedRanks => write!(
                f,
                "no rank in the replica map is replicated: nothing can ever \
                 be forked, run without a recovery coordinator"
            ),
            RecoveryError::UnreplicatedRank { rank } => write!(
                f,
                "rank {rank} is unreplicated (degree 1): a crash of its only \
                 process is not recoverable"
            ),
            RecoveryError::NoSurvivor { rank } => write!(
                f,
                "every replica of rank {rank} is dead: the fork election has \
                 no surviving candidate"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What happened during one recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The physical identity that was recovered.
    pub recovered: EndpointId,
    /// Number of alive processes that were notified.
    pub notified: usize,
}

/// Recovery-related events, for logging/inspection by harnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A snapshot was taken from the elected survivor.
    SnapshotTaken {
        /// Rank of the fork source (and of the recovered process).
        rank: usize,
    },
    /// The notification broadcast was sent.
    NotificationBroadcast {
        /// The recovered physical process.
        recovered: EndpointId,
        /// How many alive processes were notified.
        notified: usize,
    },
}

/// Orchestrates the recovery of one failed replica. The coordinator runs on
/// the elected fork source (the lowest surviving replica of the failed rank).
#[derive(Debug, Clone)]
pub struct RecoveryCoordinator {
    map: Arc<dyn ReplicaMap>,
}

impl RecoveryCoordinator {
    /// A coordinator for the given replica map. A map without a single
    /// replicated rank is rejected with a typed error — recovery can never
    /// apply to it; genuinely malformed maps are already rejected by the
    /// layout constructors ([`crate::LayoutError`]).
    pub fn new(map: Arc<dyn ReplicaMap>) -> Result<Self, RecoveryError> {
        if (0..map.ranks()).all(|r| !map.is_replicated(r)) {
            return Err(RecoveryError::NoReplicatedRanks);
        }
        Ok(RecoveryCoordinator { map })
    }

    /// Deterministic fork election: among the surviving replicas of `rank`
    /// (per the `alive` view, indexed by endpoint id), the lowest replica
    /// index wins. Every survivor evaluates the same function on the same
    /// liveness view, so the election needs no message exchange.
    pub fn elect_fork_source(&self, rank: Rank, alive: &[bool]) -> Result<usize, RecoveryError> {
        if !self.map.is_replicated(rank) {
            return Err(RecoveryError::UnreplicatedRank { rank });
        }
        (0..self.map.degree_of(rank))
            .find(|&rep| {
                let e = self.map.endpoint(rank, rep);
                alive.get(e.0).copied().unwrap_or(false)
            })
            .ok_or(RecoveryError::NoSurvivor { rank })
    }

    /// Merge the cumulative-ack frontiers of several survivor snapshots:
    /// per source rank, the maximum in-order delivery frontier. A message any
    /// survivor has delivered is covered by the merged view and needs no
    /// replay toward the recovered process.
    pub fn merge_ack_frontiers(snapshots: &[ReplicaStateSnapshot]) -> Vec<u64> {
        let Some(first) = snapshots.first() else {
            return Vec::new();
        };
        let mut merged = vec![0u64; first.recv_seen.len()];
        for snap in snapshots {
            for (slot, tracker) in merged.iter_mut().zip(snap.recv_seen.iter()) {
                *slot = (*slot).max(tracker.next_expected());
            }
        }
        merged
    }

    /// Merge several survivor snapshots of the same rank into the union view
    /// the replacement replica is spawned from: the elected fork source's
    /// state widened by every other survivor's delivery and send frontiers.
    pub fn merge_snapshots(snapshots: &[ReplicaStateSnapshot]) -> ReplicaStateSnapshot {
        assert!(!snapshots.is_empty(), "need at least one survivor snapshot");
        let rank = snapshots[0].rank;
        assert!(
            snapshots.iter().all(|s| s.rank == rank),
            "survivor snapshots must all belong to the lost rank"
        );
        let mut merged = snapshots[0].clone();
        for snap in &snapshots[1..] {
            for (slot, &seq) in merged.send_seq.iter_mut().zip(snap.send_seq.iter()) {
                *slot = (*slot).max(seq);
            }
            for (slot, tracker) in merged.recv_seen.iter_mut().zip(snap.recv_seen.iter()) {
                if tracker.next_expected() > slot.next_expected() {
                    *slot = tracker.clone();
                }
            }
        }
        merged
    }

    /// Capture a survivor's protocol state — the "fork" of the paper.
    pub fn fork_snapshot(&self, substitute: &SdrProtocol) -> ReplicaStateSnapshot {
        ReplicaStateSnapshot {
            send_seq: substitute.send_seq.clone(),
            recv_seen: substitute.recv_seen.clone(),
            rank: substitute.my_rank,
        }
    }

    /// Build the protocol instance of the recovered process from a snapshot.
    /// The returned protocol is bound to the recovered physical identity and
    /// resumes sequence numbering where the fork source's state left off.
    pub fn restore(
        &self,
        recovered: EndpointId,
        snapshot: &ReplicaStateSnapshot,
        cfg: crate::config::ReplicationConfig,
    ) -> SdrProtocol {
        let mut proto = SdrProtocol::new_with_map(recovered, Arc::clone(&self.map), cfg);
        assert_eq!(
            proto.my_rank, snapshot.rank,
            "snapshot rank must match the recovered process's rank"
        );
        proto.send_seq = snapshot.send_seq.clone();
        proto.recv_seen = snapshot.recv_seen.clone();
        proto
    }

    /// Broadcast the recovery notification from the fork source to every
    /// alive physical process (Section 3.4). Returns how many were notified.
    ///
    /// The fork source must not fail between the fork and this broadcast (the
    /// paper's explicit requirement); the caller is responsible for honouring
    /// that in failure-injection scenarios.
    pub fn broadcast_notification(
        &self,
        pml: &mut Pml,
        substitute: &SdrProtocol,
        recovered: EndpointId,
    ) -> RecoveryOutcome {
        let mut header = [0i64; 8];
        header[0] = ctl::RECOVERY_NOTIFY;
        header[1] = recovered.0 as i64;
        let mut notified = 0;
        for e in 0..self.map.physical_processes() {
            let target = EndpointId(e);
            if target == pml.endpoint_id() || target == recovered {
                continue;
            }
            if substitute.alive.get(e).copied().unwrap_or(false) {
                pml.send_control(target, class::CONTROL, header, Bytes::new());
                notified += 1;
            }
        }
        // The fabric-level failure service forgets the failure so the
        // recovered identity can act again.
        pml.endpoint().fabric().failure().mark_recovered(recovered);
        RecoveryOutcome {
            recovered,
            notified,
        }
    }

    /// The replica map.
    pub fn map(&self) -> Arc<dyn ReplicaMap> {
        Arc::clone(&self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationConfig;
    use crate::layout::{MappingPolicy, PartialLayout, ReplicaLayout};
    use crate::protocol::SdrProtocol;
    use sim_mpi::Protocol as _;

    fn dual_map(ranks: usize) -> Arc<dyn ReplicaMap> {
        Arc::new(ReplicaLayout::new(ranks, 2))
    }

    #[test]
    fn snapshot_restores_sequence_state() {
        let coord = RecoveryCoordinator::new(dual_map(2)).unwrap();
        let mut substitute = SdrProtocol::new(EndpointId(1), 2, ReplicationConfig::dual());
        // Simulate some protocol history on the substitute.
        substitute.send_seq = vec![5, 9];
        substitute.recv_seen[0].record(0);
        substitute.recv_seen[0].record(1);
        let snap = coord.fork_snapshot(&substitute);
        assert_eq!(snap.rank, 1);
        assert_eq!(snap.send_seq, vec![5, 9]);

        let restored = coord.restore(EndpointId(3), &snap, ReplicationConfig::dual());
        assert_eq!(restored.app_rank(), 1);
        assert_eq!(restored.replica_id(), 1);
        assert_eq!(restored.send_seq, vec![5, 9]);
        assert!(restored.recv_seen[0].seen(1));
        assert!(!restored.recv_seen[0].seen(2));
    }

    #[test]
    fn unreplicated_maps_cannot_recover() {
        let singleton: Arc<dyn ReplicaMap> = Arc::new(ReplicaLayout::new(3, 1));
        let err = RecoveryCoordinator::new(singleton).unwrap_err();
        assert_eq!(err, RecoveryError::NoReplicatedRanks);
        assert!(err.to_string().contains("no rank"));
    }

    #[test]
    fn degree_three_coordinator_is_supported() {
        for degree in [2usize, 3, 4, 8] {
            let map: Arc<dyn ReplicaMap> = Arc::new(ReplicaLayout::new(2, degree));
            assert!(
                RecoveryCoordinator::new(map).is_ok(),
                "degree {degree} must be recoverable"
            );
        }
    }

    #[test]
    fn fork_election_picks_lowest_survivor() {
        let map: Arc<dyn ReplicaMap> = Arc::new(ReplicaLayout::new(2, 3));
        let coord = RecoveryCoordinator::new(Arc::clone(&map)).unwrap();
        let mut alive = vec![true; map.physical_processes()];
        assert_eq!(coord.elect_fork_source(1, &alive), Ok(0));
        alive[map.endpoint(1, 0).0] = false;
        assert_eq!(coord.elect_fork_source(1, &alive), Ok(1));
        alive[map.endpoint(1, 1).0] = false;
        assert_eq!(coord.elect_fork_source(1, &alive), Ok(2));
        alive[map.endpoint(1, 2).0] = false;
        assert_eq!(
            coord.elect_fork_source(1, &alive),
            Err(RecoveryError::NoSurvivor { rank: 1 })
        );
    }

    #[test]
    fn electing_for_a_singleton_rank_is_a_typed_error() {
        let map: Arc<dyn ReplicaMap> =
            Arc::new(PartialLayout::new(4, &[0, 2], MappingPolicy::Adjacent).unwrap());
        let coord = RecoveryCoordinator::new(Arc::clone(&map)).unwrap();
        let alive = vec![true; map.physical_processes()];
        assert_eq!(
            coord.elect_fork_source(1, &alive),
            Err(RecoveryError::UnreplicatedRank { rank: 1 })
        );
        assert_eq!(coord.elect_fork_source(2, &alive), Ok(0));
    }

    #[test]
    fn frontier_merge_is_per_rank_max() {
        let mut a = ReplicaStateSnapshot {
            send_seq: vec![4, 0],
            recv_seen: vec![SeqTracker::default(), SeqTracker::default()],
            rank: 0,
        };
        for s in 0..3 {
            a.recv_seen[1].record(s);
        }
        let mut b = ReplicaStateSnapshot {
            send_seq: vec![2, 7],
            recv_seen: vec![SeqTracker::default(), SeqTracker::default()],
            rank: 0,
        };
        for s in 0..5 {
            b.recv_seen[0].record(s);
        }
        b.recv_seen[1].record(0);
        let merged = RecoveryCoordinator::merge_ack_frontiers(&[a.clone(), b.clone()]);
        assert_eq!(merged, vec![5, 3]);
        let snap = RecoveryCoordinator::merge_snapshots(&[a, b]);
        assert_eq!(snap.send_seq, vec![4, 7]);
        assert_eq!(snap.recv_seen[0].next_expected(), 5);
        assert_eq!(snap.recv_seen[1].next_expected(), 3);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn restore_rejects_wrong_rank() {
        let coord = RecoveryCoordinator::new(dual_map(2)).unwrap();
        let substitute = SdrProtocol::new(EndpointId(1), 2, ReplicationConfig::dual());
        let snap = coord.fork_snapshot(&substitute);
        // Endpoint 2 is rank 0, but the snapshot is for rank 1.
        coord.restore(EndpointId(2), &snap, ReplicationConfig::dual());
    }

    fn app_rank_of(proto: &SdrProtocol) -> usize {
        use sim_mpi::Protocol as _;
        proto.app_rank()
    }

    #[test]
    fn snapshot_rank_matches_protocol_rank() {
        let layout = ReplicaLayout::new(4, 2);
        let coord = RecoveryCoordinator::new(Arc::new(layout)).unwrap();
        for rank in 0..4 {
            let substitute =
                SdrProtocol::new(layout.endpoint(rank, 0), 4, ReplicationConfig::dual());
            let snap = coord.fork_snapshot(&substitute);
            assert_eq!(snap.rank, app_rank_of(&substitute));
        }
    }
}
