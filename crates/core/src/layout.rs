//! Mapping between logical MPI ranks, replica ids and physical processes.
//!
//! The original layout of the paper (Figure 6) launches `r · n` physical
//! processes: physical process `P` plays logical rank `P mod n` in replica
//! set `P div n`, so replica set 0 occupies endpoints `0..n`, replica set 1
//! occupies `n..2n`, and so on. Combined with
//! [`sim_net::Placement::ReplicaSets`], replica set `k` lands on the `k`-th
//! slice of the cluster's nodes, reproducing the paper's placement ("the
//! first set of 256 replicas run on the first half of the nodes").
//!
//! That fixed product is now one implementation of the pluggable
//! [`ReplicaMap`] trait. Two more are provided:
//!
//! * [`UniformLayout`] — every rank replicated `degree` times (any degree
//!   ≥ 1), with a selectable physical numbering ([`MappingPolicy`]):
//!   ADJACENT keeps replica sets contiguous (the paper's placement), CYCLIC
//!   interleaves replicas rank-major (TeaMPI's `R_FACTOR` numbering).
//! * [`PartialLayout`] — PartRePer-MPI-style partial replication: a chosen
//!   subset of ranks runs at degree 2, the rest are singletons. Most of the
//!   resilience at a fraction of the overhead.
//!
//! The trait also fixes the *routing rule* for mixed per-rank degrees: the
//! replica `k` of rank `i` receives rank `j`'s messages directly from replica
//! `k mod degree(j)` of `j` ([`ReplicaMap::direct_src`]), and sends its own
//! messages directly to every replica `m` of the destination with
//! `m mod degree(i) == k` ([`ReplicaMap::direct_dests`]). For uniform degrees
//! this degenerates to the paper's "replica `k` talks to replica `k`"; at a
//! degree boundary it keeps the two sides consistent (a singleton sender
//! feeds *every* replica of a replicated destination and expects no
//! acknowledgements, a replicated sender to a singleton destination sends one
//! direct copy from replica 0 while the other replicas collect the
//! receiver's acknowledgement).

use sim_mpi::Rank;
use sim_net::EndpointId;

/// How (rank, replica) pairs are numbered onto physical endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingPolicy {
    /// Replica sets are contiguous: all of replica set 0, then replica set 1,
    /// … (the paper's Figure 6 placement). For [`PartialLayout`] this means
    /// all first copies `0..n`, then the second copies of the replicated
    /// ranks.
    Adjacent,
    /// Replicas are interleaved rank-major: rank 0's replicas first, then
    /// rank 1's, … (TeaMPI's numbering).
    Cyclic,
}

impl MappingPolicy {
    /// Canonical lower-case name (for CLI flags and reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            MappingPolicy::Adjacent => "adjacent",
            MappingPolicy::Cyclic => "cyclic",
        }
    }

    /// Parse a policy name as accepted by the harness CLIs.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "adjacent" => Some(MappingPolicy::Adjacent),
            "cyclic" => Some(MappingPolicy::Cyclic),
            _ => None,
        }
    }
}

/// Why a replica map could not be constructed. These are genuine validation
/// errors — a map that *can* be represented is never rejected (any degree
/// ≥ 1 and any non-empty replicated subset are valid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// The map would contain no logical ranks.
    ZeroRanks,
    /// The replication degree is zero (a rank with no process at all).
    ZeroDegree,
    /// A partial map's replicated-rank set is empty — use a plain singleton
    /// (native) job instead of a degenerate partial one.
    EmptyReplicatedSet,
    /// A replicated rank does not exist in the job.
    RankOutOfRange {
        /// The offending rank.
        rank: Rank,
        /// The number of logical ranks in the job.
        ranks: usize,
    },
    /// A rank appears twice in the replicated set.
    DuplicateRank {
        /// The duplicated rank.
        rank: Rank,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::ZeroRanks => write!(f, "replica map needs at least one rank"),
            LayoutError::ZeroDegree => write!(f, "replica map needs degree >= 1"),
            LayoutError::EmptyReplicatedSet => {
                write!(
                    f,
                    "partial replica map needs a non-empty replicated-rank set"
                )
            }
            LayoutError::RankOutOfRange { rank, ranks } => {
                write!(
                    f,
                    "replicated rank {rank} out of range (job has {ranks} ranks)"
                )
            }
            LayoutError::DuplicateRank { rank } => {
                write!(f, "rank {rank} appears twice in the replicated set")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// The pluggable rank/replica ↔ endpoint mapping of a replicated job.
///
/// Implementations must be bijections between the pairs
/// `{(rank, replica) : replica < degree_of(rank)}` and the endpoint range
/// `0..physical_processes()`; [`ReplicaMap::endpoint`] and
/// [`ReplicaMap::locate`] are inverses. All provided methods are derived
/// from `ranks`/`degree_of`/`endpoint`/`locate`.
pub trait ReplicaMap: std::fmt::Debug + Send + Sync {
    /// Number of logical MPI ranks.
    fn ranks(&self) -> usize;

    /// Replication degree of one logical rank (≥ 1).
    fn degree_of(&self, rank: Rank) -> usize;

    /// The physical numbering policy of this map.
    fn policy(&self) -> MappingPolicy;

    /// The physical process playing `rank` in replica slot `replica`.
    fn endpoint(&self, rank: Rank, replica: usize) -> EndpointId;

    /// The (rank, replica) identity of a physical process.
    fn locate(&self, endpoint: EndpointId) -> (Rank, usize);

    /// Total number of physical processes (`Σ degree_of`).
    fn physical_processes(&self) -> usize {
        (0..self.ranks()).map(|r| self.degree_of(r)).sum()
    }

    /// Largest per-rank degree in the map.
    fn max_degree(&self) -> usize {
        (0..self.ranks())
            .map(|r| self.degree_of(r))
            .max()
            .unwrap_or(0)
    }

    /// Does `rank` have a second copy to fall back on?
    fn is_replicated(&self, rank: Rank) -> bool {
        self.degree_of(rank) >= 2
    }

    /// Fraction of ranks with degree ≥ 2 (1.0 for full replication).
    fn coverage(&self) -> f64 {
        let replicated = (0..self.ranks()).filter(|&r| self.is_replicated(r)).count();
        replicated as f64 / self.ranks() as f64
    }

    /// The logical rank of a physical process.
    fn rank_of(&self, endpoint: EndpointId) -> Rank {
        self.locate(endpoint).0
    }

    /// The replica id of a physical process.
    fn replica_of(&self, endpoint: EndpointId) -> usize {
        self.locate(endpoint).1
    }

    /// All physical processes playing `rank`, in replica-id order.
    fn replicas_of_rank(&self, rank: Rank) -> Vec<EndpointId> {
        (0..self.degree_of(rank))
            .map(|rep| self.endpoint(rank, rep))
            .collect()
    }

    /// The replica of `src_rank` that replica `my_replica` (of any rank)
    /// receives application messages from directly.
    fn direct_src(&self, my_replica: usize, src_rank: Rank) -> EndpointId {
        self.endpoint(src_rank, my_replica % self.degree_of(src_rank))
    }

    /// The replicas of `dst_rank` that replica `my_replica` of `my_rank`
    /// sends application messages to directly. Exactly the inverse of
    /// [`ReplicaMap::direct_src`]: destination replica `m` is served by
    /// source replica `m mod degree_of(my_rank)`.
    fn direct_dests(&self, my_rank: Rank, my_replica: usize, dst_rank: Rank) -> Vec<EndpointId> {
        let my_degree = self.degree_of(my_rank);
        (0..self.degree_of(dst_rank))
            .filter(|m| m % my_degree == my_replica)
            .map(|m| self.endpoint(dst_rank, m))
            .collect()
    }
}

/// The paper's fixed `r · n` product layout (ADJACENT numbering). Kept as a
/// plain `Copy` struct because the dual-replication fast path builds one per
/// protocol instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLayout {
    /// Number of logical MPI ranks `n`.
    pub ranks: usize,
    /// Replication degree `r`.
    pub degree: usize,
}

impl ReplicaLayout {
    /// Layout for `ranks` logical ranks replicated `degree` times.
    pub fn new(ranks: usize, degree: usize) -> Self {
        assert!(ranks > 0, "layout needs at least one rank");
        assert!(degree >= 1, "layout needs degree >= 1");
        ReplicaLayout { ranks, degree }
    }

    /// Validating constructor: the same layout, but invalid shapes are typed
    /// errors instead of panics.
    pub fn checked(ranks: usize, degree: usize) -> Result<Self, LayoutError> {
        if ranks == 0 {
            return Err(LayoutError::ZeroRanks);
        }
        if degree == 0 {
            return Err(LayoutError::ZeroDegree);
        }
        Ok(ReplicaLayout { ranks, degree })
    }

    /// Total number of physical processes.
    pub fn physical_processes(&self) -> usize {
        self.ranks * self.degree
    }

    /// The physical process playing `rank` in replica set `replica`.
    pub fn endpoint(&self, rank: Rank, replica: usize) -> EndpointId {
        assert!(rank < self.ranks, "rank {rank} out of range");
        assert!(replica < self.degree, "replica {replica} out of range");
        EndpointId(replica * self.ranks + rank)
    }

    /// The (rank, replica) identity of a physical process.
    pub fn locate(&self, endpoint: EndpointId) -> (Rank, usize) {
        assert!(
            endpoint.0 < self.physical_processes(),
            "endpoint {} out of range",
            endpoint.0
        );
        (endpoint.0 % self.ranks, endpoint.0 / self.ranks)
    }

    /// The logical rank of a physical process.
    pub fn rank_of(&self, endpoint: EndpointId) -> Rank {
        self.locate(endpoint).0
    }

    /// The replica id of a physical process.
    pub fn replica_of(&self, endpoint: EndpointId) -> usize {
        self.locate(endpoint).1
    }

    /// All physical processes playing `rank`, in replica-id order.
    pub fn replicas_of_rank(&self, rank: Rank) -> Vec<EndpointId> {
        (0..self.degree)
            .map(|rep| self.endpoint(rank, rep))
            .collect()
    }

    /// All physical processes in replica set `replica`, in rank order.
    pub fn replica_set(&self, replica: usize) -> Vec<EndpointId> {
        (0..self.ranks).map(|r| self.endpoint(r, replica)).collect()
    }
}

impl ReplicaMap for ReplicaLayout {
    fn ranks(&self) -> usize {
        self.ranks
    }

    fn degree_of(&self, rank: Rank) -> usize {
        assert!(rank < self.ranks, "rank {rank} out of range");
        self.degree
    }

    fn policy(&self) -> MappingPolicy {
        MappingPolicy::Adjacent
    }

    fn endpoint(&self, rank: Rank, replica: usize) -> EndpointId {
        ReplicaLayout::endpoint(self, rank, replica)
    }

    fn locate(&self, endpoint: EndpointId) -> (Rank, usize) {
        ReplicaLayout::locate(self, endpoint)
    }
}

/// Every rank replicated `degree` times, under either numbering policy.
/// ADJACENT with this layout is endpoint-identical to [`ReplicaLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformLayout {
    ranks: usize,
    degree: usize,
    policy: MappingPolicy,
}

impl UniformLayout {
    /// Uniform map for `ranks` logical ranks at `degree`, numbered by
    /// `policy`.
    pub fn new(ranks: usize, degree: usize, policy: MappingPolicy) -> Result<Self, LayoutError> {
        if ranks == 0 {
            return Err(LayoutError::ZeroRanks);
        }
        if degree == 0 {
            return Err(LayoutError::ZeroDegree);
        }
        Ok(UniformLayout {
            ranks,
            degree,
            policy,
        })
    }

    /// The uniform degree of the map.
    pub fn degree(&self) -> usize {
        self.degree
    }
}

impl ReplicaMap for UniformLayout {
    fn ranks(&self) -> usize {
        self.ranks
    }

    fn degree_of(&self, rank: Rank) -> usize {
        assert!(rank < self.ranks, "rank {rank} out of range");
        self.degree
    }

    fn policy(&self) -> MappingPolicy {
        self.policy
    }

    fn endpoint(&self, rank: Rank, replica: usize) -> EndpointId {
        assert!(rank < self.ranks, "rank {rank} out of range");
        assert!(replica < self.degree, "replica {replica} out of range");
        match self.policy {
            MappingPolicy::Adjacent => EndpointId(replica * self.ranks + rank),
            MappingPolicy::Cyclic => EndpointId(rank * self.degree + replica),
        }
    }

    fn locate(&self, endpoint: EndpointId) -> (Rank, usize) {
        assert!(
            endpoint.0 < self.ranks * self.degree,
            "endpoint {} out of range",
            endpoint.0
        );
        match self.policy {
            MappingPolicy::Adjacent => (endpoint.0 % self.ranks, endpoint.0 / self.ranks),
            MappingPolicy::Cyclic => (endpoint.0 / self.degree, endpoint.0 % self.degree),
        }
    }
}

/// Partial replication: the ranks in the replicated set run at degree 2,
/// every other rank is a singleton (degree 1). Crashing a singleton rank is
/// not survivable — the protocol surfaces a prompt typed
/// [`sim_mpi::MpiError::RankLost`] — but crashes of replicated ranks are
/// masked exactly as under full dual replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialLayout {
    ranks: usize,
    /// Sorted, duplicate-free replicated ranks.
    replicated: Vec<Rank>,
    policy: MappingPolicy,
    /// CYCLIC numbering: first endpoint of each rank (cumulative degrees).
    offsets: Vec<usize>,
    /// ADJACENT numbering: position of each replicated rank in `replicated`.
    second_index: Vec<Option<usize>>,
}

impl PartialLayout {
    /// Partial map for `ranks` logical ranks with the given subset replicated
    /// at degree 2.
    pub fn new(
        ranks: usize,
        replicated: &[Rank],
        policy: MappingPolicy,
    ) -> Result<Self, LayoutError> {
        if ranks == 0 {
            return Err(LayoutError::ZeroRanks);
        }
        if replicated.is_empty() {
            return Err(LayoutError::EmptyReplicatedSet);
        }
        let mut sorted = replicated.to_vec();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                return Err(LayoutError::DuplicateRank { rank: pair[0] });
            }
        }
        if let Some(&rank) = sorted.iter().find(|&&r| r >= ranks) {
            return Err(LayoutError::RankOutOfRange { rank, ranks });
        }
        let mut second_index = vec![None; ranks];
        for (i, &r) in sorted.iter().enumerate() {
            second_index[r] = Some(i);
        }
        let mut offsets = Vec::with_capacity(ranks);
        let mut next = 0usize;
        for r in 0..ranks {
            offsets.push(next);
            next += if second_index[r].is_some() { 2 } else { 1 };
        }
        Ok(PartialLayout {
            ranks,
            replicated: sorted,
            policy,
            offsets,
            second_index,
        })
    }

    /// Partial map replicating the first `ceil(coverage · ranks)` ranks —
    /// the deterministic subset the overhead-vs-coverage sweep uses. A
    /// coverage of 1.0 replicates every rank (endpoint-identical to dual
    /// [`UniformLayout`] under the same policy).
    pub fn with_coverage(
        ranks: usize,
        coverage: f64,
        policy: MappingPolicy,
    ) -> Result<Self, LayoutError> {
        if ranks == 0 {
            return Err(LayoutError::ZeroRanks);
        }
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage {coverage} must be within [0, 1]"
        );
        let count = ((coverage * ranks as f64).ceil() as usize).min(ranks);
        let subset: Vec<Rank> = (0..count).collect();
        PartialLayout::new(ranks, &subset, policy)
    }

    /// The sorted replicated-rank subset.
    pub fn replicated_ranks(&self) -> &[Rank] {
        &self.replicated
    }
}

impl ReplicaMap for PartialLayout {
    fn ranks(&self) -> usize {
        self.ranks
    }

    fn degree_of(&self, rank: Rank) -> usize {
        assert!(rank < self.ranks, "rank {rank} out of range");
        if self.second_index[rank].is_some() {
            2
        } else {
            1
        }
    }

    fn policy(&self) -> MappingPolicy {
        self.policy
    }

    fn physical_processes(&self) -> usize {
        self.ranks + self.replicated.len()
    }

    fn endpoint(&self, rank: Rank, replica: usize) -> EndpointId {
        assert!(rank < self.ranks, "rank {rank} out of range");
        assert!(
            replica < self.degree_of(rank),
            "replica {replica} out of range"
        );
        match self.policy {
            MappingPolicy::Adjacent => {
                if replica == 0 {
                    EndpointId(rank)
                } else {
                    EndpointId(self.ranks + self.second_index[rank].expect("replicated rank"))
                }
            }
            MappingPolicy::Cyclic => EndpointId(self.offsets[rank] + replica),
        }
    }

    fn locate(&self, endpoint: EndpointId) -> (Rank, usize) {
        assert!(
            endpoint.0 < self.physical_processes(),
            "endpoint {} out of range",
            endpoint.0
        );
        match self.policy {
            MappingPolicy::Adjacent => {
                if endpoint.0 < self.ranks {
                    (endpoint.0, 0)
                } else {
                    (self.replicated[endpoint.0 - self.ranks], 1)
                }
            }
            MappingPolicy::Cyclic => {
                let rank = self.offsets.partition_point(|&o| o <= endpoint.0) - 1;
                (rank, endpoint.0 - self.offsets[rank])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_locate_roundtrip() {
        let l = ReplicaLayout::new(4, 3);
        assert_eq!(l.physical_processes(), 12);
        for rank in 0..4 {
            for rep in 0..3 {
                let e = l.endpoint(rank, rep);
                assert_eq!(l.locate(e), (rank, rep));
                assert_eq!(l.rank_of(e), rank);
                assert_eq!(l.replica_of(e), rep);
            }
        }
    }

    #[test]
    fn replica_sets_are_contiguous() {
        let l = ReplicaLayout::new(3, 2);
        assert_eq!(
            l.replica_set(0),
            vec![EndpointId(0), EndpointId(1), EndpointId(2)]
        );
        assert_eq!(
            l.replica_set(1),
            vec![EndpointId(3), EndpointId(4), EndpointId(5)]
        );
        assert_eq!(l.replicas_of_rank(1), vec![EndpointId(1), EndpointId(4)]);
    }

    #[test]
    fn degree_one_is_identity() {
        let l = ReplicaLayout::new(5, 1);
        for r in 0..5 {
            assert_eq!(l.endpoint(r, 0), EndpointId(r));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        ReplicaLayout::new(2, 2).endpoint(2, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        ReplicaLayout::new(2, 2).locate(EndpointId(4));
    }

    #[test]
    fn uniform_cyclic_interleaves_rank_major() {
        let l = UniformLayout::new(3, 2, MappingPolicy::Cyclic).unwrap();
        assert_eq!(ReplicaMap::endpoint(&l, 0, 0), EndpointId(0));
        assert_eq!(ReplicaMap::endpoint(&l, 0, 1), EndpointId(1));
        assert_eq!(ReplicaMap::endpoint(&l, 1, 0), EndpointId(2));
        assert_eq!(ReplicaMap::endpoint(&l, 2, 1), EndpointId(5));
        for e in 0..6 {
            let (rank, rep) = ReplicaMap::locate(&l, EndpointId(e));
            assert_eq!(ReplicaMap::endpoint(&l, rank, rep), EndpointId(e));
        }
    }

    #[test]
    fn uniform_adjacent_matches_replica_layout() {
        let fixed = ReplicaLayout::new(5, 3);
        let uniform = UniformLayout::new(5, 3, MappingPolicy::Adjacent).unwrap();
        for rank in 0..5 {
            for rep in 0..3 {
                assert_eq!(
                    fixed.endpoint(rank, rep),
                    ReplicaMap::endpoint(&uniform, rank, rep)
                );
            }
        }
    }

    #[test]
    fn partial_adjacent_numbers_first_copies_then_seconds() {
        // 4 ranks, ranks 1 and 3 replicated: endpoints 0..4 are the first
        // copies, 4 and 5 the second copies of ranks 1 and 3.
        let l = PartialLayout::new(4, &[3, 1], MappingPolicy::Adjacent).unwrap();
        assert_eq!(l.physical_processes(), 6);
        assert_eq!(l.replicated_ranks(), &[1, 3]);
        assert_eq!(l.endpoint(2, 0), EndpointId(2));
        assert_eq!(l.endpoint(1, 1), EndpointId(4));
        assert_eq!(l.endpoint(3, 1), EndpointId(5));
        assert_eq!(l.locate(EndpointId(4)), (1, 1));
        assert_eq!(l.degree_of(0), 1);
        assert_eq!(l.degree_of(1), 2);
        assert!((l.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_cyclic_uses_cumulative_offsets() {
        let l = PartialLayout::new(3, &[0, 2], MappingPolicy::Cyclic).unwrap();
        // rank 0 → endpoints 0,1; rank 1 → endpoint 2; rank 2 → endpoints 3,4.
        assert_eq!(l.endpoint(0, 1), EndpointId(1));
        assert_eq!(l.endpoint(1, 0), EndpointId(2));
        assert_eq!(l.endpoint(2, 0), EndpointId(3));
        assert_eq!(l.locate(EndpointId(4)), (2, 1));
        for e in 0..5 {
            let (rank, rep) = l.locate(EndpointId(e));
            assert_eq!(l.endpoint(rank, rep), EndpointId(e));
        }
    }

    #[test]
    fn partial_validation_is_typed() {
        assert_eq!(
            PartialLayout::new(0, &[0], MappingPolicy::Adjacent).unwrap_err(),
            LayoutError::ZeroRanks
        );
        assert_eq!(
            PartialLayout::new(4, &[], MappingPolicy::Adjacent).unwrap_err(),
            LayoutError::EmptyReplicatedSet
        );
        assert_eq!(
            PartialLayout::new(4, &[4], MappingPolicy::Adjacent).unwrap_err(),
            LayoutError::RankOutOfRange { rank: 4, ranks: 4 }
        );
        assert_eq!(
            PartialLayout::new(4, &[1, 1], MappingPolicy::Adjacent).unwrap_err(),
            LayoutError::DuplicateRank { rank: 1 }
        );
        assert_eq!(
            UniformLayout::new(4, 0, MappingPolicy::Adjacent).unwrap_err(),
            LayoutError::ZeroDegree
        );
    }

    #[test]
    fn with_coverage_replicates_rank_prefix() {
        let l = PartialLayout::with_coverage(8, 0.25, MappingPolicy::Adjacent).unwrap();
        assert_eq!(l.replicated_ranks(), &[0, 1]);
        let full = PartialLayout::with_coverage(8, 1.0, MappingPolicy::Adjacent).unwrap();
        assert_eq!(full.physical_processes(), 16);
        assert!((full.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_degree_routing_is_consistent() {
        // Rank 0 replicated, rank 1 a singleton: the singleton sender feeds
        // both replicas of rank 0 directly; a replicated sender to the
        // singleton sends one direct copy from replica 0.
        let l = PartialLayout::new(2, &[0], MappingPolicy::Adjacent).unwrap();
        assert_eq!(
            l.direct_dests(1, 0, 0),
            vec![l.endpoint(0, 0), l.endpoint(0, 1)]
        );
        assert_eq!(l.direct_dests(0, 0, 1), vec![l.endpoint(1, 0)]);
        assert_eq!(l.direct_dests(0, 1, 1), Vec::<EndpointId>::new());
        // Receiver side agrees: each replica of rank 0 receives rank 1's
        // messages from the singleton, and the singleton receives rank 0's
        // from replica 0.
        assert_eq!(l.direct_src(0, 1), l.endpoint(1, 0));
        assert_eq!(l.direct_src(1, 1), l.endpoint(1, 0));
        assert_eq!(l.direct_src(0, 0), l.endpoint(0, 0));
    }
}
