//! Mapping between logical MPI ranks, replica ids and physical processes.
//!
//! The job is launched with `r · n` physical processes (Figure 6 of the
//! paper): physical process `P` plays logical rank `P mod n` in replica set
//! `P div n`, so replica set 0 occupies endpoints `0..n`, replica set 1
//! occupies `n..2n`, and so on. Combined with
//! [`sim_net::Placement::ReplicaSets`], replica set `k` lands on the `k`-th
//! slice of the cluster's nodes, reproducing the paper's placement ("the
//! first set of 256 replicas run on the first half of the nodes").

use sim_mpi::Rank;
use sim_net::EndpointId;

/// The rank/replica ↔ endpoint mapping for a replicated job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLayout {
    /// Number of logical MPI ranks `n`.
    pub ranks: usize,
    /// Replication degree `r`.
    pub degree: usize,
}

impl ReplicaLayout {
    /// Layout for `ranks` logical ranks replicated `degree` times.
    pub fn new(ranks: usize, degree: usize) -> Self {
        assert!(ranks > 0, "layout needs at least one rank");
        assert!(degree >= 1, "layout needs degree >= 1");
        ReplicaLayout { ranks, degree }
    }

    /// Total number of physical processes.
    pub fn physical_processes(&self) -> usize {
        self.ranks * self.degree
    }

    /// The physical process playing `rank` in replica set `replica`.
    pub fn endpoint(&self, rank: Rank, replica: usize) -> EndpointId {
        assert!(rank < self.ranks, "rank {rank} out of range");
        assert!(replica < self.degree, "replica {replica} out of range");
        EndpointId(replica * self.ranks + rank)
    }

    /// The (rank, replica) identity of a physical process.
    pub fn locate(&self, endpoint: EndpointId) -> (Rank, usize) {
        assert!(
            endpoint.0 < self.physical_processes(),
            "endpoint {} out of range",
            endpoint.0
        );
        (endpoint.0 % self.ranks, endpoint.0 / self.ranks)
    }

    /// The logical rank of a physical process.
    pub fn rank_of(&self, endpoint: EndpointId) -> Rank {
        self.locate(endpoint).0
    }

    /// The replica id of a physical process.
    pub fn replica_of(&self, endpoint: EndpointId) -> usize {
        self.locate(endpoint).1
    }

    /// All physical processes playing `rank`, in replica-id order.
    pub fn replicas_of_rank(&self, rank: Rank) -> Vec<EndpointId> {
        (0..self.degree)
            .map(|rep| self.endpoint(rank, rep))
            .collect()
    }

    /// All physical processes in replica set `replica`, in rank order.
    pub fn replica_set(&self, replica: usize) -> Vec<EndpointId> {
        (0..self.ranks).map(|r| self.endpoint(r, replica)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_locate_roundtrip() {
        let l = ReplicaLayout::new(4, 3);
        assert_eq!(l.physical_processes(), 12);
        for rank in 0..4 {
            for rep in 0..3 {
                let e = l.endpoint(rank, rep);
                assert_eq!(l.locate(e), (rank, rep));
                assert_eq!(l.rank_of(e), rank);
                assert_eq!(l.replica_of(e), rep);
            }
        }
    }

    #[test]
    fn replica_sets_are_contiguous() {
        let l = ReplicaLayout::new(3, 2);
        assert_eq!(
            l.replica_set(0),
            vec![EndpointId(0), EndpointId(1), EndpointId(2)]
        );
        assert_eq!(
            l.replica_set(1),
            vec![EndpointId(3), EndpointId(4), EndpointId(5)]
        );
        assert_eq!(l.replicas_of_rank(1), vec![EndpointId(1), EndpointId(4)]);
    }

    #[test]
    fn degree_one_is_identity() {
        let l = ReplicaLayout::new(5, 1);
        for r in 0..5 {
            assert_eq!(l.endpoint(r, 0), EndpointId(r));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        ReplicaLayout::new(2, 2).endpoint(2, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        ReplicaLayout::new(2, 2).locate(EndpointId(4));
    }
}
