//! Criterion micro-bench of SDR-MPI's duplicate-filter (SeqTracker), the hot
//! per-message data structure of the replication layer.
use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::SeqTracker;

fn bench_seq_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("ack_bookkeeping");
    group.bench_function("seq_tracker_in_order_10k", |b| {
        b.iter(|| {
            let mut t = SeqTracker::default();
            for s in 0..10_000u64 {
                t.record(s);
            }
            t
        })
    });
    group.bench_function("seq_tracker_out_of_order_10k", |b| {
        b.iter(|| {
            let mut t = SeqTracker::default();
            // Deliver pairs swapped: 1,0,3,2,...
            for s in (0..10_000u64).step_by(2) {
                t.record(s + 1);
                t.record(s);
            }
            t
        })
    });
    group.finish();
}

criterion_group!(benches, bench_seq_tracker);
criterion_main!(benches);
