//! Criterion micro-bench of SDR-MPI's ack-path bookkeeping: the
//! duplicate-filter (SeqTracker) and the ack-driven garbage collection of the
//! send log, the two hot per-message data structures of the replication layer.
use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::{replicated_job, ReplicationConfig, SeqTracker};
use sim_net::{LogGpModel, NetFaultConfig};

fn bench_seq_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("ack_bookkeeping");
    group.bench_function("seq_tracker_in_order_10k", |b| {
        b.iter(|| {
            let mut t = SeqTracker::default();
            for s in 0..10_000u64 {
                t.record(s);
            }
            t
        })
    });
    group.bench_function("seq_tracker_out_of_order_10k", |b| {
        b.iter(|| {
            let mut t = SeqTracker::default();
            // Deliver pairs swapped: 1,0,3,2,...
            for s in (0..10_000u64).step_by(2) {
                t.record(s + 1);
                t.record(s);
            }
            t
        })
    });
    group.finish();
}

/// The send log must not grow with message count: every entry is reclaimed by
/// the ack-driven GC (or at `MPI_Wait`, whichever is later). Runs a
/// 128-round replicated exchange and asserts `send_log_len()` stays bounded
/// by the number of *outstanding* requests, not total traffic.
fn bench_send_log_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ack_bookkeeping");
    group.bench_function("send_log_bounded_128_rounds_dual", |b| {
        b.iter(|| {
            let rounds = 128u64;
            let report = replicated_job(2, ReplicationConfig::dual())
                .network(LogGpModel::fast_test_model())
                .run(move |p| {
                    let world = p.world();
                    let peer = 1 - p.rank();
                    for i in 0..rounds {
                        let (_, v) = p.sendrecv_bytes(
                            world,
                            peer,
                            0,
                            bytes::Bytes::from(vec![(i % 256) as u8; 256]),
                            peer as i64,
                            0,
                        );
                        assert_eq!(v.len(), 256);
                        let log = p.protocol().send_log_len();
                        assert!(
                            log <= 2,
                            "send log grew to {log} entries after {i} rounds: GC failed"
                        );
                    }
                    p.protocol().send_log_len()
                });
            assert!(report.all_finished());
            for proc in &report.processes {
                let final_log = proc.outcome.result().copied().unwrap();
                assert!(final_log <= 1, "send log not drained: {final_log} entries");
            }
            report.elapsed
        })
    });
    group.finish();
}

/// Same boundedness claim under a lossy transport: dropped acks keep their
/// send-log entries alive until the retransmission path re-earns the ack, so
/// the bound widens to the loss-in-flight window — but must stay independent
/// of the round count.
fn bench_send_log_gc_lossy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ack_bookkeeping");
    group.bench_function("send_log_bounded_128_rounds_dual_lossy", |b| {
        b.iter(|| {
            let rounds = 128u64;
            let report = replicated_job(2, ReplicationConfig::dual())
                .network(LogGpModel::fast_test_model())
                .net_faults(NetFaultConfig::lossy_links(), 0x105)
                .run(move |p| {
                    let world = p.world();
                    let peer = 1 - p.rank();
                    for i in 0..rounds {
                        let (_, v) = p.sendrecv_bytes(
                            world,
                            peer,
                            0,
                            bytes::Bytes::from(vec![(i % 256) as u8; 256]),
                            peer as i64,
                            0,
                        );
                        assert_eq!(v.len(), 256);
                        let log = p.protocol().send_log_len();
                        assert!(
                            log <= 32,
                            "send log grew to {log} entries after {i} lossy rounds: GC failed"
                        );
                    }
                    p.protocol().send_log_len()
                });
            assert!(report.all_finished());
            assert_eq!(
                report.stats.dups_suppressed(),
                report.stats.msgs_duplicated()
            );
            report.elapsed
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_seq_tracker,
    bench_send_log_gc,
    bench_send_log_gc_lossy
);
criterion_main!(benches);
