//! Criterion bench of the NAS-like kernels (small test sizes), native vs
//! SDR-MPI — the micro version of Table 1.
use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::{native_job, replicated_job, ReplicationConfig};
use sim_net::LogGpModel;
use workloads::nas::{run_kernel, NasConfig, NasKernel};

fn run(kernel: NasKernel, replicated: bool) -> f64 {
    let cfg = NasConfig::test_size();
    let app = move |p: &mut sim_mpi::Process| run_kernel(kernel, p, &cfg);
    let report = if replicated {
        replicated_job(4, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .run(app)
    } else {
        native_job(4)
            .network(LogGpModel::fast_test_model())
            .run(app)
    };
    *report.primary_results()[0]
}

fn bench_nas(c: &mut Criterion) {
    let mut group = c.benchmark_group("nas_kernels");
    group.sample_size(10);
    for kernel in [NasKernel::Cg, NasKernel::Mg] {
        group.bench_function(format!("{}_native", kernel.name()), |b| {
            b.iter(|| run(kernel, false))
        });
        group.bench_function(format!("{}_sdr", kernel.name()), |b| {
            b.iter(|| run(kernel, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nas);
criterion_main!(benches);
