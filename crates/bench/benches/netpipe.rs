//! Criterion micro-bench: one NetPipe ping-pong job per iteration, native vs
//! SDR-MPI, for a small and a large message (the endpoints of Figure 7).
use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::{native_job, replicated_job, ReplicationConfig};
use sim_net::LogGpModel;
use workloads::netpipe::measure;

fn bench_netpipe(c: &mut Criterion) {
    let mut group = c.benchmark_group("netpipe");
    group.sample_size(10);
    for &size in &[1usize, 65536] {
        group.bench_function(format!("native/{size}B"), |b| {
            b.iter(|| measure(native_job(2).network(LogGpModel::infiniband_20g()), size, 5))
        });
        group.bench_function(format!("sdr/{size}B"), |b| {
            b.iter(|| {
                measure(
                    replicated_job(2, ReplicationConfig::dual())
                        .network(LogGpModel::infiniband_20g()),
                    size,
                    5,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_netpipe);
criterion_main!(benches);
