//! Criterion bench of collective operations under the native and SDR-MPI
//! configurations (allreduce and alltoall on a small job).
use criterion::{criterion_group, criterion_main, Criterion};
use sdr_core::{native_job, replicated_job, ReplicationConfig};
use sim_mpi::ReduceOp;
use sim_net::LogGpModel;

fn allreduce_job(replicated: bool) -> f64 {
    let app = |p: &mut sim_mpi::Process| {
        let world = p.world();
        let mut acc = 0.0;
        for _ in 0..5 {
            acc = p.allreduce_f64(world, ReduceOp::Sum, (p.rank() + 1) as f64);
        }
        acc
    };
    let report = if replicated {
        replicated_job(8, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .run(app)
    } else {
        native_job(8)
            .network(LogGpModel::fast_test_model())
            .run(app)
    };
    *report.primary_results()[0]
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    group.bench_function("allreduce_8ranks_native", |b| {
        b.iter(|| allreduce_job(false))
    });
    group.bench_function("allreduce_8ranks_sdr", |b| b.iter(|| allreduce_job(true)));
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
