//! Criterion micro-bench of the scheduler's park→wake→run dispatch latency:
//! the direct-handoff path (one permit ping-ponged between two processes — a
//! departing carrier CASes the peer runnable and signals its seat) against
//! the cold path (two permits, so every wake of a parked peer acquires an
//! idle permit through the permit counter, the moral equivalent of the old
//! global-run-queue condvar handshake), and — the PR 7 comparison — the same
//! single-permit handoff executed as a coroutine stack switch instead of a
//! futex wake: both processes live on user-space stacks hosted by one worker
//! thread, so a round trip is two register-save/restore switches with no
//! kernel transition. Each iteration runs a full ping-pong of `ROUNDS` round
//! trips on a fresh scheduler, so the reported time is `2·ROUNDS` dispatches
//! plus the spawn/teardown of the two carriers.
use criterion::{criterion_group, criterion_main, Criterion};
use sim_net::sched::{Park, Scheduler};
use sim_net::{CoroRuntime, EndpointId, NetStats, SimTime};
use std::sync::Arc;

const ROUNDS: usize = 2_000;

/// Lock-step ping-pong: A wakes B then parks; B parks then wakes A. Every
/// park is satisfied by exactly one wake, so the pair completes without a
/// quiescence verdict.
fn pingpong(workers: usize) -> (u64, u64) {
    let s = Arc::new(Scheduler::new(2));
    s.set_workers(workers);
    s.register(EndpointId(0));
    s.register(EndpointId(1));
    let s2 = Arc::clone(&s);
    let a = std::thread::spawn(move || {
        s2.start(EndpointId(0));
        for _ in 0..ROUNDS {
            s2.wake(EndpointId(1));
            assert_eq!(s2.park(EndpointId(0), SimTime::ZERO), Park::Woken);
        }
        s2.finish(EndpointId(0));
    });
    let s3 = Arc::clone(&s);
    let b = std::thread::spawn(move || {
        s3.start(EndpointId(1));
        for _ in 0..ROUNDS {
            assert_eq!(s3.park(EndpointId(1), SimTime::ZERO), Park::Woken);
            s3.wake(EndpointId(0));
        }
        s3.finish(EndpointId(1));
    });
    a.join().unwrap();
    b.join().unwrap();
    (s.peak_running() as u64, s.workers() as u64)
}

/// The same lock-step ping-pong with both processes on coroutine stacks: one
/// worker OS thread hosts the pair, and every dispatch after start-up is a
/// deferred direct handoff consumed as a user-space stack switch.
fn pingpong_coro() -> u64 {
    let s = Arc::new(Scheduler::new(2));
    s.set_workers(1);
    let rt = CoroRuntime::new(2, 128 * 1024, Arc::new(NetStats::new()));
    let s2 = Arc::clone(&s);
    let h0 = rt.spawn(0, move || {
        s2.start(EndpointId(0));
        for _ in 0..ROUNDS {
            s2.wake(EndpointId(1));
            assert_eq!(s2.park(EndpointId(0), SimTime::ZERO), Park::Woken);
        }
        s2.finish(EndpointId(0));
    });
    let s3 = Arc::clone(&s);
    let h1 = rt.spawn(1, move || {
        s3.start(EndpointId(1));
        for _ in 0..ROUNDS {
            assert_eq!(s3.park(EndpointId(1), SimTime::ZERO), Park::Woken);
            s3.wake(EndpointId(0));
        }
        s3.finish(EndpointId(1));
    });
    s.attach_coro(Arc::clone(&rt));
    s.register(EndpointId(0));
    s.register(EndpointId(1));
    rt.activate(1);
    h0.join().unwrap();
    h1.join().unwrap();
    let switches = rt.stats().snapshot().stack_switches();
    rt.shutdown();
    assert_eq!(s.peak_running(), 1);
    switches
}

fn bench_dispatch_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_dispatch");
    group.sample_size(10);
    // One permit: every dispatch after start-up is a direct handoff (the
    // parker pops its peer and passes the permit without touching the permit
    // counter).
    group.bench_function(format!("handoff_pingpong_{ROUNDS}x2"), |b| {
        b.iter(|| {
            let (peak, _) = pingpong(1);
            assert_eq!(peak, 1);
        })
    });
    // Two permits: a parker finds nothing ready (its peer is still running)
    // and releases; the peer's next wake then acquires the idle permit — the
    // cold dispatch path — for every round trip.
    group.bench_function(format!("cold_pingpong_{ROUNDS}x2"), |b| {
        b.iter(|| {
            let (peak, workers) = pingpong(2);
            assert!(peak <= workers);
        })
    });
    // One permit, coroutine carriers: the same dispatch sequence as the
    // handoff case, but each handoff is a user-space stack switch on a single
    // host thread instead of a futex signal to a parked peer thread.
    if sim_net::carrier::coro::supported() {
        group.bench_function(format!("coro_handoff_pingpong_{ROUNDS}x2"), |b| {
            b.iter(|| {
                let switches = pingpong_coro();
                assert!(switches as usize >= 2 * ROUNDS);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_paths);
criterion_main!(benches);
