//! Criterion micro-bench of the PML matching engine: posting receives and
//! matching incoming messages with and without wildcards.
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use sim_mpi::matching::{IncomingMsg, MatchingEngine, PmlReqId, PostedRecv};
use sim_mpi::{CommId, TagSel};
use sim_net::{EndpointId, SimTime};

fn msg(src: usize, tag: i64, seq: u64) -> IncomingMsg {
    IncomingMsg {
        src: EndpointId(src),
        comm: CommId::WORLD,
        tag,
        seq,
        aux: 0,
        payload: Bytes::new(),
        arrival: SimTime::from_nanos(seq),
    }
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_engine");
    group.bench_function("post_then_match_1k_specific", |b| {
        b.iter(|| {
            let mut eng = MatchingEngine::new();
            for i in 0..1_000u64 {
                eng.post_recv(PostedRecv {
                    req: PmlReqId(i),
                    src: Some(EndpointId((i % 8) as usize)),
                    comm: CommId::WORLD,
                    tag: TagSel::Tag((i % 16) as i64),
                });
            }
            for i in 0..1_000u64 {
                eng.incoming(msg((i % 8) as usize, (i % 16) as i64, i));
            }
            eng
        })
    });
    group.bench_function("unexpected_then_post_1k_wildcard", |b| {
        b.iter(|| {
            let mut eng = MatchingEngine::new();
            for i in 0..1_000u64 {
                eng.incoming(msg((i % 8) as usize, 3, i));
            }
            for i in 0..1_000u64 {
                eng.post_recv(PostedRecv {
                    req: PmlReqId(i),
                    src: None,
                    comm: CommId::WORLD,
                    tag: TagSel::Any,
                });
            }
            eng
        })
    });
    // The scaling case the (comm, src, tag) index exists for: with 1k posted
    // receives and arrivals in *reverse* posting order, a linear scan walks
    // nearly the whole queue per message (O(n²) total); the bucket index
    // stays O(1) per message.
    group.bench_function("post_1k_match_reverse_order", |b| {
        b.iter(|| {
            let mut eng = MatchingEngine::new();
            for i in 0..1_000u64 {
                eng.post_recv(PostedRecv {
                    req: PmlReqId(i),
                    src: Some(EndpointId(0)),
                    comm: CommId::WORLD,
                    tag: TagSel::Tag(i as i64),
                });
            }
            for i in (0..1_000u64).rev() {
                let matched = eng.incoming(msg(0, i as i64, i));
                assert!(matched.is_some());
            }
            eng
        })
    });
    // A 512-process gather at the root: one posted receive per source, the
    // messages land in the opposite order. This is the per-collective pattern
    // of the 256-rank Table 1 runs.
    group.bench_function("root_gather_512_distinct_sources", |b| {
        b.iter(|| {
            let mut eng = MatchingEngine::new();
            for i in 0..512u64 {
                eng.post_recv(PostedRecv {
                    req: PmlReqId(i),
                    src: Some(EndpointId(i as usize)),
                    comm: CommId::WORLD,
                    tag: TagSel::Tag(7),
                });
            }
            for i in (0..512u64).rev() {
                let matched = eng.incoming(msg(i as usize, 7, i));
                assert!(matched.is_some());
            }
            eng
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
