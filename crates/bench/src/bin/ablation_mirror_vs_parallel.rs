//! Section 2.4 ablation: mirror protocol (O(q·r²) messages) vs the parallel
//! protocol used by SDR-MPI (O(q·r) messages + acks).
fn main() {
    for degree in [2usize, 3] {
        let row = sdr_bench::mirror_vs_parallel(8, degree, 20);
        println!("replication degree {degree}:");
        println!(
            "  native application messages      : {}",
            row.native_app_msgs
        );
        println!(
            "  parallel protocol (SDR-MPI)      : {} app msgs + {} acks, {:.6} s",
            row.parallel_app_msgs, row.parallel_ack_msgs, row.parallel_secs
        );
        println!(
            "  mirror protocol (MR-MPI style)   : {} app msgs, {:.6} s",
            row.mirror_app_msgs, row.mirror_secs
        );
    }
}
