//! redMPI-style SDC detection ablation: hash traffic overhead and detection of
//! an injected bit flip.
fn main() {
    for inject in [false, true] {
        let row = sdr_bench::redmpi_detection(4, 30, inject);
        println!("corruption injected: {}", row.corrupted);
        println!("  hash messages   : {}", row.hash_msgs);
        println!("  comparisons     : {}", row.comparisons);
        println!("  detections      : {}", row.detections);
        println!(
            "  redMPI elapsed  : {:.6} s   (SDR-MPI same workload: {:.6} s)",
            row.redmpi_secs, row.sdr_secs
        );
    }
}
