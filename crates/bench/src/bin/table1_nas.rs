//! Regenerates Table 1: NAS-like kernels (BT, CG, FT, MG, SP), native vs SDR-MPI.
//!
//! Usage: `table1_nas [--ranks N] [--class s|test|d] [--degree D]
//! [--coverage F] [--workers W] [--carrier-mode thread|coro] [--json PATH]`
//!
//! The paper evaluates at 256 ranks; `--ranks 64|128|256` reproduces that
//! scaling axis (pair large rank counts with `--class s` for a fast run, or
//! `--class d` for the class-D-like compute density — the batched delivery
//! path keeps even `--ranks 256 --class d` CI-feasible). The scheduler
//! multiplexes all simulated processes — 512 of them at `--ranks 256` under
//! dual replication — over a worker pool bounded by the host core count
//! (override with `--workers`; `--workers 1` is the deterministic
//! single-permit replay mode). In the default coroutine mode every process
//! lives on a pooled user-space stack and the whole job runs on the worker
//! threads, which is what carries the harness to `--ranks 4096` (8192
//! processes); `--carrier-mode thread` selects the one-OS-thread-per-process
//! fallback, whose carriers come from the process-global pool so the ten
//! back-to-back jobs of one invocation reuse one thread set.
//! `--json PATH` writes the machine-readable report (wall times plus
//! scheduler wake / outbox flush / dispatch / thread-churn counters) that CI
//! uploads as the `BENCH_table1.json` artifact. `--degree D` replicates every
//! rank at degree D instead of the paper's dual; `--coverage F` (with degree
//! 2) replicates only the first `ceil(F * ranks)` ranks and leaves the rest
//! as crash-fatal singletons — the partial layouts of the pluggable replica
//! map.
fn main() {
    let args = sdr_bench::parse_harness_args(std::env::args().skip(1), 16);
    let rows = sdr_bench::table1_rows_layout(
        args.ranks,
        args.cfg,
        args.degree,
        args.coverage,
        args.tuning,
    );
    print!(
        "{}",
        sdr_bench::format_comparison_table(
            &format!(
                "Table 1: NAS-like kernels (ranks={}, replication degree={}, coverage={})",
                args.ranks, args.degree, args.coverage
            ),
            &rows
        )
    );
    print!("{}", sdr_bench::format_delivery_summary(&rows));
    if let Some(path) = &args.json_path {
        let json = sdr_bench::table_report_json("table1_nas", args.ranks, &args.class_name, &rows);
        std::fs::write(path, json)
            .unwrap_or_else(|e| panic!("cannot write JSON report to {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
