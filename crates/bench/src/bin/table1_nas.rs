//! Regenerates Table 1: NAS-like kernels (BT, CG, FT, MG, SP), native vs SDR-MPI.
use workloads::nas::NasConfig;
fn main() {
    let ranks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let rows = sdr_bench::table1_rows(ranks, NasConfig::class_d_like());
    print!(
        "{}",
        sdr_bench::format_comparison_table(
            &format!("Table 1: NAS-like kernels (ranks={ranks}, replication degree=2)"),
            &rows
        )
    );
}
