//! Regenerates Table 1: NAS-like kernels (BT, CG, FT, MG, SP), native vs SDR-MPI.
//!
//! Usage: `table1_nas [--ranks N] [--class s|test|d] [--workers W]`
//!
//! The paper evaluates at 256 ranks; `--ranks 64|128|256` reproduces that
//! scaling axis (pair large rank counts with `--class s`, the smallest NAS
//! class). The scheduler multiplexes all simulated processes — 512 of them at
//! `--ranks 256` under dual replication — over a worker pool bounded by the
//! host core count (override with `--workers`).
fn main() {
    let (ranks, cfg, tuning) = sdr_bench::parse_harness_args(std::env::args().skip(1), 16);
    let rows = sdr_bench::table1_rows_tuned(ranks, cfg, tuning);
    print!(
        "{}",
        sdr_bench::format_comparison_table(
            &format!("Table 1: NAS-like kernels (ranks={ranks}, replication degree=2)"),
            &rows
        )
    );
}
