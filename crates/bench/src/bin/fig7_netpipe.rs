//! Regenerates Figure 7a/7b: NetPipe latency and throughput, native vs SDR-MPI.
fn main() {
    let rows = sdr_bench::fig7_series(&sdr_bench::fig7_default_sizes(), 30);
    print!("{}", sdr_bench::format_fig7(&rows));
}
