//! Regenerates the Figure 2 comparison: anonymous reception handled by a
//! leader-based protocol vs by SDR-MPI (send-determinism, no leader).
fn main() {
    let row = sdr_bench::fig2_comparison(200);
    println!(
        "Figure 2: anonymous reception request/reply loop ({} rounds)",
        row.rounds
    );
    println!(
        "  leader-based parallel protocol : {:>10.6} s ({} decision messages)",
        row.leader_secs, row.decision_msgs
    );
    println!(
        "  SDR-MPI (send-deterministic)   : {:>10.6} s (0 decision messages)",
        row.sdr_secs
    );
    println!(
        "  improvement from send-determinism: {:.1}%",
        row.improvement_pct
    );
}
