//! Runs the Monte Carlo fault campaign: seeded crash and soft-error
//! injection over the paper's fault model, one seed range per distribution.
//!
//! Usage: `table_faults [--ranks N] [--seeds N] [--base-seed N] [--iters N]
//! [--workers W] [--json PATH]`
//!
//! Each case is fully determined by `(config, seed)`: the plan sampling is
//! pure, so any reported violation can be replayed exactly (and shrunk to a
//! minimal failing plan with `workloads::campaign::shrink_violation`, which
//! replays candidates under the deterministic `--workers 1` scheduler).
//! `--json PATH` writes the machine-readable report that CI uploads as the
//! `BENCH_faults.json` artifact and gates on: 100% survivability for the
//! single-replica-loss distributions, 100% prompt aborts for the correlated
//! pair loss, 100% SDC detection, and 100% masked survival with exact
//! duplicate accounting for the lossy-transport distributions. The
//! pluggable-replica-map rows additionally gate on degree-3 majority-loss
//! survival, degree-3 SDC *correction* (`sdc_corrected == sdc_injected`),
//! and the partial-coverage split (covered ranks survive, unreplicated ranks
//! abort promptly). The report also carries the fixed-rate lossy sweep
//! (survivability and masked-delivery overhead vs drop rate, 1%–10%).
fn main() {
    let args = sdr_bench::parse_faults_args(std::env::args().skip(1));
    let rows = sdr_bench::fault_campaign_rows(
        args.ranks,
        args.seeds,
        args.base_seed,
        args.iterations,
        args.tuning,
    );
    print!(
        "{}",
        sdr_bench::format_faults_table(
            &format!(
                "Fault campaign: {} seeded cases per distribution (ranks={}, \
                 iters={}, seeds {}..{})",
                args.seeds,
                args.ranks,
                args.iterations,
                args.base_seed,
                args.base_seed + args.seeds as u64 - 1
            ),
            &rows
        )
    );
    let sweep_cases = (args.seeds / 5).max(3);
    let sweep = sdr_bench::lossy_rate_sweep(
        args.ranks,
        sweep_cases,
        args.base_seed,
        args.iterations,
        args.tuning,
    );
    print!(
        "{}",
        sdr_bench::format_lossy_sweep_table(
            &format!(
                "Lossy-link sweep: {sweep_cases} cases per fixed drop rate \
                 (dup/delay at half the drop rate, delay 20us)"
            ),
            &sweep
        )
    );
    if let Some(path) = &args.json_path {
        let json = sdr_bench::faults_report_json(
            "table_faults",
            args.ranks,
            args.seeds,
            args.base_seed,
            args.iterations,
            &rows,
            &sweep,
        );
        std::fs::write(path, json)
            .unwrap_or_else(|e| panic!("cannot write JSON report to {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
    let violations: usize = rows
        .iter()
        .map(|r| r.summary.violations.len())
        .chain(sweep.iter().map(|r| r.summary.violations.len()))
        .sum();
    if violations > 0 {
        eprintln!("{violations} expectation violation(s) — see the tables above");
        std::process::exit(1);
    }
}
