//! The overhead-vs-coverage frontier of the pluggable replica maps: one NAS
//! kernel measured native vs replicated at degree 2 for every coverage in
//! `{0.25, 0.5, 0.75, 1.0}`, plus full replication at degree 3.
//!
//! Usage: `layout_sweep [--ranks N] [--class s|test|d] [--workers W]
//! [--carrier-mode thread|coro] [--json PATH]`
//!
//! The sweep quantifies what partial replication buys: a coverage-F run
//! replicates only the first `ceil(F * ranks)` ranks, pays replica traffic
//! and ack round-trips only for those, and leaves the rest as crash-fatal
//! singletons. The binary asserts the frontier's invariants before writing
//! anything — replica traffic must climb strictly along the coverage ladder
//! (message counts are deterministic), virtual-time overhead must climb up
//! to a small scheduling-drift tolerance (reported timings wobble ~0.02%
//! between runs, which at communication-dominated classes exceeds the gap
//! between adjacent coverage points), every layout must reproduce the native
//! result bit-identically, and the coverage-1.0 degree-2 point is the exact
//! historic Table 1 configuration, so it stays comparable with the
//! `BENCH_table1.json` band. `--json PATH` writes the `BENCH_layouts.json`
//! artifact.
fn main() {
    let args = sdr_bench::parse_harness_args(std::env::args().skip(1), 16);
    let kernel = workloads::nas::NasKernel::Cg;
    let points = sdr_bench::layout_sweep_points(args.ranks, args.cfg, kernel, args.tuning);
    print!(
        "{}",
        sdr_bench::format_layout_sweep(
            &format!(
                "Layout sweep: {} overhead vs coverage (ranks={}, class={})",
                kernel.name(),
                args.ranks,
                args.class_name
            ),
            &points
        )
    );
    for p in &points {
        assert!(
            p.row.results_match,
            "degree {} coverage {} diverged from the native result",
            p.degree, p.coverage
        );
    }
    // Message counts are exact; virtual-time overhead carries run-to-run
    // scheduling drift, so tolerate a sub-point dip before calling it a
    // regression.
    const OVERHEAD_DRIFT_TOLERANCE_PCT: f64 = 1.0;
    let ladder: Vec<_> = points.iter().filter(|p| p.degree == 2).collect();
    for w in ladder.windows(2) {
        assert!(
            w[0].row.replicated_app_msgs < w[1].row.replicated_app_msgs,
            "replica traffic must grow with coverage: {:.2} -> {:.2}",
            w[0].coverage,
            w[1].coverage
        );
        assert!(
            w[1].row.overhead_pct >= w[0].row.overhead_pct - OVERHEAD_DRIFT_TOLERANCE_PCT,
            "overhead must grow with coverage: {:.2} ({:.3}%) -> {:.2} ({:.3}%)",
            w[0].coverage,
            w[0].row.overhead_pct,
            w[1].coverage,
            w[1].row.overhead_pct
        );
    }
    if let Some(path) = &args.json_path {
        let json = sdr_bench::layouts_report_json(
            "layout_sweep",
            args.ranks,
            &args.class_name,
            kernel.name(),
            &points,
        );
        std::fs::write(path, json)
            .unwrap_or_else(|e| panic!("cannot write JSON report to {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
