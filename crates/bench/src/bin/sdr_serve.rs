//! `sdr-serve` — the long-running multi-job simulation server.
//!
//! Reads a queue of job specs (one JSON object per line; blank lines and
//! `#`-comments skipped) from `--queue PATH` or stdin, runs up to
//! `--max-jobs` of them concurrently over the shared carrier/stack pools,
//! and streams one JSON report line per job as it completes (stdout, or
//! `--out PATH`). Malformed lines are rejected with a typed error report
//! line — the server loop never panics on input.
//!
//! Usage:
//!   `sdr_serve [--queue PATH] [--max-jobs N] [--out PATH]`
//!   `sdr_serve --self-test N [--max-jobs N] [--seed N]`
//!   `sdr_serve --bench [--jobs N] [--rounds N] [--max-jobs N] [--seed N]
//!    [--json PATH]`
//!
//! `--self-test N` is the CI isolation gate: it builds the standard N-job
//! mixed queue (clean NAS kernels, survivable crashes, guaranteed `RankLost`
//! aborts, lossy links, delayed acks, native baselines, partial layouts —
//! both carrier modes), runs every job solo and then the whole queue
//! concurrently, and exits nonzero if any job's deterministic report
//! diverged from its solo reference (see DESIGN.md §6). `--bench` runs the
//! paired-rounds throughput/latency benchmark and writes the
//! `BENCH_serve.json` artifact via `--json`.

use sdr_bench::serve::{
    format_serve_table, parse_serve_args, serve_bench, serve_report_json, ServeBenchConfig,
    ServeMode,
};
use std::io::{Read, Write};
use workloads::serve::{check_isolation, mixed_queue, parse_queue, serve, ServeConfig};

fn main() {
    let args = parse_serve_args(std::env::args().skip(1));
    let config = ServeConfig {
        max_concurrent: args.max_jobs,
    };
    match args.mode {
        ServeMode::Serve => {
            let text = match &args.queue {
                Some(path) => std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read queue {}: {e}", path.display())),
                None => {
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .expect("cannot read queue from stdin");
                    buf
                }
            };
            let mut out: Box<dyn Write> = match &args.out_path {
                Some(path) => Box::new(
                    std::fs::File::create(path)
                        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display())),
                ),
                None => Box::new(std::io::stdout().lock()),
            };
            let summary = serve(parse_queue(&text), config, |event| {
                writeln!(out, "{}", event.to_json().encode()).expect("report stream");
            });
            out.flush().expect("report stream");
            eprintln!(
                "served {} jobs in {:.3} s ({:.1} jobs/min): \
                 {} aborted, {} failed, {} lines rejected",
                summary.completed,
                summary.host_secs,
                summary.jobs_per_minute,
                summary.aborted,
                summary.failed,
                summary.rejected
            );
        }
        ServeMode::SelfTest => {
            let specs = mixed_queue(args.jobs, args.seed);
            eprintln!(
                "self-test: {} mixed jobs, {} in flight, seed {}",
                specs.len(),
                config.max_concurrent,
                args.seed
            );
            let (violations, summary) = check_isolation(&specs, config);
            for v in &violations {
                eprintln!("ISOLATION VIOLATION in {}:", v.id);
                eprintln!("  solo:       {}", v.solo);
                eprintln!("  concurrent: {}", v.concurrent);
            }
            eprintln!(
                "self-test: {} completed ({} aborted by plan, {} failed), \
                 {} isolation violations",
                summary.completed,
                summary.aborted,
                summary.failed,
                violations.len()
            );
            if !violations.is_empty() || summary.failed > 0 || summary.completed != specs.len() {
                std::process::exit(1);
            }
        }
        ServeMode::Bench => {
            let report = serve_bench(ServeBenchConfig {
                jobs: args.jobs,
                rounds: args.rounds,
                max_concurrent: args.max_jobs,
                seed: args.seed,
            });
            print!(
                "{}",
                format_serve_table(
                    &format!(
                        "Service mode: {} paired rounds over a {}-job mixed queue \
                         (concurrency {} vs 1, seed {})",
                        args.rounds, args.jobs, report.max_concurrent, args.seed
                    ),
                    &report
                )
            );
            assert!(
                report.rounds.iter().all(|r| r.failed == 0),
                "no job may deadlock or fail in the bench queue"
            );
            if let Some(path) = &args.json_path {
                std::fs::write(path, serve_report_json("serve_bench", &report))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                eprintln!("wrote {}", path.display());
            }
        }
    }
}
