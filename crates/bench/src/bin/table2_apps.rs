//! Regenerates Table 2: HPCCG and CM1 (applications with MPI_ANY_SOURCE).
//!
//! Usage: `table2_apps [--ranks N] [--workers W] [--json PATH]` (`--class` is
//! accepted for symmetry with `table1_nas` but ignored: Table 2's applications
//! carry their own problem configuration).
fn main() {
    let args = sdr_bench::parse_harness_args(std::env::args().skip(1), 16);
    let rows = sdr_bench::table2_rows_tuned(args.ranks, args.tuning);
    print!(
        "{}",
        sdr_bench::format_comparison_table(
            &format!(
                "Table 2: HPCCG and CM1 (ranks={}, replication degree=2)",
                args.ranks
            ),
            &rows
        )
    );
    print!("{}", sdr_bench::format_delivery_summary(&rows));
    if let Some(path) = &args.json_path {
        let json = sdr_bench::table_report_json("table2_apps", args.ranks, "-", &rows);
        std::fs::write(path, json)
            .unwrap_or_else(|e| panic!("cannot write JSON report to {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
