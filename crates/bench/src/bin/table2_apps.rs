//! Regenerates Table 2: HPCCG and CM1 (applications with MPI_ANY_SOURCE).
fn main() {
    let ranks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let rows = sdr_bench::table2_rows(ranks);
    print!(
        "{}",
        sdr_bench::format_comparison_table(
            &format!("Table 2: HPCCG and CM1 (ranks={ranks}, replication degree=2)"),
            &rows
        )
    );
}
