//! Regenerates Table 2: HPCCG and CM1 (applications with MPI_ANY_SOURCE).
//!
//! Usage: `table2_apps [--ranks N] [--workers W]` (`--class` is accepted for
//! symmetry with `table1_nas` but ignored: Table 2's applications carry their
//! own problem configuration).
fn main() {
    let (ranks, _cfg, tuning) = sdr_bench::parse_harness_args(std::env::args().skip(1), 16);
    let rows = sdr_bench::table2_rows_tuned(ranks, tuning);
    print!(
        "{}",
        sdr_bench::format_comparison_table(
            &format!("Table 2: HPCCG and CM1 (ranks={ranks}, replication degree=2)"),
            &rows
        )
    );
}
