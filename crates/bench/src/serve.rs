//! Service-mode benchmark: sustained job throughput and tail latency of the
//! `sdr-serve` server under the standard heavy mixed queue.
//!
//! Methodology follows the paired-rounds convention of the other harnesses
//! (see `EXPERIMENTS.md`): each round serves the *same* queue twice,
//! interleaved — once at the configured concurrency (A) and once serially at
//! concurrency 1 (B) — so host noise hits both sides alike. The report takes
//! medians over rounds and carries min/max dispersion; per-job tail latency
//! is the p99 order statistic of the concurrent run's per-job host
//! latencies, again medianed over rounds. `serve_report_json` writes the
//! machine-readable `BENCH_serve.json` artifact CI uploads.

use std::time::Instant;
use workloads::serve::{mixed_queue, serve, JobStatus, ServeConfig, ServeEvent, Submission};

/// Configuration of one service-mode benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Jobs per queue (the mixed queue rotates through six shapes, so 12
    /// covers every shape twice).
    pub jobs: usize,
    /// Paired A/B rounds to run.
    pub rounds: usize,
    /// Concurrency of the A side (the B side is always 1).
    pub max_concurrent: usize,
    /// Base seed of the mixed queue.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            jobs: 12,
            rounds: 5,
            max_concurrent: 4,
            seed: 40,
        }
    }
}

/// One paired round: the same queue served concurrently and serially.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchRound {
    /// Wall-clock seconds of the concurrent (A) pass.
    pub concurrent_secs: f64,
    /// Wall-clock seconds of the serial (B) pass.
    pub serial_secs: f64,
    /// Sustained throughput of the A pass, jobs per minute.
    pub concurrent_jobs_per_minute: f64,
    /// Sustained throughput of the B pass, jobs per minute.
    pub serial_jobs_per_minute: f64,
    /// p99 per-job latency of the A pass, seconds (order statistic over the
    /// queue's per-job host latencies).
    pub p99_latency_s: f64,
    /// Slowest single job of the A pass, seconds.
    pub max_latency_s: f64,
    /// Jobs that ended `aborted` in the A pass (the mixed queue plants
    /// guaranteed `RankLost` aborts, so this is nonzero by design and must
    /// be identical every round).
    pub aborted: usize,
    /// Jobs that ended `deadlocked` or `failed` in the A pass (must be 0).
    pub failed: usize,
}

/// The benchmark report: per-round data plus the medians and dispersion the
/// artifact gates on.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Jobs per queue.
    pub jobs: usize,
    /// Concurrency of the A side.
    pub max_concurrent: usize,
    /// Base seed of the mixed queue.
    pub seed: u64,
    /// The paired rounds, in execution order.
    pub rounds: Vec<ServeBenchRound>,
    /// Median sustained throughput at the configured concurrency.
    pub median_concurrent_jpm: f64,
    /// Dispersion floor of the concurrent throughput.
    pub min_concurrent_jpm: f64,
    /// Dispersion ceiling of the concurrent throughput.
    pub max_concurrent_jpm: f64,
    /// Median sustained throughput of the serial baseline.
    pub median_serial_jpm: f64,
    /// Median over rounds of the per-round p99 job latency, seconds.
    pub median_p99_latency_s: f64,
    /// Concurrent-over-serial throughput ratio of the medians.
    pub speedup: f64,
}

/// Median of an unsorted sample (mean of the two central order statistics
/// for even sizes). Panics on an empty sample.
pub fn median(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "median of an empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The p99 order statistic: element at index `(n - 1) * 99 / 100` of the
/// sorted sample (the max for n <= 100, which keeps small queues honest).
pub fn p99(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "p99 of an empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    sorted[(sorted.len() - 1) * 99 / 100]
}

/// Serve the queue once at the given concurrency; returns (wall seconds,
/// per-job latencies, aborted, failed).
fn one_pass(specs: &[workloads::JobSpec], max_concurrent: usize) -> (f64, Vec<f64>, usize, usize) {
    let submissions: Vec<Submission> = specs.iter().cloned().map(Submission::Spec).collect();
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(specs.len());
    let mut aborted = 0usize;
    let mut failed = 0usize;
    let summary = serve(submissions, ServeConfig { max_concurrent }, |event| {
        if let ServeEvent::Completed(record) = event {
            latencies.push(record.host.latency_s);
            match record.status {
                JobStatus::Aborted => aborted += 1,
                JobStatus::Deadlocked | JobStatus::Failed => failed += 1,
                _ => {}
            }
        }
    });
    assert_eq!(summary.rejected, 0, "the mixed queue is pre-validated");
    assert_eq!(summary.completed, specs.len(), "every job must complete");
    (started.elapsed().as_secs_f64(), latencies, aborted, failed)
}

/// Run the paired-rounds benchmark.
pub fn serve_bench(cfg: ServeBenchConfig) -> ServeBenchReport {
    assert!(cfg.rounds >= 1, "need at least one round");
    let specs = mixed_queue(cfg.jobs, cfg.seed);
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for _ in 0..cfg.rounds {
        // A: configured concurrency.
        let (concurrent_secs, latencies, aborted, failed) =
            one_pass(&specs, cfg.max_concurrent.max(1));
        // B: serial baseline, interleaved so host noise hits both alike.
        let (serial_secs, _, _, _) = one_pass(&specs, 1);
        let max_latency_s = latencies.iter().cloned().fold(0.0f64, f64::max);
        rounds.push(ServeBenchRound {
            concurrent_secs,
            serial_secs,
            concurrent_jobs_per_minute: cfg.jobs as f64 / concurrent_secs * 60.0,
            serial_jobs_per_minute: cfg.jobs as f64 / serial_secs * 60.0,
            p99_latency_s: p99(&latencies),
            max_latency_s,
            aborted,
            failed,
        });
    }
    let concurrent_jpms: Vec<f64> = rounds
        .iter()
        .map(|r| r.concurrent_jobs_per_minute)
        .collect();
    let serial_jpms: Vec<f64> = rounds.iter().map(|r| r.serial_jobs_per_minute).collect();
    let p99s: Vec<f64> = rounds.iter().map(|r| r.p99_latency_s).collect();
    let median_concurrent_jpm = median(&concurrent_jpms);
    let median_serial_jpm = median(&serial_jpms);
    ServeBenchReport {
        jobs: cfg.jobs,
        max_concurrent: cfg.max_concurrent.max(1),
        seed: cfg.seed,
        rounds,
        median_concurrent_jpm,
        min_concurrent_jpm: concurrent_jpms
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min),
        max_concurrent_jpm: concurrent_jpms.iter().cloned().fold(0.0f64, f64::max),
        median_serial_jpm,
        median_p99_latency_s: median(&p99s),
        speedup: median_concurrent_jpm / median_serial_jpm,
    }
}

/// Format the benchmark as a text table.
pub fn format_serve_table(title: &str, report: &ServeBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8} {:>7}\n",
        "round",
        "conc (s)",
        "serial (s)",
        "conc j/min",
        "serial j/min",
        "p99 (s)",
        "aborted",
        "failed"
    ));
    for (i, r) in report.rounds.iter().enumerate() {
        out.push_str(&format!(
            "{:>6} {:>12.3} {:>12.3} {:>12.1} {:>12.1} {:>10.3} {:>8} {:>7}\n",
            i + 1,
            r.concurrent_secs,
            r.serial_secs,
            r.concurrent_jobs_per_minute,
            r.serial_jobs_per_minute,
            r.p99_latency_s,
            r.aborted,
            r.failed
        ));
    }
    out.push_str(&format!(
        "median: {:.1} jobs/min at {} in flight ({:.1}–{:.1} over rounds), \
         {:.1} jobs/min serial, speedup {:.2}x, median p99 job latency {:.3} s\n",
        report.median_concurrent_jpm,
        report.max_concurrent,
        report.min_concurrent_jpm,
        report.max_concurrent_jpm,
        report.median_serial_jpm,
        report.speedup,
        report.median_p99_latency_s
    ));
    out
}

/// Serialise the benchmark as the machine-readable `BENCH_serve.json` report
/// (same hand-rolled-JSON convention as `table_report_json`).
pub fn serve_report_json(benchmark: &str, report: &ServeBenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{benchmark}\",\n"));
    out.push_str(&format!("  \"jobs\": {},\n", report.jobs));
    out.push_str(&format!(
        "  \"max_concurrent\": {},\n",
        report.max_concurrent
    ));
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str("  \"rounds\": [\n");
    for (i, r) in report.rounds.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"concurrent_secs\": {:.6}, \"serial_secs\": {:.6}, \
             \"concurrent_jobs_per_minute\": {:.3}, \
             \"serial_jobs_per_minute\": {:.3}, \"p99_latency_s\": {:.6}, \
             \"max_latency_s\": {:.6}, \"aborted\": {}, \"failed\": {}}}{}\n",
            r.concurrent_secs,
            r.serial_secs,
            r.concurrent_jobs_per_minute,
            r.serial_jobs_per_minute,
            r.p99_latency_s,
            r.max_latency_s,
            r.aborted,
            r.failed,
            if i + 1 == report.rounds.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"totals\": {{\"median_concurrent_jobs_per_minute\": {:.3}, \
         \"min_concurrent_jobs_per_minute\": {:.3}, \
         \"max_concurrent_jobs_per_minute\": {:.3}, \
         \"median_serial_jobs_per_minute\": {:.3}, \
         \"median_p99_latency_s\": {:.6}, \"speedup\": {:.3}}}\n",
        report.median_concurrent_jpm,
        report.min_concurrent_jpm,
        report.max_concurrent_jpm,
        report.median_serial_jpm,
        report.median_p99_latency_s,
        report.speedup
    ));
    out.push_str("}\n");
    out
}

/// Parsed command line of the `sdr_serve` binary (see [`parse_serve_args`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// What the binary should do.
    pub mode: ServeMode,
    /// Queue file for serve mode (stdin when absent).
    pub queue: Option<std::path::PathBuf>,
    /// Jobs in flight at once.
    pub max_jobs: usize,
    /// Mixed-queue base seed (self-test and bench modes).
    pub seed: u64,
    /// Mixed-queue length (self-test and bench modes).
    pub jobs: usize,
    /// Paired rounds (bench mode).
    pub rounds: usize,
    /// Machine-readable report path (bench mode).
    pub json_path: Option<std::path::PathBuf>,
    /// Report-stream path for serve mode (stdout when absent).
    pub out_path: Option<std::path::PathBuf>,
}

/// Which top-level mode `sdr_serve` runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Serve a queue of JSON job specs, streaming one report line per job.
    Serve,
    /// Run the per-job isolation gate over the standard mixed queue.
    SelfTest,
    /// Run the paired-rounds throughput/latency benchmark.
    Bench,
}

/// Shared CLI parsing for the service binary: `--queue PATH` (serve mode
/// input; stdin if omitted), `--max-jobs N` (concurrency, default 4),
/// `--self-test N` (isolation gate over an N-job mixed queue), `--bench`
/// (paired-rounds benchmark), `--jobs N` / `--rounds N` / `--seed N`
/// (bench/self-test queue shape), `--json PATH` (bench report artifact),
/// `--out PATH` (serve-mode report stream).
pub fn parse_serve_args<I: Iterator<Item = String>>(args: I) -> ServeArgs {
    let mut parsed = ServeArgs {
        mode: ServeMode::Serve,
        queue: None,
        max_jobs: 4,
        seed: 40,
        jobs: 12,
        rounds: 5,
        json_path: None,
        out_path: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--queue" => {
                let path = args.next().expect("--queue needs a file path");
                parsed.queue = Some(std::path::PathBuf::from(path));
            }
            "--max-jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-jobs needs a positive integer");
                assert!(n >= 1, "--max-jobs needs a positive integer");
                parsed.max_jobs = n;
            }
            "--self-test" => {
                parsed.mode = ServeMode::SelfTest;
                parsed.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--self-test needs a job count");
                assert!(parsed.jobs >= 1, "--self-test needs a positive job count");
            }
            "--bench" => parsed.mode = ServeMode::Bench,
            "--jobs" => {
                parsed.jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs needs a positive integer");
                assert!(parsed.jobs >= 1, "--jobs needs a positive integer");
            }
            "--rounds" => {
                parsed.rounds = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--rounds needs a positive integer");
                assert!(parsed.rounds >= 1, "--rounds needs a positive integer");
            }
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an unsigned integer");
            }
            "--json" => {
                let path = args.next().expect("--json needs a file path");
                parsed.json_path = Some(std::path::PathBuf::from(path));
            }
            "--out" => {
                let path = args.next().expect("--out needs a file path");
                parsed.out_path = Some(std::path::PathBuf::from(path));
            }
            other => panic!("unrecognised argument {other:?}"),
        }
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_statistics_behave() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        let sample: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        // (12 - 1) * 99 / 100 = 10 -> the 11th order statistic.
        assert_eq!(p99(&sample), 11.0);
        assert_eq!(p99(&[5.0]), 5.0);
    }

    #[test]
    fn serve_args_parse_every_mode() {
        let args = parse_serve_args(
            ["--queue", "q.jsonl", "--max-jobs", "8", "--out", "r.jsonl"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.mode, ServeMode::Serve);
        assert_eq!(args.max_jobs, 8);
        assert!(args.queue.is_some() && args.out_path.is_some());
        let args = parse_serve_args(["--self-test", "6"].iter().map(|s| s.to_string()));
        assert_eq!((args.mode, args.jobs), (ServeMode::SelfTest, 6));
        let args = parse_serve_args(
            [
                "--bench", "--jobs", "9", "--rounds", "3", "--json", "b.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(args.mode, ServeMode::Bench);
        assert_eq!((args.jobs, args.rounds), (9, 3));
        assert!(args.json_path.is_some());
    }

    #[test]
    fn small_bench_round_trip() {
        let report = serve_bench(ServeBenchConfig {
            jobs: 6,
            rounds: 1,
            max_concurrent: 3,
            seed: 40,
        });
        assert_eq!(report.rounds.len(), 1);
        let r = &report.rounds[0];
        assert_eq!(r.failed, 0);
        assert_eq!(r.aborted, 1, "one correlated-pair slot in a 6-job queue");
        assert!(report.median_concurrent_jpm > 0.0);
        assert!(report.median_p99_latency_s > 0.0);
        let json = serve_report_json("serve_bench", &report);
        assert!(json.contains("\"median_concurrent_jobs_per_minute\""));
        assert!(json.contains("\"p99_latency_s\""));
        let text = format_serve_table("Serve bench", &report);
        assert!(text.contains("speedup"));
    }
}
