//! The Monte Carlo fault campaign: seeded fault-injection sweeps over the
//! failure distributions of the paper's fault model (exponential MTBF per
//! rank, correlated node loss taking out both replicas of a pair, crashes
//! landing mid-collective) plus redMPI-style soft-error injection, aggregated
//! into the `BENCH_faults.json` CI artifact.
//!
//! Every case is fully determined by `(config, seed)`; the planning lives in
//! `sim_net::campaign` and the execution/judging in `workloads::campaign`.
//! The CI gate (`faults-smoke`) demands 100% survivability for the
//! single-replica-loss configurations, a 100% prompt-abort rate for the
//! correlated pair loss, and 100% SDC detection.

use workloads::campaign::{run_campaign, summarize, CampaignSummary};
use workloads::runner::RunTuning;

pub use sim_net::campaign::{CampaignConfig, FaultDistribution};

/// One configuration's campaign result.
#[derive(Debug, Clone)]
pub struct FaultConfigRow {
    /// The aggregated campaign outcome.
    pub summary: CampaignSummary,
    /// Workload iterations each case ran.
    pub iterations: u64,
    /// First seed of the configuration's seed range.
    pub base_seed: u64,
}

/// The default campaign configurations: three crash distributions plus the
/// soft-error class, all at dual replication.
pub fn default_fault_configs(ranks: usize, iterations: u64) -> Vec<CampaignConfig> {
    vec![
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::ExponentialMtbf {
                mean_sends: 8,
                horizon_sends: iterations,
                max_crashes: 2,
            },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::MidCollective { max_phase: 8 },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::CorrelatedPairLoss {
                mean_sends: 3,
                horizon_sends: iterations.max(2),
            },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::SoftErrors {
                flips: 2,
                max_send: iterations,
                payload_bits: 8192,
            },
        },
    ]
}

/// Run the full campaign: `seeds` seeded cases per configuration.
pub fn fault_campaign_rows(
    ranks: usize,
    seeds: usize,
    base_seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> Vec<FaultConfigRow> {
    default_fault_configs(ranks, iterations)
        .into_iter()
        .map(|config| {
            let outcomes = run_campaign(config, base_seed, seeds, iterations, tuning);
            FaultConfigRow {
                summary: summarize(config, &outcomes),
                iterations,
                base_seed,
            }
        })
        .collect()
}

/// Format the campaign results as a text table.
pub fn format_faults_table(title: &str, rows: &[FaultConfigRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<16} {:>6} {:>9} {:>7} {:>8} {:>10} {:>10} {:>12}  {}\n",
        "distribution",
        "cases",
        "survive%",
        "abort%",
        "crashes",
        "sdc inj",
        "sdc det",
        "med rec (s)",
        "violations"
    ));
    for row in rows {
        let s = &row.summary;
        out.push_str(&format!(
            "{:<16} {:>6} {:>9.1} {:>7.1} {:>8} {:>10} {:>10} {:>12.6}  {}\n",
            s.config.dist.name(),
            s.cases,
            s.survival_rate() * 100.0,
            s.abort_rate() * 100.0,
            s.crashes_injected,
            s.sdc_injected,
            s.sdc_detected,
            s.recovery_latency.median_s,
            s.violations.len()
        ));
    }
    for row in rows {
        for (seed, detail) in &row.summary.violations {
            out.push_str(&format!(
                "VIOLATION {} seed {}: {}\n",
                row.summary.config.dist.name(),
                seed,
                detail
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialise the campaign as the machine-readable `BENCH_faults.json` report
/// (same hand-rolled-JSON convention as [`crate::table_report_json`]).
pub fn faults_report_json(
    benchmark: &str,
    ranks: usize,
    seeds: usize,
    base_seed: u64,
    iterations: u64,
    rows: &[FaultConfigRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{benchmark}\",\n"));
    out.push_str(&format!("  \"ranks\": {ranks},\n"));
    out.push_str(&format!("  \"degree\": 2,\n"));
    out.push_str(&format!("  \"seeds_per_config\": {seeds},\n"));
    out.push_str(&format!("  \"base_seed\": {base_seed},\n"));
    out.push_str(&format!("  \"iterations\": {iterations},\n"));
    out.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let s = &row.summary;
        let lat = &s.recovery_latency;
        let violations = s
            .violations
            .iter()
            .map(|(seed, detail)| {
                format!(
                    "{{\"seed\": {seed}, \"detail\": \"{}\"}}",
                    json_escape(detail)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"dist\": \"{}\", \"cases\": {}, \"survived\": {}, \"aborted\": {}, \
             \"survival_rate\": {:.4}, \"abort_rate\": {:.4}, \
             \"crashes_injected\": {}, \"sdc_injected\": {}, \"sdc_detected\": {}, \
             \"sdc_detection_rate\": {:.4}, \
             \"recovery_latency\": {{\"samples\": {}, \"min_s\": {:.6}, \"median_s\": {:.6}, \
             \"p90_s\": {:.6}, \"max_s\": {:.6}}}, \
             \"violations\": [{violations}]}}{}\n",
            s.config.dist.name(),
            s.cases,
            s.survived,
            s.aborted,
            s.survival_rate(),
            s.abort_rate(),
            s.crashes_injected,
            s.sdc_injected,
            s.sdc_detected,
            s.sdc_detection_rate(),
            lat.samples,
            lat.min_s,
            lat.median_s,
            lat.p90_s,
            lat.max_s,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Parsed command line of the fault-campaign harness.
#[derive(Debug, Clone)]
pub struct FaultsArgs {
    /// Application rank count.
    pub ranks: usize,
    /// Seeded cases per configuration.
    pub seeds: usize,
    /// First seed.
    pub base_seed: u64,
    /// Workload iterations per case.
    pub iterations: u64,
    /// Execution-layer tuning.
    pub tuning: RunTuning,
    /// Where to write the machine-readable JSON report, if requested.
    pub json_path: Option<std::path::PathBuf>,
}

/// CLI parsing for `table_faults`: `--ranks N`, `--seeds N`, `--base-seed N`,
/// `--iters N`, `--workers N`, `--carrier-mode thread|coro`, `--json PATH`.
pub fn parse_faults_args<I: Iterator<Item = String>>(args: I) -> FaultsArgs {
    let mut parsed = FaultsArgs {
        ranks: 4,
        seeds: 25,
        base_seed: 1,
        iterations: 6,
        tuning: RunTuning::default(),
        json_path: None,
    };
    fn next_usize<I: Iterator<Item = String>>(args: &mut I, name: &str) -> usize {
        args.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{name} needs a positive integer"))
    }
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => parsed.ranks = next_usize(&mut args, "--ranks"),
            "--seeds" => parsed.seeds = next_usize(&mut args, "--seeds"),
            "--base-seed" => parsed.base_seed = next_usize(&mut args, "--base-seed") as u64,
            "--iters" => parsed.iterations = next_usize(&mut args, "--iters") as u64,
            "--workers" => parsed.tuning.workers = Some(next_usize(&mut args, "--workers")),
            "--carrier-mode" => {
                let name = args.next().expect("--carrier-mode needs a mode name");
                parsed.tuning.carrier_mode =
                    Some(sim_net::CarrierMode::parse(&name).unwrap_or_else(|| {
                        panic!("unknown carrier mode {name:?} (use thread or coro)")
                    }));
            }
            "--json" => {
                let path = args.next().expect("--json needs a file path");
                parsed.json_path = Some(std::path::PathBuf::from(path));
            }
            other => panic!("unrecognised argument {other:?}"),
        }
    }
    assert!(parsed.ranks > 0 && parsed.seeds > 0 && parsed.iterations > 0);
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_rows_have_all_configs_and_json_is_shaped() {
        let rows = fault_campaign_rows(2, 2, 5, 4, RunTuning::default());
        assert_eq!(rows.len(), 4);
        let names: Vec<_> = rows.iter().map(|r| r.summary.config.dist.name()).collect();
        assert_eq!(
            names,
            vec!["exp-mtbf", "mid-collective", "correlated-pair", "sdc"]
        );
        for row in &rows {
            assert_eq!(row.summary.cases, 2);
            assert!(
                row.summary.violations.is_empty(),
                "{}: {:?}",
                row.summary.config.dist.name(),
                row.summary.violations
            );
        }
        let text = format_faults_table("Fault campaign", &rows);
        assert!(text.contains("exp-mtbf") && text.contains("sdc"));
        let json = faults_report_json("table_faults", 2, 2, 5, 4, &rows);
        assert!(json.contains("\"dist\": \"correlated-pair\""));
        assert!(json.contains("\"seeds_per_config\": 2"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn faults_args_parse_round_trip() {
        let args = parse_faults_args(
            [
                "--ranks",
                "8",
                "--seeds",
                "50",
                "--iters",
                "10",
                "--workers",
                "2",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(args.ranks, 8);
        assert_eq!(args.seeds, 50);
        assert_eq!(args.iterations, 10);
        assert_eq!(args.tuning.workers, Some(2));
    }
}
