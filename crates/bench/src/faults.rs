//! The Monte Carlo fault campaign: seeded fault-injection sweeps over the
//! failure distributions of the paper's fault model (exponential MTBF per
//! rank, correlated node loss taking out both replicas of a pair, crashes
//! landing mid-collective) plus redMPI-style soft-error injection, aggregated
//! into the `BENCH_faults.json` CI artifact.
//!
//! Every case is fully determined by `(config, seed)`; the planning lives in
//! `sim_net::campaign` and the execution/judging in `workloads::campaign`.
//! The CI gate (`faults-smoke`) demands 100% survivability for the
//! single-replica-loss configurations, a 100% prompt-abort rate for the
//! correlated pair loss, 100% SDC detection, and — for the lossy-transport
//! distributions — 100% masked survival with exact duplicate accounting
//! (`dups_suppressed == msgs_duplicated`) and at least one retransmission.
//! The pluggable-replica-map rows add degree-3 majority loss (fork-election
//! must mask losing all but one replica of a rank), degree-3 soft errors
//! (every flip *corrected* by hash majority, `sdc_corrected ==
//! sdc_injected`), and a partial-coverage crash distribution (covered ranks
//! survive, unreplicated ranks abort promptly with a typed rank-loss).
//!
//! [`lossy_rate_sweep`] adds the survivability/masked-delivery-overhead
//! curve: fixed drop rates from 1% to 10%, each row aggregating seeded cases
//! that rotate through the NAS kernels.

use sim_net::campaign::{FaultPlan, PlannedFault};
use sim_net::NetFaultConfig;
use workloads::campaign::{
    run_campaign, run_lossy_explicit_case, summarize, CampaignSummary, CaseOutcome,
};
use workloads::runner::RunTuning;

pub use sim_net::campaign::{CampaignConfig, FaultDistribution};

/// One configuration's campaign result.
#[derive(Debug, Clone)]
pub struct FaultConfigRow {
    /// The aggregated campaign outcome.
    pub summary: CampaignSummary,
    /// Workload iterations each case ran.
    pub iterations: u64,
    /// First seed of the configuration's seed range.
    pub base_seed: u64,
}

/// The default campaign configurations: three crash distributions, the
/// soft-error class, and the two lossy-transport distributions (frame
/// drop/duplicate/delay up to ~5% per class, and heavy ack-only delays
/// always outlasting the retransmission timer) at dual replication, plus the
/// pluggable-replica-map rows — degree-3 majority loss (fork-election must
/// mask the loss of all but one replica of a rank), degree-3 soft errors
/// (flips must be *corrected* by hash majority, not just detected), and a
/// partial-coverage crash distribution biased toward the unreplicated ranks
/// (covered ranks survive, singletons abort promptly with a typed rank-loss).
pub fn default_fault_configs(ranks: usize, iterations: u64) -> Vec<CampaignConfig> {
    // Replicate the low half of the rank space for the partial row (at least
    // one covered and, for ranks >= 2, at least one singleton rank).
    let replicated_mask = (1u64 << (ranks / 2).max(1)) - 1;
    vec![
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::ExponentialMtbf {
                mean_sends: 8,
                horizon_sends: iterations,
                max_crashes: 2,
            },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::MidCollective { max_phase: 8 },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::CorrelatedPairLoss {
                mean_sends: 3,
                horizon_sends: iterations.max(2),
            },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::SoftErrors {
                flips: 2,
                max_send: iterations,
                payload_bits: 8192,
            },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::LossyLinks {
                max_drop_per_64k: 3277,
                max_dup_per_64k: 3277,
                max_delay_per_64k: 3277,
            },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::DelayedAcks {
                max_delay_per_64k: 32_768,
                max_delay_ns: 400_000,
            },
        },
        CampaignConfig {
            ranks,
            degree: 3,
            dist: FaultDistribution::MajorityLoss {
                mean_sends: 3,
                horizon_sends: iterations.max(2),
            },
        },
        CampaignConfig {
            ranks,
            degree: 3,
            dist: FaultDistribution::SoftErrors {
                flips: 2,
                max_send: iterations,
                payload_bits: 8192,
            },
        },
        CampaignConfig {
            ranks,
            degree: 2,
            dist: FaultDistribution::UnreplicatedBias {
                replicated_mask,
                horizon_sends: iterations.max(2),
            },
        },
    ]
}

/// Fraction of ranks with a second copy under `config` — 1.0 for the uniform
/// distributions, the replicated-mask density for [`UnreplicatedBias`].
///
/// [`UnreplicatedBias`]: FaultDistribution::UnreplicatedBias
pub fn config_coverage(config: &CampaignConfig) -> f64 {
    match config.dist {
        FaultDistribution::UnreplicatedBias {
            replicated_mask, ..
        } => replicated_mask.count_ones() as f64 / config.ranks as f64,
        _ => 1.0,
    }
}

/// The drop rates (per-64k, i.e. 1%, 2.5%, 5%, 10%) of the fixed-rate lossy
/// sweep. Duplicate and delay rates ride along at half the drop rate.
pub const LOSSY_SWEEP_RATES: [u32; 4] = [655, 1638, 3277, 6554];

/// One row of the survivability / masked-delivery-overhead vs fault-rate
/// sweep: seeded cases (rotating through the NAS kernels) at one fixed
/// [`NetFaultConfig`], judged with the same masking oracle as the campaign.
#[derive(Debug, Clone)]
pub struct LossySweepRow {
    /// The fixed fault configuration of the row.
    pub config: NetFaultConfig,
    /// Aggregated case outcomes (cases, survival, net counters, overhead).
    pub summary: CampaignSummary,
}

/// Run the fixed-rate lossy sweep: `cases` seeded cases per rate in
/// [`LOSSY_SWEEP_RATES`]. Unlike the campaign configurations (which sample
/// rates up to a maximum), every case of a row runs the exact same
/// [`NetFaultConfig`] — only the policy seed and the workload rotate — so the
/// row is a true point on the overhead-vs-rate curve.
pub fn lossy_rate_sweep(
    ranks: usize,
    cases: usize,
    base_seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> Vec<LossySweepRow> {
    LOSSY_SWEEP_RATES
        .iter()
        .map(|&rate| {
            let net_config = NetFaultConfig {
                drop_per_64k: rate,
                dup_per_64k: rate / 2,
                delay_per_64k: rate / 2,
                delay_ns: 20_000,
                ack_only: false,
            };
            net_config.validate();
            let campaign_config = CampaignConfig {
                ranks,
                degree: 2,
                dist: FaultDistribution::LossyLinks {
                    max_drop_per_64k: rate,
                    max_dup_per_64k: (rate / 2).max(1),
                    max_delay_per_64k: (rate / 2).max(1),
                },
            };
            let outcomes: Vec<CaseOutcome> = (0..cases as u64)
                .map(|i| {
                    let seed = base_seed + i;
                    let plan = FaultPlan {
                        config: campaign_config,
                        seed,
                        faults: vec![PlannedFault::LossyTransport {
                            config: net_config,
                            policy_seed: seed,
                        }],
                    };
                    run_lossy_explicit_case(campaign_config, seed, iterations, tuning, plan)
                })
                .collect();
            LossySweepRow {
                config: net_config,
                summary: summarize(campaign_config, &outcomes),
            }
        })
        .collect()
}

/// Run the full campaign: `seeds` seeded cases per configuration.
pub fn fault_campaign_rows(
    ranks: usize,
    seeds: usize,
    base_seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> Vec<FaultConfigRow> {
    default_fault_configs(ranks, iterations)
        .into_iter()
        .map(|config| {
            let outcomes = run_campaign(config, base_seed, seeds, iterations, tuning);
            FaultConfigRow {
                summary: summarize(config, &outcomes),
                iterations,
                base_seed,
            }
        })
        .collect()
}

/// Format the campaign results as a text table.
pub fn format_faults_table(title: &str, rows: &[FaultConfigRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<18} {:>4} {:>5} {:>6} {:>9} {:>7} {:>8} {:>10} {:>10} {:>8} {:>12} {:>8} {:>8} {:>9} {:>9}  {}\n",
        "distribution",
        "deg",
        "cov",
        "cases",
        "survive%",
        "abort%",
        "crashes",
        "sdc inj",
        "sdc det",
        "sdc cor",
        "med rec (s)",
        "dropped",
        "retx",
        "dup=sup",
        "med ovh%",
        "violations"
    ));
    for row in rows {
        let s = &row.summary;
        out.push_str(&format!(
            "{:<18} {:>4} {:>5.2} {:>6} {:>9.1} {:>7.1} {:>8} {:>10} {:>10} {:>8} {:>12.6} {:>8} {:>8} {:>9} {:>9.2}  {}\n",
            s.config.dist.name(),
            s.config.degree,
            config_coverage(&s.config),
            s.cases,
            s.survival_rate() * 100.0,
            s.abort_rate() * 100.0,
            s.crashes_injected,
            s.sdc_injected,
            s.sdc_detected,
            s.sdc_corrected,
            s.recovery_latency.median_s,
            s.net.msgs_dropped,
            s.net.retransmits,
            format!(
                "{}/{}",
                s.net.dups_suppressed, s.net.msgs_duplicated
            ),
            s.masked_overhead_median_pct,
            s.violations.len()
        ));
    }
    for row in rows {
        for (seed, detail) in &row.summary.violations {
            out.push_str(&format!(
                "VIOLATION {} seed {}: {}\n",
                row.summary.config.dist.name(),
                seed,
                detail
            ));
        }
    }
    out
}

/// Format the fixed-rate lossy sweep as a text table.
pub fn format_lossy_sweep_table(title: &str, rows: &[LossySweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} {:>6} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}  {}\n",
        "drop/64k",
        "cases",
        "survive%",
        "dropped",
        "retx",
        "delayed",
        "dup=sup",
        "med ovh%",
        "p90 ovh%",
        "violations"
    ));
    for row in rows {
        let s = &row.summary;
        out.push_str(&format!(
            "{:<10} {:>6} {:>9.1} {:>8} {:>8} {:>8} {:>9} {:>9.2} {:>9.2}  {}\n",
            row.config.drop_per_64k,
            s.cases,
            s.survival_rate() * 100.0,
            s.net.msgs_dropped,
            s.net.retransmits,
            s.net.msgs_delayed,
            format!("{}/{}", s.net.dups_suppressed, s.net.msgs_duplicated),
            s.masked_overhead_median_pct,
            s.masked_overhead_p90_pct,
            s.violations.len()
        ));
    }
    for row in rows {
        for (seed, detail) in &row.summary.violations {
            out.push_str(&format!(
                "VIOLATION drop/64k={} seed {}: {}\n",
                row.config.drop_per_64k, seed, detail
            ));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn summary_net_json(s: &CampaignSummary) -> String {
    format!(
        "\"msgs_dropped\": {}, \"msgs_duplicated\": {}, \"msgs_delayed\": {}, \
         \"retransmits\": {}, \"dups_suppressed\": {}, \
         \"masked_overhead_median_pct\": {:.4}, \"masked_overhead_p90_pct\": {:.4}",
        s.net.msgs_dropped,
        s.net.msgs_duplicated,
        s.net.msgs_delayed,
        s.net.retransmits,
        s.net.dups_suppressed,
        s.masked_overhead_median_pct,
        s.masked_overhead_p90_pct
    )
}

/// Serialise the campaign as the machine-readable `BENCH_faults.json` report
/// (same hand-rolled-JSON convention as [`crate::table_report_json`]).
pub fn faults_report_json(
    benchmark: &str,
    ranks: usize,
    seeds: usize,
    base_seed: u64,
    iterations: u64,
    rows: &[FaultConfigRow],
    sweep: &[LossySweepRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{benchmark}\",\n"));
    out.push_str(&format!("  \"ranks\": {ranks},\n"));
    out.push_str(&format!("  \"seeds_per_config\": {seeds},\n"));
    out.push_str(&format!("  \"base_seed\": {base_seed},\n"));
    out.push_str(&format!("  \"iterations\": {iterations},\n"));
    out.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let s = &row.summary;
        let lat = &s.recovery_latency;
        let violations = s
            .violations
            .iter()
            .map(|(seed, detail)| {
                format!(
                    "{{\"seed\": {seed}, \"detail\": \"{}\"}}",
                    json_escape(detail)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"dist\": \"{}\", \"degree\": {}, \"coverage\": {:.4}, \
             \"cases\": {}, \"survived\": {}, \"aborted\": {}, \
             \"survival_rate\": {:.4}, \"abort_rate\": {:.4}, \
             \"crashes_injected\": {}, \"sdc_injected\": {}, \"sdc_detected\": {}, \
             \"sdc_corrected\": {}, \
             \"sdc_detection_rate\": {:.4}, \"sdc_correction_rate\": {:.4}, \
             \"recovery_latency\": {{\"samples\": {}, \"min_s\": {:.6}, \"median_s\": {:.6}, \
             \"p90_s\": {:.6}, \"max_s\": {:.6}}}, \
             {}, \
             \"violations\": [{violations}]}}{}\n",
            s.config.dist.name(),
            s.config.degree,
            config_coverage(&s.config),
            s.cases,
            s.survived,
            s.aborted,
            s.survival_rate(),
            s.abort_rate(),
            s.crashes_injected,
            s.sdc_injected,
            s.sdc_detected,
            s.sdc_corrected,
            s.sdc_detection_rate(),
            s.sdc_correction_rate(),
            lat.samples,
            lat.min_s,
            lat.median_s,
            lat.p90_s,
            lat.max_s,
            summary_net_json(s),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"lossy_sweep\": [\n");
    for (i, row) in sweep.iter().enumerate() {
        let s = &row.summary;
        let violations = s
            .violations
            .iter()
            .map(|(seed, detail)| {
                format!(
                    "{{\"seed\": {seed}, \"detail\": \"{}\"}}",
                    json_escape(detail)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"drop_per_64k\": {}, \"dup_per_64k\": {}, \"delay_per_64k\": {}, \
             \"delay_ns\": {}, \"cases\": {}, \"survived\": {}, \"survival_rate\": {:.4}, \
             {}, \
             \"violations\": [{violations}]}}{}\n",
            row.config.drop_per_64k,
            row.config.dup_per_64k,
            row.config.delay_per_64k,
            row.config.delay_ns,
            s.cases,
            s.survived,
            s.survival_rate(),
            summary_net_json(s),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Parsed command line of the fault-campaign harness.
#[derive(Debug, Clone)]
pub struct FaultsArgs {
    /// Application rank count.
    pub ranks: usize,
    /// Seeded cases per configuration.
    pub seeds: usize,
    /// First seed.
    pub base_seed: u64,
    /// Workload iterations per case.
    pub iterations: u64,
    /// Execution-layer tuning.
    pub tuning: RunTuning,
    /// Where to write the machine-readable JSON report, if requested.
    pub json_path: Option<std::path::PathBuf>,
}

/// CLI parsing for `table_faults`: `--ranks N`, `--seeds N`, `--base-seed N`,
/// `--iters N`, `--workers N`, `--carrier-mode thread|coro`, `--json PATH`.
pub fn parse_faults_args<I: Iterator<Item = String>>(args: I) -> FaultsArgs {
    let mut parsed = FaultsArgs {
        ranks: 4,
        seeds: 25,
        base_seed: 1,
        iterations: 6,
        tuning: RunTuning::default(),
        json_path: None,
    };
    fn next_usize<I: Iterator<Item = String>>(args: &mut I, name: &str) -> usize {
        args.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{name} needs a positive integer"))
    }
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => parsed.ranks = next_usize(&mut args, "--ranks"),
            "--seeds" => parsed.seeds = next_usize(&mut args, "--seeds"),
            "--base-seed" => parsed.base_seed = next_usize(&mut args, "--base-seed") as u64,
            "--iters" => parsed.iterations = next_usize(&mut args, "--iters") as u64,
            "--workers" => parsed.tuning.workers = Some(next_usize(&mut args, "--workers")),
            "--carrier-mode" => {
                let name = args.next().expect("--carrier-mode needs a mode name");
                parsed.tuning.carrier_mode =
                    Some(sim_net::CarrierMode::parse(&name).unwrap_or_else(|| {
                        panic!("unknown carrier mode {name:?} (use thread or coro)")
                    }));
            }
            "--json" => {
                let path = args.next().expect("--json needs a file path");
                parsed.json_path = Some(std::path::PathBuf::from(path));
            }
            other => panic!("unrecognised argument {other:?}"),
        }
    }
    assert!(parsed.ranks > 0 && parsed.seeds > 0 && parsed.iterations > 0);
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_rows_have_all_configs_and_json_is_shaped() {
        let rows = fault_campaign_rows(2, 2, 5, 4, RunTuning::default());
        assert_eq!(rows.len(), 9);
        let names: Vec<_> = rows.iter().map(|r| r.summary.config.dist.name()).collect();
        assert_eq!(
            names,
            vec![
                "exp-mtbf",
                "mid-collective",
                "correlated-pair",
                "sdc",
                "lossy-links",
                "delayed-acks",
                "majority-loss",
                "sdc",
                "unreplicated-bias"
            ]
        );
        let degrees: Vec<_> = rows.iter().map(|r| r.summary.config.degree).collect();
        assert_eq!(degrees, vec![2, 2, 2, 2, 2, 2, 3, 3, 2]);
        let partial = rows.last().expect("non-empty");
        assert_eq!(config_coverage(&partial.summary.config), 0.5);
        let degree3_sdc = &rows[7];
        assert_eq!(
            degree3_sdc.summary.sdc_corrected, degree3_sdc.summary.sdc_injected,
            "degree-3 hash majority must outvote every flip"
        );
        assert!(degree3_sdc.summary.sdc_injected > 0);
        for row in &rows {
            assert_eq!(row.summary.cases, 2);
            assert!(
                row.summary.violations.is_empty(),
                "{}: {:?}",
                row.summary.config.dist.name(),
                row.summary.violations
            );
        }
        let sweep = lossy_rate_sweep(2, 2, 5, 4, RunTuning::default());
        assert_eq!(sweep.len(), LOSSY_SWEEP_RATES.len());
        for row in &sweep {
            assert_eq!(
                row.summary.survival_rate(),
                1.0,
                "drop/64k={}: {:?}",
                row.config.drop_per_64k,
                row.summary.violations
            );
            assert_eq!(
                row.summary.net.dups_suppressed,
                row.summary.net.msgs_duplicated
            );
        }
        assert!(
            sweep.last().expect("non-empty").summary.net.msgs_dropped
                > sweep.first().expect("non-empty").summary.net.msgs_dropped,
            "a 10x drop rate must drop more frames than 1%"
        );
        let text = format_faults_table("Fault campaign", &rows);
        assert!(text.contains("exp-mtbf") && text.contains("lossy-links"));
        let sweep_text = format_lossy_sweep_table("Lossy sweep", &sweep);
        assert!(sweep_text.contains("655") && sweep_text.contains("6554"));
        let json = faults_report_json("table_faults", 2, 2, 5, 4, &rows, &sweep);
        assert!(json.contains("\"dist\": \"correlated-pair\""));
        assert!(json.contains("\"dist\": \"delayed-acks\""));
        assert!(json.contains("\"dist\": \"majority-loss\""));
        assert!(json.contains("\"dist\": \"unreplicated-bias\""));
        assert!(json.contains("\"degree\": 3"));
        assert!(json.contains("\"coverage\": 0.5000"));
        assert!(json.contains("\"sdc_corrected\""));
        assert!(json.contains("\"sdc_correction_rate\""));
        assert!(json.contains("\"lossy_sweep\""));
        assert!(json.contains("\"dups_suppressed\""));
        assert!(json.contains("\"seeds_per_config\": 2"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn faults_args_parse_round_trip() {
        let args = parse_faults_args(
            [
                "--ranks",
                "8",
                "--seeds",
                "50",
                "--iters",
                "10",
                "--workers",
                "2",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(args.ranks, 8);
        assert_eq!(args.seeds, 50);
        assert_eq!(args.iterations, 10);
        assert_eq!(args.tuning.workers, Some(2));
    }
}
