//! # sdr-bench — harnesses that regenerate every table and figure of the paper
//!
//! Each public function reproduces one experiment from the evaluation section
//! of *Replication for Send-Deterministic MPI HPC Applications* and returns
//! the corresponding rows/series; the binaries in `src/bin/` print them in the
//! paper's format, and `EXPERIMENTS.md` records the paper-vs-measured
//! comparison.
//!
//! | function | paper artefact |
//! |---|---|
//! | [`fig7_series`] | Figure 7a (latency) and 7b (throughput) vs message size |
//! | [`table1_rows`] | Table 1: NAS BT/CG/FT/MG/SP native vs replicated |
//! | [`table2_rows`] | Table 2: HPCCG and CM1 (with `MPI_ANY_SOURCE`) |
//! | [`fig2_comparison`] | Figure 2: anonymous reception, leader-based vs send-deterministic |
//! | [`mirror_vs_parallel`] | Section 2.4: `O(q·r²)` vs `O(q·r)` message complexity |
//! | [`redmpi_detection`] | Section 2.4 / redMPI: SDC detection traffic and coverage |
//! | [`faults::fault_campaign_rows`] | Monte Carlo fault campaign (`BENCH_faults.json`) |
//! | [`serve::serve_bench`] | Service-mode sustained throughput (`BENCH_serve.json`) |

pub mod faults;
pub mod serve;

pub use serve::{
    format_serve_table, parse_serve_args, serve_bench, serve_report_json, ServeArgs,
    ServeBenchConfig, ServeBenchReport, ServeBenchRound, ServeMode,
};

pub use faults::{
    config_coverage, fault_campaign_rows, faults_report_json, format_faults_table,
    format_lossy_sweep_table, lossy_rate_sweep, parse_faults_args, FaultConfigRow, FaultsArgs,
    LossySweepRow, LOSSY_SWEEP_RATES,
};

use repl_baselines::{CorruptionSpec, LeaderFactory, MirrorFactory, RedMpiFactory, SdcReport};
use sdr_core::{
    native_job, replicated_job, MappingPolicy, PartialLayout, ReplicaMap, ReplicationConfig,
};
use sim_mpi::{JobBuilder, ANY_SOURCE};
use sim_net::{CarrierMode, Cluster, LogGpModel, Placement};
use std::sync::Arc;
use workloads::apps::{run_cm1, run_hpccg, AppConfig};
use workloads::nas::{run_kernel, NasConfig, NasKernel};
use workloads::netpipe::{self, NetpipePoint};
use workloads::runner::{
    compare_layout_tuned, compare_protocols_tuned, ComparisonRow, RunTuning, WorkloadSpec,
};

/// One row of the Figure 7 sweep: native and replicated measurements for a
/// message size, plus the relative performance decrease.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Message size in bytes.
    pub size: usize,
    /// Native point.
    pub native: NetpipePoint,
    /// SDR-MPI (dual replication) point.
    pub sdr: NetpipePoint,
    /// Latency increase in percent.
    pub latency_decrease_pct: f64,
    /// Throughput decrease in percent.
    pub throughput_decrease_pct: f64,
}

/// Figure 7a/7b: NetPipe latency and throughput, native Open MPI vs SDR-MPI.
pub fn fig7_series(sizes: &[usize], reps: usize) -> Vec<Fig7Row> {
    sizes
        .iter()
        .map(|&size| {
            let native = netpipe::measure(
                native_job(2).network(LogGpModel::infiniband_20g()),
                size,
                reps,
            );
            let sdr = netpipe::measure(
                replicated_job(2, ReplicationConfig::dual()).network(LogGpModel::infiniband_20g()),
                size,
                reps,
            );
            Fig7Row {
                size,
                native,
                sdr,
                latency_decrease_pct: (sdr.latency_us - native.latency_us) / native.latency_us
                    * 100.0,
                throughput_decrease_pct: (native.throughput_mbps - sdr.throughput_mbps)
                    / native.throughput_mbps
                    * 100.0,
            }
        })
        .collect()
}

/// Default Figure 7 sweep sizes (a subset of the full NetPipe ladder that
/// still spans 1 B – 4 MiB).
pub fn fig7_default_sizes() -> Vec<usize> {
    vec![1, 8, 64, 512, 4 * 1024, 64 * 1024, 1 << 20, 4 << 20]
}

/// Table 1: the five NAS-like kernels, native vs dual replication.
pub fn table1_rows(ranks: usize, cfg: NasConfig) -> Vec<ComparisonRow> {
    table1_rows_tuned(ranks, cfg, RunTuning::default())
}

/// [`table1_rows`] with explicit execution-layer tuning — the entry point of
/// the `--ranks`/`--workers` scaling axis (64/128/256-rank configurations run
/// through the same bounded scheduler pool as the 16-rank default).
pub fn table1_rows_tuned(ranks: usize, cfg: NasConfig, tuning: RunTuning) -> Vec<ComparisonRow> {
    table1_rows_layout(ranks, cfg, 2, 1.0, tuning)
}

/// [`table1_rows_tuned`] generalised over the replica map: `degree >= 3`
/// replicates every rank uniformly at that degree, `coverage < 1.0` replicates
/// only the first `ceil(coverage * ranks)` ranks at degree 2 (the partial
/// layout's ADJACENT numbering) and leaves the rest as singletons. The dual
/// full layout (`degree == 2`, `coverage == 1.0`) takes exactly the historic
/// Table 1 path, so sweep rows at that point stay comparable with
/// `BENCH_table1.json`.
pub fn table1_rows_layout(
    ranks: usize,
    cfg: NasConfig,
    degree: usize,
    coverage: f64,
    tuning: RunTuning,
) -> Vec<ComparisonRow> {
    NasKernel::all()
        .iter()
        .map(|&kernel| compare_nas_layout(kernel, ranks, cfg, degree, coverage, tuning))
        .collect()
}

/// Compare one NAS kernel native vs replicated under the `(degree, coverage)`
/// layout selection shared by [`table1_rows_layout`] and
/// [`layout_sweep_points`].
fn compare_nas_layout(
    kernel: NasKernel,
    ranks: usize,
    cfg: NasConfig,
    degree: usize,
    coverage: f64,
    tuning: RunTuning,
) -> ComparisonRow {
    assert!(degree >= 2, "replication needs a degree of at least 2");
    assert!(
        coverage > 0.0 && coverage <= 1.0,
        "coverage must be in (0, 1], got {coverage}"
    );
    let spec = WorkloadSpec::new(kernel.name(), ranks, move |p| run_kernel(kernel, p, &cfg));
    if coverage < 1.0 {
        assert_eq!(
            degree, 2,
            "partial replication covers its replicated ranks at degree 2"
        );
        let map = PartialLayout::with_coverage(ranks, coverage, MappingPolicy::Adjacent)
            .expect("a coverage in (0, 1] always yields a valid partial layout");
        compare_layout_tuned(
            &spec,
            Arc::new(map) as Arc<dyn ReplicaMap>,
            ReplicationConfig::dual(),
            tuning,
        )
    } else {
        compare_protocols_tuned(&spec, ReplicationConfig::with_degree(degree), tuning)
    }
}

/// The coverage ladder of the overhead-vs-coverage frontier
/// (`BENCH_layouts.json`).
pub const LAYOUT_SWEEP_COVERAGES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// One point of the overhead-vs-coverage frontier: a `(degree, coverage)`
/// layout measured on one NAS kernel.
#[derive(Debug, Clone)]
pub struct LayoutSweepPoint {
    /// Replication degree of the replicated ranks.
    pub degree: usize,
    /// Fraction of ranks replicated.
    pub coverage: f64,
    /// The native-vs-replicated measurement at this layout.
    pub row: ComparisonRow,
}

/// The overhead-vs-coverage frontier on one kernel: degree 2 at each coverage
/// in [`LAYOUT_SWEEP_COVERAGES`] (the 1.0 point is the historic full-dual
/// Table 1 configuration), plus full replication at degree 3. Replication
/// cost must grow monotonically along the coverage ladder — each additional
/// covered rank adds replica traffic and ack round-trips — which the
/// `layout_sweep` binary asserts before writing the artifact.
pub fn layout_sweep_points(
    ranks: usize,
    cfg: NasConfig,
    kernel: NasKernel,
    tuning: RunTuning,
) -> Vec<LayoutSweepPoint> {
    let mut points: Vec<LayoutSweepPoint> = LAYOUT_SWEEP_COVERAGES
        .iter()
        .map(|&coverage| LayoutSweepPoint {
            degree: 2,
            coverage,
            row: compare_nas_layout(kernel, ranks, cfg, 2, coverage, tuning),
        })
        .collect();
    points.push(LayoutSweepPoint {
        degree: 3,
        coverage: 1.0,
        row: compare_nas_layout(kernel, ranks, cfg, 3, 1.0, tuning),
    });
    points
}

/// Serialise the layout sweep as the machine-readable `BENCH_layouts.json`
/// report (same hand-rolled-JSON convention as [`table_report_json`]).
pub fn layouts_report_json(
    benchmark: &str,
    ranks: usize,
    class_name: &str,
    kernel_name: &str,
    points: &[LayoutSweepPoint],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{benchmark}\",\n"));
    out.push_str(&format!("  \"ranks\": {ranks},\n"));
    out.push_str(&format!("  \"class\": \"{class_name}\",\n"));
    out.push_str(&format!("  \"kernel\": \"{kernel_name}\",\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"degree\": {}, \"coverage\": {:.4}, \
             \"native_secs\": {:.6}, \"replicated_secs\": {:.6}, \"overhead_pct\": {:.3}, \
             \"results_match\": {}, \"native_app_msgs\": {}, \"replicated_app_msgs\": {}, \
             \"replicated_ack_msgs\": {}}}{}\n",
            p.degree,
            p.coverage,
            p.row.native_secs,
            p.row.replicated_secs,
            p.row.overhead_pct,
            p.row.results_match,
            p.row.native_app_msgs,
            p.row.replicated_app_msgs,
            p.row.replicated_ack_msgs,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Format the layout sweep as a text table.
pub fn format_layout_sweep(title: &str, points: &[LayoutSweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>6} {:>8} {:>14} {:>16} {:>12} {:>12} {:>12}  {}\n",
        "degree",
        "coverage",
        "Native (s)",
        "Replicated (s)",
        "Overhead (%)",
        "app msgs",
        "ack msgs",
        "results"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>6} {:>8.2} {:>14.3} {:>16.3} {:>12.2} {:>12} {:>12}  {}\n",
            p.degree,
            p.coverage,
            p.row.native_secs,
            p.row.replicated_secs,
            p.row.overhead_pct,
            p.row.replicated_app_msgs,
            p.row.replicated_ack_msgs,
            if p.row.results_match {
                "match"
            } else {
                "MISMATCH"
            }
        ));
    }
    out
}

/// Table 2: HPCCG and CM1 (both with anonymous receptions), native vs dual
/// replication.
pub fn table2_rows(ranks: usize) -> Vec<ComparisonRow> {
    table2_rows_tuned(ranks, RunTuning::default())
}

/// [`table2_rows`] with explicit execution-layer tuning (see
/// [`table1_rows_tuned`]).
pub fn table2_rows_tuned(ranks: usize, tuning: RunTuning) -> Vec<ComparisonRow> {
    let hpccg_cfg = AppConfig::hpccg_paper_like();
    let cm1_cfg = AppConfig::cm1_paper_like();
    vec![
        compare_protocols_tuned(
            &WorkloadSpec::new("HPCCG", ranks, move |p| run_hpccg(p, &hpccg_cfg)),
            ReplicationConfig::dual(),
            tuning,
        ),
        compare_protocols_tuned(
            &WorkloadSpec::new("CM1", ranks, move |p| run_cm1(p, &cm1_cfg)),
            ReplicationConfig::dual(),
            tuning,
        ),
    ]
}

/// Parsed command line of the table harnesses (see [`parse_harness_args`]).
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Application rank count.
    pub ranks: usize,
    /// NAS problem-size configuration.
    pub cfg: NasConfig,
    /// Canonical name of the selected class (for reports), e.g. `"s"`.
    pub class_name: String,
    /// Replication degree for the replicated runs (2 = the paper's dual).
    pub degree: usize,
    /// Fraction of ranks replicated (1.0 = full replication; < 1.0 selects
    /// the degree-2 partial layout over the first `ceil(coverage * ranks)`
    /// ranks).
    pub coverage: f64,
    /// Execution-layer tuning.
    pub tuning: RunTuning,
    /// Where to write the machine-readable JSON report, if requested.
    pub json_path: Option<std::path::PathBuf>,
}

/// Shared CLI parsing for the table harnesses: `--ranks N`, `--class
/// s|test|d`, `--degree N` (replication degree, default 2), `--coverage F`
/// (fraction of ranks replicated, default 1.0; `< 1.0` runs the degree-2
/// partial layout), `--workers N`, `--carrier-mode thread|coro` (execution
/// mode; defaults to coroutine stacks on supported targets, overridable via
/// the `SDR_CARRIER_MODE` environment variable), `--json PATH`
/// (machine-readable report, uploaded as a CI artifact), plus a bare
/// positional rank count for backwards compatibility.
pub fn parse_harness_args<I: Iterator<Item = String>>(
    args: I,
    default_ranks: usize,
) -> HarnessArgs {
    let mut parsed = HarnessArgs {
        ranks: default_ranks,
        cfg: NasConfig::class_d_like(),
        class_name: "d".to_string(),
        degree: 2,
        coverage: 1.0,
        tuning: RunTuning::default(),
        json_path: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => {
                parsed.ranks = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--ranks needs a positive integer");
            }
            "--class" => {
                let name = args.next().expect("--class needs a class name");
                parsed.cfg = NasConfig::from_class_name(&name)
                    .unwrap_or_else(|| panic!("unknown NAS class {name:?} (use s, test or d)"));
                parsed.class_name = name.to_ascii_lowercase();
            }
            "--degree" => {
                let d: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--degree needs an integer >= 2");
                assert!(d >= 2, "--degree needs an integer >= 2, got {d}");
                parsed.degree = d;
            }
            "--coverage" => {
                let c: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--coverage needs a number in (0, 1]");
                assert!(
                    c > 0.0 && c <= 1.0,
                    "--coverage needs a number in (0, 1], got {c}"
                );
                parsed.coverage = c;
            }
            "--workers" => {
                let w: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--workers needs a positive integer");
                assert!(
                    w >= sim_net::sched::MIN_WORKERS,
                    "--workers needs an integer >= {}",
                    sim_net::sched::MIN_WORKERS
                );
                if w == 1 {
                    eprintln!(
                        "note: --workers 1 runs the deterministic single-permit replay \
                         mode (slowest, but two identical runs schedule identically)"
                    );
                }
                parsed.tuning.workers = Some(w);
            }
            "--carrier-mode" => {
                let name = args.next().expect("--carrier-mode needs a mode name");
                parsed.tuning.carrier_mode = Some(CarrierMode::parse(&name).unwrap_or_else(|| {
                    panic!("unknown carrier mode {name:?} (use thread or coro)")
                }));
            }
            "--json" => {
                let path = args.next().expect("--json needs a file path");
                parsed.json_path = Some(std::path::PathBuf::from(path));
            }
            other => {
                if let Ok(n) = other.parse() {
                    parsed.ranks = n;
                } else {
                    panic!("unrecognised argument {other:?}");
                }
            }
        }
    }
    assert!(parsed.ranks > 0, "rank count must be positive");
    assert!(
        parsed.coverage >= 1.0 || parsed.degree == 2,
        "--coverage < 1.0 requires --degree 2 (partial layouts replicate at degree 2)"
    );
    parsed
}

/// Result of the Figure 2 comparison: wall-clock time of an anonymous
/// reception benchmark under the leader-based protocol vs SDR-MPI.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Number of request/reply rounds measured.
    pub rounds: usize,
    /// Elapsed virtual seconds with the leader-based protocol.
    pub leader_secs: f64,
    /// Elapsed virtual seconds with SDR-MPI.
    pub sdr_secs: f64,
    /// Leader decision messages exchanged.
    pub decision_msgs: u64,
    /// Advantage of send-determinism, in percent of leader time.
    pub improvement_pct: f64,
}

fn anon_reception_app(
    rounds: usize,
) -> impl Fn(&mut sim_mpi::Process) -> f64 + Send + Sync + Clone {
    move |p: &mut sim_mpi::Process| {
        let world = p.world();
        if p.rank() == 0 {
            for _ in 0..rounds {
                let (status, _) = p.recv_bytes(world, ANY_SOURCE, 1);
                p.send_u64s(world, status.source, 2, &[1]);
            }
        } else {
            for i in 0..rounds as u64 {
                p.send_u64s(world, 0, 1, &[i]);
                let _ = p.recv_u64s(world, 0, 2);
            }
        }
        p.now().as_secs_f64()
    }
}

/// Figure 2: handling an anonymous reception with (left) and without (right) a
/// leader, measured as the elapsed time of a request/reply loop over
/// `MPI_ANY_SOURCE`.
pub fn fig2_comparison(rounds: usize) -> Fig2Row {
    let cfg = ReplicationConfig::dual();
    let app = anon_reception_app(rounds);
    let leader = JobBuilder::new(2)
        .network(LogGpModel::infiniband_20g())
        .protocol(Arc::new(LeaderFactory::new(cfg)))
        .cluster(Cluster::new(4, 1))
        .placement(Placement::ReplicaSets {
            ranks: 2,
            degree: 2,
        })
        .run(app.clone());
    let sdr = replicated_job(2, cfg)
        .network(LogGpModel::infiniband_20g())
        .run(app);
    assert!(leader.all_finished() && sdr.all_finished());
    let leader_secs = leader.elapsed.as_secs_f64();
    let sdr_secs = sdr.elapsed.as_secs_f64();
    Fig2Row {
        rounds,
        leader_secs,
        sdr_secs,
        decision_msgs: leader.stats.control_msgs(),
        improvement_pct: (leader_secs - sdr_secs) / leader_secs * 100.0,
    }
}

/// Message-complexity comparison between the mirror and parallel protocols.
#[derive(Debug, Clone, PartialEq)]
pub struct MirrorRow {
    /// Replication degree.
    pub degree: usize,
    /// Application messages in the native run.
    pub native_app_msgs: u64,
    /// Application messages with the parallel protocol (SDR-MPI).
    pub parallel_app_msgs: u64,
    /// Protocol acks with the parallel protocol.
    pub parallel_ack_msgs: u64,
    /// Application messages with the mirror protocol.
    pub mirror_app_msgs: u64,
    /// Elapsed seconds, parallel protocol.
    pub parallel_secs: f64,
    /// Elapsed seconds, mirror protocol.
    pub mirror_secs: f64,
}

/// Section 2.4: mirror (`O(q·r²)`) vs parallel (`O(q·r)`) message complexity
/// on a halo-exchange workload.
pub fn mirror_vs_parallel(ranks: usize, degree: usize, iterations: usize) -> MirrorRow {
    let app = move |p: &mut sim_mpi::Process| {
        let world = p.world();
        for _ in 0..iterations {
            let peer = (p.rank() + 1) % p.size();
            let from = (p.rank() + p.size() - 1) % p.size();
            p.sendrecv_bytes(
                world,
                peer,
                0,
                bytes::Bytes::from(vec![7u8; 2048]),
                from as i64,
                0,
            );
        }
        p.now().as_secs_f64()
    };
    let native = native_job(ranks)
        .network(LogGpModel::infiniband_20g())
        .run(app);
    let parallel = replicated_job(ranks, ReplicationConfig::with_degree(degree))
        .network(LogGpModel::infiniband_20g())
        .run(app);
    let mirror = JobBuilder::new(ranks)
        .network(LogGpModel::infiniband_20g())
        .protocol(Arc::new(MirrorFactory::new(degree)))
        .cluster(Cluster::new(ranks * degree, 1))
        .placement(Placement::ReplicaSets { ranks, degree })
        .run(app);
    assert!(native.all_finished() && parallel.all_finished() && mirror.all_finished());
    MirrorRow {
        degree,
        native_app_msgs: native.stats.app_msgs(),
        parallel_app_msgs: parallel.stats.app_msgs(),
        parallel_ack_msgs: parallel.stats.ack_msgs(),
        mirror_app_msgs: mirror.stats.app_msgs(),
        parallel_secs: parallel.elapsed.as_secs_f64(),
        mirror_secs: mirror.elapsed.as_secs_f64(),
    }
}

/// redMPI ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct RedMpiRow {
    /// Whether a corruption was injected.
    pub corrupted: bool,
    /// Hash messages exchanged.
    pub hash_msgs: u64,
    /// Hash comparisons performed.
    pub comparisons: u64,
    /// Mismatches (detections).
    pub detections: u64,
    /// Elapsed seconds under the redMPI-style protocol.
    pub redmpi_secs: f64,
    /// Elapsed seconds under SDR-MPI for the same workload.
    pub sdr_secs: f64,
}

/// redMPI-style SDC detection: traffic overhead and detection of an injected
/// bit flip.
pub fn redmpi_detection(ranks: usize, iterations: usize, inject: bool) -> RedMpiRow {
    let app = move |p: &mut sim_mpi::Process| {
        let world = p.world();
        for i in 0..iterations as u64 {
            let peer = (p.rank() + 1) % p.size();
            let from = (p.rank() + p.size() - 1) % p.size();
            p.sendrecv_bytes(
                world,
                peer,
                3,
                bytes::Bytes::from(vec![(i % 251) as u8; 1024]),
                from as i64,
                3,
            );
        }
        p.now().as_secs_f64()
    };
    let report = SdcReport::new();
    let mut factory = RedMpiFactory::dual(Arc::clone(&report));
    if inject {
        factory = factory.with_corruption(CorruptionSpec {
            replica: 1,
            src_rank: 0,
            dst_rank: 1,
            seq: (iterations / 2) as u64,
        });
    }
    let redmpi = JobBuilder::new(ranks)
        .network(LogGpModel::infiniband_20g())
        .protocol(Arc::new(factory))
        .cluster(Cluster::new(ranks * 2, 1))
        .placement(Placement::ReplicaSets { ranks, degree: 2 })
        .run(app);
    let sdr = replicated_job(ranks, ReplicationConfig::dual())
        .network(LogGpModel::infiniband_20g())
        .run(app);
    assert!(redmpi.all_finished() && sdr.all_finished());
    RedMpiRow {
        corrupted: inject,
        hash_msgs: redmpi.stats.hash_msgs(),
        comparisons: report.comparisons(),
        detections: report.mismatches(),
        redmpi_secs: redmpi.elapsed.as_secs_f64(),
        sdr_secs: sdr.elapsed.as_secs_f64(),
    }
}

/// Format a Table-1/2-style row set in the paper's layout.
pub fn format_comparison_table(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<8} {:>6} {:>8} {:>14} {:>16} {:>12}  {}\n",
        "", "degree", "coverage", "Native (s)", "Replicated (s)", "Overhead (%)", "results"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<8} {:>6} {:>8.2} {:>14.3} {:>16.3} {:>12.2}  {}\n",
            row.name,
            row.degree,
            row.coverage,
            row.native_secs,
            row.replicated_secs,
            row.overhead_pct,
            if row.results_match {
                "match"
            } else {
                "MISMATCH"
            }
        ));
    }
    out
}

/// Aggregate delivery counters over a row set (both runs of every row).
/// `baseline` is the exact wake count the one-wake-per-delivery PR 2 path
/// would have paid — every recorded wake plus one per extra message in a
/// multi-message batch (a `k`-message batch records one wake where the
/// baseline issued `k`).
#[derive(Debug, Default, Clone, Copy)]
struct DeliveryTotals {
    issued: u64,
    suppressed: u64,
    flushes: u64,
    flushed_msgs: u64,
    baseline: u64,
    handoffs: u64,
    steals: u64,
    condvar_waits: u64,
    deliveries_direct: u64,
    heap_fallbacks: u64,
    threads_spawned: u64,
    threads_reused: u64,
    stack_switches: u64,
    stacks_allocated: u64,
    stacks_reused: u64,
    /// Maximum over the rows — the pool peak is a gauge, not a counter.
    stack_bytes_peak: u64,
    /// Maximum worker-pool size over the rows (the runs share one tuning, so
    /// this is the configured pool for explicit `--workers` runs).
    workers: u64,
    /// Mode of the last run folded in; one harness invocation runs every row
    /// in the same mode.
    carrier_mode: Option<CarrierMode>,
}

impl DeliveryTotals {
    /// Fraction of dispatches that were direct handoffs/steals (1.0 when
    /// nothing was dispatched).
    fn direct_fraction(&self) -> f64 {
        sim_net::stats::direct_dispatch_fraction(self.handoffs, self.steals, self.condvar_waits)
    }

    /// Fraction of deliveries ingested on the ladder's in-order fast path
    /// (1.0 when nothing was delivered).
    fn direct_delivery_fraction(&self) -> f64 {
        sim_net::stats::direct_delivery_fraction(self.deliveries_direct, self.heap_fallbacks)
    }
}

fn delivery_totals(rows: &[ComparisonRow]) -> DeliveryTotals {
    let mut t = DeliveryTotals::default();
    for row in rows {
        for d in [&row.native_delivery, &row.replicated_delivery] {
            t.issued += d.wakes_issued;
            t.suppressed += d.wakes_suppressed;
            t.flushes += d.flushes;
            t.flushed_msgs += d.flushed_msgs;
            t.handoffs += d.handoffs;
            t.steals += d.steals;
            t.condvar_waits += d.condvar_waits;
            t.deliveries_direct += d.deliveries_direct;
            t.heap_fallbacks += d.heap_fallbacks;
            t.threads_spawned += d.threads_spawned;
            t.threads_reused += d.threads_reused;
            t.stack_switches += d.stack_switches;
            t.stacks_allocated += d.stacks_allocated;
            t.stacks_reused += d.stacks_reused;
            t.stack_bytes_peak = t.stack_bytes_peak.max(d.stack_bytes_peak);
            t.workers = t.workers.max(d.workers);
            t.carrier_mode = Some(d.carrier_mode);
        }
    }
    t.baseline = t.issued + t.suppressed + (t.flushed_msgs - t.flushes);
    t
}

/// Format the delivery-layer summary of a row set: scheduler wakes actually
/// issued vs the one-wake-per-delivery PR 2 baseline, outbox batching, the
/// direct-handoff dispatch split, and carrier-thread churn.
pub fn format_delivery_summary(rows: &[ComparisonRow]) -> String {
    let t = delivery_totals(rows);
    let reduction = if t.issued == 0 {
        f64::INFINITY
    } else {
        t.baseline as f64 / t.issued as f64
    };
    let mean_batch = if t.flushes == 0 {
        0.0
    } else {
        t.flushed_msgs as f64 / t.flushes as f64
    };
    format!(
        "delivery: {} wakes issued, {} suppressed \
         ({reduction:.2}x fewer than the {} one-per-delivery baseline); \
         {} batches, mean batch {mean_batch:.2} msgs\n\
         ingest: {} in-order ladder appends vs {} heap fallbacks \
         ({:.1}% single-pass O(1))\n\
         dispatch: {} handoffs + {} steals direct vs {} cold \
         ({:.1}% direct); threads: {} spawned, {} reused\n\
         carriers: {} mode; {} stack switches, {} stacks leased \
         ({} fresh, {} reused), pool peak {:.1} MiB\n",
        t.issued,
        t.suppressed,
        t.baseline,
        t.flushes,
        t.deliveries_direct,
        t.heap_fallbacks,
        t.direct_delivery_fraction() * 100.0,
        t.handoffs,
        t.steals,
        t.condvar_waits,
        t.direct_fraction() * 100.0,
        t.threads_spawned,
        t.threads_reused,
        t.carrier_mode.map_or("none", CarrierMode::as_str),
        t.stack_switches,
        t.stacks_allocated + t.stacks_reused,
        t.stacks_allocated,
        t.stacks_reused,
        t.stack_bytes_peak as f64 / (1024.0 * 1024.0),
    )
}

fn json_delivery(d: &workloads::runner::DeliveryCounters) -> String {
    format!(
        "{{\"wakes_issued\": {}, \"wakes_suppressed\": {}, \"flushes\": {}, \
         \"flushed_msgs\": {}, \"mean_flush_batch\": {:.3}, \
         \"handoffs\": {}, \"steals\": {}, \"condvar_waits\": {}, \
         \"deliveries_direct\": {}, \"heap_fallbacks\": {}, \
         \"threads_spawned\": {}, \"threads_reused\": {}, \
         \"carrier_mode\": \"{}\", \"workers\": {}, \
         \"stack_switches\": {}, \"stacks_allocated\": {}, \
         \"stacks_reused\": {}, \"stack_bytes_peak\": {}, \
         \"host_secs\": {:.3}}}",
        d.wakes_issued,
        d.wakes_suppressed,
        d.flushes,
        d.flushed_msgs,
        d.mean_flush_batch,
        d.handoffs,
        d.steals,
        d.condvar_waits,
        d.deliveries_direct,
        d.heap_fallbacks,
        d.threads_spawned,
        d.threads_reused,
        d.carrier_mode.as_str(),
        d.workers,
        d.stack_switches,
        d.stacks_allocated,
        d.stacks_reused,
        d.stack_bytes_peak,
        d.host_secs
    )
}

/// Serialise a Table-1/2-style row set as the machine-readable benchmark
/// report (`BENCH_table1.json` in CI). Hand-rolled JSON: the vendored serde
/// stand-in has no serializer, and the schema is small and flat.
pub fn table_report_json(
    benchmark: &str,
    ranks: usize,
    class_name: &str,
    rows: &[ComparisonRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{benchmark}\",\n"));
    out.push_str(&format!("  \"ranks\": {ranks},\n"));
    out.push_str(&format!("  \"class\": \"{class_name}\",\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"degree\": {}, \"coverage\": {:.4}, \
             \"native_secs\": {:.6}, \"replicated_secs\": {:.6}, \
             \"overhead_pct\": {:.3}, \"results_match\": {}, \
             \"native_app_msgs\": {}, \"replicated_app_msgs\": {}, \"replicated_ack_msgs\": {}, \
             \"native_delivery\": {}, \"replicated_delivery\": {}}}{}\n",
            row.name,
            row.degree,
            row.coverage,
            row.native_secs,
            row.replicated_secs,
            row.overhead_pct,
            row.results_match,
            row.native_app_msgs,
            row.replicated_app_msgs,
            row.replicated_ack_msgs,
            json_delivery(&row.native_delivery),
            json_delivery(&row.replicated_delivery),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    let t = delivery_totals(rows);
    // No wake ever took the slow path: the reduction is unbounded, not a
    // number — emit null so artifact consumers don't record a bogus value.
    let reduction = if t.issued == 0 {
        "null".to_string()
    } else {
        format!("{:.3}", t.baseline as f64 / t.issued as f64)
    };
    out.push_str(&format!(
        "  \"totals\": {{\"wakes_issued\": {}, \"wakes_suppressed\": {}, \
         \"baseline_equivalent_wakes\": {}, \"wake_reduction_factor\": {reduction}, \
         \"handoffs\": {}, \"steals\": {}, \"condvar_waits\": {}, \
         \"direct_dispatch_fraction\": {:.4}, \
         \"deliveries_direct\": {}, \"heap_fallbacks\": {}, \
         \"direct_delivery_fraction\": {:.4}, \
         \"threads_spawned\": {}, \"threads_reused\": {}, \
         \"carrier_mode\": \"{}\", \"workers\": {}, \
         \"stack_switches\": {}, \"stacks_allocated\": {}, \
         \"stacks_reused\": {}, \"stack_bytes_peak\": {}}}\n",
        t.issued,
        t.suppressed,
        t.baseline,
        t.handoffs,
        t.steals,
        t.condvar_waits,
        t.direct_fraction(),
        t.deliveries_direct,
        t.heap_fallbacks,
        t.direct_delivery_fraction(),
        t.threads_spawned,
        t.threads_reused,
        t.carrier_mode.map_or("none", CarrierMode::as_str),
        t.workers,
        t.stack_switches,
        t.stacks_allocated,
        t.stacks_reused,
        t.stack_bytes_peak,
    ));
    out.push_str("}\n");
    out
}

/// Format the Figure 7 series as a text table (one row per size).
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 7: NetPipe latency / throughput, Open MPI (native) vs SDR-MPI\n");
    out.push_str(&format!(
        "{:>10} {:>15} {:>13} {:>9} {:>16} {:>13} {:>9}\n",
        "size(B)",
        "lat native(us)",
        "lat SDR(us)",
        "decr(%)",
        "bw native(Mb/s)",
        "bw SDR(Mb/s)",
        "decr(%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>15.2} {:>13.2} {:>9.1} {:>16.0} {:>13.0} {:>9.1}\n",
            r.size,
            r.native.latency_us,
            r.sdr.latency_us,
            r.latency_decrease_pct,
            r.native.throughput_mbps,
            r.sdr.throughput_mbps,
            r.throughput_decrease_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_small_sweep_has_expected_shape() {
        let rows = fig7_series(&[1, 65536], 6);
        assert_eq!(rows.len(), 2);
        // Small messages: noticeable latency overhead. Large: negligible.
        assert!(rows[0].latency_decrease_pct > 5.0);
        assert!(rows[1].latency_decrease_pct < 5.0);
        assert!(rows[1].native.throughput_mbps > rows[0].native.throughput_mbps);
    }

    #[test]
    fn fig2_leader_slower_than_sdr() {
        let row = fig2_comparison(10);
        assert!(row.leader_secs > row.sdr_secs);
        assert!(row.improvement_pct > 0.0);
        assert_eq!(row.decision_msgs, 10);
    }

    #[test]
    fn mirror_blowup_matches_theory() {
        let row = mirror_vs_parallel(3, 2, 4);
        assert_eq!(row.parallel_app_msgs, row.native_app_msgs * 2);
        assert_eq!(row.mirror_app_msgs, row.native_app_msgs * 4);
        assert!(row.parallel_ack_msgs > 0);
    }

    #[test]
    fn redmpi_detects_injected_corruption() {
        let clean = redmpi_detection(2, 6, false);
        assert_eq!(clean.detections, 0);
        assert!(clean.comparisons > 0);
        assert!(clean.hash_msgs > 0);
        let corrupted = redmpi_detection(2, 6, true);
        assert!(corrupted.detections >= 1);
    }

    #[test]
    fn formatting_helpers_mention_rows() {
        let rows = table1_rows(4, NasConfig::test_size());
        let text = format_comparison_table("Table 1", &rows);
        for k in ["BT", "CG", "FT", "MG", "SP"] {
            assert!(text.contains(k));
        }
        assert!(text.contains("Overhead"));
        assert!(text.contains("coverage"));
        let json = table_report_json("table1_nas", 4, "test", &rows);
        assert!(json.contains("\"degree\": 2"));
        assert!(json.contains("\"coverage\": 1.0000"));
    }

    #[test]
    fn harness_args_accept_degree_and_coverage() {
        let args = parse_harness_args(
            ["--ranks", "8", "--degree", "3"]
                .iter()
                .map(|s| s.to_string()),
            16,
        );
        assert_eq!((args.ranks, args.degree), (8, 3));
        assert_eq!(args.coverage, 1.0);
        let args = parse_harness_args(["--coverage", "0.5"].iter().map(|s| s.to_string()), 16);
        assert_eq!((args.degree, args.coverage), (2, 0.5));
    }

    #[test]
    fn layout_sweep_overhead_grows_with_coverage() {
        let points = layout_sweep_points(
            4,
            NasConfig::test_size(),
            NasKernel::Cg,
            RunTuning::default(),
        );
        assert_eq!(points.len(), LAYOUT_SWEEP_COVERAGES.len() + 1);
        for p in &points {
            assert!(
                p.row.results_match,
                "degree {} coverage {}",
                p.degree, p.coverage
            );
        }
        // Each additional covered rank adds replica traffic, so the message
        // count climbs exactly and the virtual-time overhead climbs up to
        // run-to-run scheduling drift.
        for w in points[..LAYOUT_SWEEP_COVERAGES.len()].windows(2) {
            assert!(
                w[0].row.replicated_app_msgs < w[1].row.replicated_app_msgs,
                "coverage {} -> {} must add replica traffic",
                w[0].coverage,
                w[1].coverage
            );
            assert!(
                w[1].row.overhead_pct >= w[0].row.overhead_pct - 1.0,
                "coverage {} -> {} must not get cheaper",
                w[0].coverage,
                w[1].coverage
            );
        }
        // Degree 3 sends one more copy of everything than full dual.
        let dual_full = &points[LAYOUT_SWEEP_COVERAGES.len() - 1];
        let triple = points.last().unwrap();
        assert_eq!(triple.degree, 3);
        assert!(triple.row.replicated_app_msgs > dual_full.row.replicated_app_msgs);
        let json = layouts_report_json("layout_sweep", 4, "test", "CG", &points);
        assert!(json.contains("\"coverage\": 0.2500"));
        assert!(json.contains("\"degree\": 3"));
        let text = format_layout_sweep("Layout sweep", &points);
        assert!(text.contains("match"));
    }
}
