//! The leader-based parallel protocol (rMPI-style handling of
//! non-determinism).
//!
//! rMPI and redMPI agree on the outcome of non-deterministic MPI calls by
//! electing one replica of each rank as the *leader*: when an
//! `MPI_ANY_SOURCE` reception completes on the leader, it tells the other
//! replicas which source it received from, and only then do they post a
//! source-specific receive. The paper's Figure 2 contrasts this with SDR-MPI,
//! which needs no such exchange thanks to send-determinism.
//!
//! [`LeaderParallelProtocol`] wraps the SDR-MPI engine (which supplies the
//! parallel protocol's acknowledgement machinery) and adds the leader
//! decision path for anonymous receptions:
//!
//! * The leader (replica 0 of the rank) posts the anonymous receive normally;
//!   when the application completes it, the decided source rank is broadcast
//!   to the other replicas of the rank as a control message.
//! * Non-leader replicas do **not** post the anonymous receive immediately;
//!   they wait for the leader's decision and then post a source-specific
//!   receive. This is exactly the delayed posting that increases both the
//!   latency of anonymous receptions and the probability of unexpected
//!   messages (Section 3.1 of the paper).

use bytes::Bytes;
use sdr_core::{ReplicationConfig, SdrProtocol};
use sim_mpi::pml::{Pml, PmlEvent};
use sim_mpi::{
    CommId, ProtoRecvReq, ProtoSendReq, Protocol, ProtocolFactory, Rank, Status, Tag, TagSel,
};
use sim_net::stats::class;
use sim_net::{EndpointId, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Control-message kind for leader decisions (disjoint from the SDR kinds).
pub const DECISION_KIND: i64 = 100;

#[derive(Debug)]
enum AnonState {
    /// Leader: posted through the inner protocol; decision pending until the
    /// application completes the receive.
    LeaderPosted { inner: ProtoRecvReq, decided: bool },
    /// Non-leader: waiting for the leader's decision before posting.
    AwaitingDecision { comm: CommId, tag: TagSel },
    /// Non-leader: decision received and the receive posted. `floor` is the
    /// arrival time of the decision: the reception cannot complete before the
    /// follower learned which source to receive from.
    Posted { inner: ProtoRecvReq, floor: SimTime },
}

/// The leader-based parallel replication protocol.
pub struct LeaderParallelProtocol {
    inner: SdrProtocol,
    degree: usize,
    /// Sequence number of anonymous receptions (identical across replicas of
    /// a rank because they issue the same sequence of MPI calls).
    anon_seq: u64,
    /// Outstanding anonymous receptions, keyed by their anonymous sequence.
    anon: BTreeMap<u64, AnonState>,
    /// Wrapper request id → anonymous sequence (for anonymous receives) .
    anon_of_req: HashMap<u64, u64>,
    next_req: u64,
    /// Decisions that arrived before the matching anonymous receive was
    /// posted locally (decided source rank, decision arrival time).
    early_decisions: HashMap<u64, (Rank, SimTime)>,
    /// Decisions the leader still has to announce (src rank per anon seq).
    announce_queue: VecDeque<(u64, Rank)>,
    decisions_sent: u64,
    decisions_received: u64,
}

impl LeaderParallelProtocol {
    /// Build the protocol for physical process `endpoint`.
    pub fn new(endpoint: EndpointId, app_ranks: usize, cfg: ReplicationConfig) -> Self {
        LeaderParallelProtocol {
            inner: SdrProtocol::new(endpoint, app_ranks, cfg),
            degree: cfg.degree,
            anon_seq: 0,
            anon: BTreeMap::new(),
            anon_of_req: HashMap::new(),
            next_req: 1 << 32,
            early_decisions: HashMap::new(),
            announce_queue: VecDeque::new(),
            decisions_sent: 0,
            decisions_received: 0,
        }
    }

    fn is_leader(&self) -> bool {
        self.inner.replica_id() == 0
    }

    /// Number of decision messages sent / received by this process.
    pub fn decision_counts(&self) -> (u64, u64) {
        (self.decisions_sent, self.decisions_received)
    }

    fn announce(&mut self, pml: &mut Pml, anon_seq: u64, src_rank: Rank) {
        let layout = self.inner.map();
        let mut header = [0i64; 8];
        header[0] = DECISION_KIND;
        header[1] = anon_seq as i64;
        header[2] = src_rank as i64;
        for rep in 1..self.degree {
            let target = layout.endpoint(self.inner.app_rank(), rep);
            pml.send_control(target, class::CONTROL, header, Bytes::new());
            self.decisions_sent += 1;
        }
    }
}

impl Protocol for LeaderParallelProtocol {
    fn app_rank(&self) -> Rank {
        self.inner.app_rank()
    }

    fn app_size(&self) -> usize {
        self.inner.app_size()
    }

    fn replica_id(&self) -> usize {
        self.inner.replica_id()
    }

    fn is_primary(&self) -> bool {
        self.inner.is_primary()
    }

    fn isend(
        &mut self,
        pml: &mut Pml,
        dst: Rank,
        comm: CommId,
        tag: Tag,
        payload: Bytes,
    ) -> ProtoSendReq {
        self.inner.isend(pml, dst, comm, tag, payload)
    }

    fn irecv(
        &mut self,
        pml: &mut Pml,
        src: Option<Rank>,
        comm: CommId,
        tag: TagSel,
    ) -> ProtoRecvReq {
        match src {
            Some(_) => self.inner.irecv(pml, src, comm, tag),
            None => {
                // Anonymous reception: leader decides, the others follow.
                let seq = self.anon_seq;
                self.anon_seq += 1;
                let id = self.next_req;
                self.next_req += 1;
                let state = if self.is_leader() {
                    let inner = self.inner.irecv(pml, None, comm, tag);
                    AnonState::LeaderPosted {
                        inner,
                        decided: false,
                    }
                } else if let Some((src_rank, floor)) = self.early_decisions.remove(&seq) {
                    let inner = self.inner.irecv(pml, Some(src_rank), comm, tag);
                    AnonState::Posted { inner, floor }
                } else {
                    AnonState::AwaitingDecision { comm, tag }
                };
                self.anon.insert(seq, state);
                self.anon_of_req.insert(id, seq);
                ProtoRecvReq(id)
            }
        }
    }

    fn send_complete(&mut self, pml: &mut Pml, req: ProtoSendReq) -> bool {
        self.inner.send_complete(pml, req)
    }

    fn recv_complete(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> bool {
        match self.anon_of_req.get(&req.0) {
            None => self.inner.recv_complete(pml, req),
            Some(&seq) => match self.anon.get(&seq) {
                Some(AnonState::LeaderPosted { inner, .. })
                | Some(AnonState::Posted { inner, .. }) => self.inner.recv_complete(pml, *inner),
                Some(AnonState::AwaitingDecision { .. }) => false,
                None => true,
            },
        }
    }

    fn take_recv(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> Option<(Status, Bytes)> {
        match self.anon_of_req.get(&req.0).copied() {
            None => self.inner.take_recv(pml, req),
            Some(seq) => {
                let (inner_req, floor) = match self.anon.get(&seq) {
                    Some(AnonState::LeaderPosted { inner, .. }) => (*inner, SimTime::ZERO),
                    Some(AnonState::Posted { inner, floor }) => (*inner, *floor),
                    _ => return None,
                };
                let result = self.inner.take_recv(pml, inner_req)?;
                // A follower cannot complete the anonymous reception before it
                // learned the decided source from the leader.
                pml.endpoint_mut().clock_mut().sync_to(floor);
                // Leader announces the decided source the first time the
                // application observes it.
                if let Some(AnonState::LeaderPosted { decided, .. }) = self.anon.get_mut(&seq) {
                    if !*decided {
                        *decided = true;
                        let src = result.0.source;
                        self.announce_queue.push_back((seq, src));
                    }
                }
                while let Some((s, src)) = self.announce_queue.pop_front() {
                    self.announce(pml, s, src);
                }
                self.anon.remove(&seq);
                self.anon_of_req.remove(&req.0);
                Some(result)
            }
        }
    }

    fn free_send(&mut self, pml: &mut Pml, req: ProtoSendReq) {
        self.inner.free_send(pml, req)
    }

    fn handle_event(&mut self, pml: &mut Pml, ev: PmlEvent) {
        if let PmlEvent::Control {
            class: cls,
            header,
            arrival,
            ..
        } = &ev
        {
            if *cls == class::CONTROL && header[0] == DECISION_KIND {
                let seq = header[1] as u64;
                let src_rank = header[2] as usize;
                let arrival = *arrival;
                self.decisions_received += 1;
                // Post the deferred anonymous receive if it is already known;
                // otherwise remember the decision for when it gets posted.
                let mut posted = None;
                if let Some(AnonState::AwaitingDecision { comm, tag }) = self.anon.get(&seq) {
                    let (comm, tag) = (*comm, *tag);
                    let inner = self.inner.irecv(pml, Some(src_rank), comm, tag);
                    posted = Some(inner);
                }
                if let Some(inner) = posted {
                    self.anon.insert(
                        seq,
                        AnonState::Posted {
                            inner,
                            floor: arrival,
                        },
                    );
                } else if !self.anon.contains_key(&seq) {
                    self.early_decisions.insert(seq, (src_rank, arrival));
                }
                return;
            }
        }
        self.inner.handle_event(pml, ev);
    }

    fn describe_pending(&self) -> String {
        let awaiting = self
            .anon
            .values()
            .filter(|s| matches!(s, AnonState::AwaitingDecision { .. }))
            .count();
        format!(
            "leader-based protocol: {awaiting} anonymous receptions awaiting leader decision; {}",
            self.inner.describe_pending()
        )
    }
}

/// Factory for the leader-based parallel protocol.
#[derive(Debug, Clone)]
pub struct LeaderFactory {
    cfg: ReplicationConfig,
}

impl LeaderFactory {
    /// Dual replication, leader-based non-determinism handling.
    pub fn dual() -> Self {
        LeaderFactory {
            cfg: ReplicationConfig::dual(),
        }
    }

    /// Explicit configuration.
    pub fn new(cfg: ReplicationConfig) -> Self {
        LeaderFactory { cfg }
    }
}

impl ProtocolFactory for LeaderFactory {
    fn physical_processes(&self, app_ranks: usize) -> usize {
        app_ranks * self.cfg.degree
    }

    fn build(&self, endpoint: EndpointId, app_ranks: usize) -> Box<dyn Protocol> {
        Box::new(LeaderParallelProtocol::new(endpoint, app_ranks, self.cfg))
    }

    fn name(&self) -> &str {
        "leader-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{JobBuilder, ANY_SOURCE};
    use sim_net::{Cluster, LogGpModel, Placement};
    use std::sync::Arc;

    fn leader_job(ranks: usize) -> JobBuilder {
        let cfg = ReplicationConfig::dual();
        JobBuilder::new(ranks)
            .network(LogGpModel::fast_test_model())
            .protocol(Arc::new(LeaderFactory::new(cfg)))
            .cluster(Cluster::new(ranks * 2, 1))
            .placement(Placement::ReplicaSets { ranks, degree: 2 })
    }

    #[test]
    fn named_source_receptions_work_unchanged() {
        let report = leader_job(2).run(|p| {
            let world = p.world();
            if p.rank() == 0 {
                p.send_u64s(world, 1, 3, &[41]);
                0
            } else {
                let (_, v) = p.recv_u64s(world, 0, 3);
                v[0] + 1
            }
        });
        assert!(report.all_finished());
        assert_eq!(report.primary_results(), vec![&0, &42]);
        assert_eq!(
            report.stats.control_msgs(),
            0,
            "no decisions for named sources"
        );
    }

    #[test]
    fn anonymous_reception_agrees_across_replicas_via_decision() {
        let report = leader_job(3).run(|p| {
            let world = p.world();
            if p.rank() == 0 {
                let mut order = Vec::new();
                for _ in 0..2 {
                    let (status, _) = p.recv_bytes(world, ANY_SOURCE, 9);
                    order.push(status.source);
                }
                order
            } else {
                p.send_bytes(world, 0, 9, Bytes::from(vec![p.rank() as u8]));
                vec![]
            }
        });
        assert!(report.all_finished());
        // Both replicas of rank 0 must report the same reception order (the
        // leader's decision), whatever it was.
        let orders: Vec<_> = report
            .processes
            .iter()
            .filter(|p| p.app_rank == 0)
            .filter_map(|p| p.outcome.result())
            .collect();
        assert_eq!(orders.len(), 2);
        assert_eq!(
            orders[0], orders[1],
            "replicas must agree on the decided order"
        );
        // One decision message per anonymous reception, leader → follower.
        assert_eq!(report.stats.control_msgs(), 2);
    }

    #[test]
    fn leader_decision_adds_latency_compared_to_sdr() {
        // Figure 2: handling an anonymous reception with and without
        // send-determinism. The same exchange runs measurably slower under the
        // leader-based protocol because the follower replica must wait for the
        // leader's decision before posting its receive.
        // Request-reply over an anonymous reception: rank 0 receives from
        // ANY_SOURCE then answers the decided source; rank 1 waits for each
        // answer before issuing the next request.
        let app = |p: &mut sim_mpi::Process| {
            let world = p.world();
            if p.rank() == 0 {
                for _ in 0..20 {
                    let (status, _) = p.recv_bytes(world, ANY_SOURCE, 1);
                    p.send_u64s(world, status.source, 2, &[1]);
                }
            } else {
                for i in 0..20u64 {
                    p.send_u64s(world, 0, 1, &[i]);
                    let (_, _) = p.recv_u64s(world, 0, 2);
                }
            }
            p.now().as_micros_f64()
        };
        let cfg = ReplicationConfig::dual();
        let leader = JobBuilder::new(2)
            .network(LogGpModel::infiniband_20g())
            .protocol(Arc::new(LeaderFactory::new(cfg)))
            .cluster(Cluster::new(4, 1))
            .placement(Placement::ReplicaSets {
                ranks: 2,
                degree: 2,
            })
            .run(app);
        let sdr = sdr_core::replicated_job(2, cfg)
            .network(LogGpModel::infiniband_20g())
            .run(app);
        assert!(leader.all_finished() && sdr.all_finished());
        assert!(
            leader.elapsed > sdr.elapsed,
            "leader-based anonymous receptions should be slower (leader {}, sdr {})",
            leader.elapsed,
            sdr.elapsed
        );
    }
}
