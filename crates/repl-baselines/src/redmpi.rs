//! redMPI-style silent-data-corruption (SDC) detection.
//!
//! redMPI (Fiala et al., SC'12 — reference 10 of the paper) replicates MPI
//! ranks not to survive crashes but to *detect and correct silent data
//! corruption*: each replica sends its message to one receiver plus a hash of
//! the message to the other receiver replicas, which compare the hash of what
//! they received against the hashes the other senders computed. A mismatch
//! reveals a corrupted message.
//!
//! This baseline reproduces the detection mechanism (and its traffic overhead
//! shape) on the same substrate as SDR-MPI. Crashes are not handled, so no
//! acknowledgements are exchanged ([`sdr_core::AckOn::Never`]). Corruption is
//! injected deliberately through [`CorruptionSpec`] for the detection tests
//! and the `ablation_redmpi` harness.

use bytes::Bytes;
use parking_lot::Mutex;
use sdr_core::{AckOn, ReplicationConfig, SdrProtocol};
use sim_mpi::pml::{Pml, PmlEvent};
use sim_mpi::{
    CommId, ProtoRecvReq, ProtoSendReq, Protocol, ProtocolFactory, Rank, Status, Tag, TagSel,
};
use sim_net::stats::class;
use sim_net::trace::digest;
use sim_net::EndpointId;
use std::collections::HashMap;
use std::sync::Arc;

/// Control-message kind for payload hashes.
pub const HASH_KIND: i64 = 200;

/// Deliberate corruption of one message, for detection experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionSpec {
    /// Replica id whose outgoing message is corrupted.
    pub replica: usize,
    /// Sending rank whose message is corrupted.
    pub src_rank: Rank,
    /// Destination rank of the corrupted message.
    pub dst_rank: Rank,
    /// Application-level sequence number (per source→destination pair) of the
    /// corrupted message.
    pub seq: u64,
}

/// Shared record of SDC detections across all processes of a job.
#[derive(Debug, Default)]
pub struct SdcReport {
    inner: Mutex<SdcReportInner>,
}

#[derive(Debug, Default)]
struct SdcReportInner {
    comparisons: u64,
    mismatches: u64,
    corrected: u64,
    /// `(source rank, per-source seq)` keys of the detected corruptions, in
    /// detection order — the fault-campaign engine matches these against its
    /// injection plan.
    detected: Vec<(Rank, u64)>,
}

impl SdcReport {
    /// New empty report.
    pub fn new() -> Arc<Self> {
        Arc::new(SdcReport::default())
    }

    fn record(&self, key: (Rank, u64), mismatch: bool, corrected: bool) {
        let mut g = self.inner.lock();
        g.comparisons += 1;
        if mismatch {
            g.mismatches += 1;
            g.detected.push(key);
        }
        if corrected {
            g.corrected += 1;
        }
    }

    /// Total hash comparisons performed.
    pub fn comparisons(&self) -> u64 {
        self.inner.lock().comparisons
    }

    /// Hash mismatches (detected corruptions).
    pub fn mismatches(&self) -> u64 {
        self.inner.lock().mismatches
    }

    /// Mismatches outvoted by a hash majority (degree ≥ 3 only): the receiver
    /// knows which copy is corrupt and can substitute the majority value, so
    /// the corruption is *corrected*, not merely detected.
    pub fn corrected(&self) -> u64 {
        self.inner.lock().corrected
    }

    /// `(source rank, per-source seq)` keys of the detected corruptions, in
    /// detection order (one entry per mismatching comparison).
    pub fn detected_keys(&self) -> Vec<(Rank, u64)> {
        self.inner.lock().detected.clone()
    }
}

/// The redMPI-style protocol.
pub struct RedMpiProtocol {
    inner: SdrProtocol,
    degree: usize,
    corruption: Option<CorruptionSpec>,
    report: Arc<SdcReport>,
    /// Per-destination-rank application sequence (mirrors the inner counter).
    send_seq: Vec<u64>,
    /// Per-source-rank count of delivered messages (defines the seq of the
    /// next delivery).
    recv_count: Vec<u64>,
    /// Digests of messages this process has delivered, awaiting the remote
    /// hashes, keyed by (source rank, seq).
    local_digest: HashMap<(Rank, u64), u64>,
    /// Hashes received from other sender replicas, keyed by (source rank,
    /// seq). At degree `d` each delivery is checked against `d - 1` remote
    /// hashes; the comparison fires once all have arrived.
    remote_hash: HashMap<(Rank, u64), Vec<u64>>,
}

impl RedMpiProtocol {
    /// Build the protocol for physical process `endpoint`.
    pub fn new(
        endpoint: EndpointId,
        app_ranks: usize,
        degree: usize,
        corruption: Option<CorruptionSpec>,
        report: Arc<SdcReport>,
    ) -> Self {
        let cfg = ReplicationConfig::with_degree(degree).ack_on(AckOn::Never);
        RedMpiProtocol {
            inner: SdrProtocol::new(endpoint, app_ranks, cfg),
            degree,
            corruption,
            report,
            send_seq: vec![0; app_ranks],
            recv_count: vec![0; app_ranks],
            local_digest: HashMap::new(),
            remote_hash: HashMap::new(),
        }
    }

    fn compare_if_ready(&mut self, key: (Rank, u64)) {
        let expected_remotes = self.degree - 1;
        let ready = self.local_digest.contains_key(&key)
            && self
                .remote_hash
                .get(&key)
                .is_some_and(|v| v.len() >= expected_remotes);
        if !ready {
            return;
        }
        let local = self.local_digest.remove(&key).unwrap();
        let remotes = self.remote_hash.remove(&key).unwrap();
        let mismatch =
            remotes.iter().any(|&r| r != local) || remotes.windows(2).any(|w| w[0] != w[1]);
        // Majority vote: with degree ≥ 3 votes (our copy plus the remote
        // hashes), a strict-majority value outvotes a single corrupted copy —
        // redMPI can then substitute the majority payload, turning detection
        // into correction. At degree 2 the two votes only ever tie.
        let corrected = mismatch && self.degree >= 3 && {
            let mut votes: Vec<u64> = remotes;
            votes.push(local);
            let n = votes.len();
            votes
                .iter()
                .any(|&v| votes.iter().filter(|&&x| x == v).count() * 2 > n)
        };
        self.report.record(key, mismatch, corrected);
    }
}

impl Protocol for RedMpiProtocol {
    fn app_rank(&self) -> Rank {
        self.inner.app_rank()
    }

    fn app_size(&self) -> usize {
        self.inner.app_size()
    }

    fn replica_id(&self) -> usize {
        self.inner.replica_id()
    }

    fn is_primary(&self) -> bool {
        self.inner.is_primary()
    }

    fn isend(
        &mut self,
        pml: &mut Pml,
        dst: Rank,
        comm: CommId,
        tag: Tag,
        payload: Bytes,
    ) -> ProtoSendReq {
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        // Optional fault injection: flip one byte of this replica's copy.
        let mut effective = payload;
        if let Some(spec) = self.corruption {
            if spec.replica == self.inner.replica_id()
                && spec.src_rank == self.inner.app_rank()
                && spec.dst_rank == dst
                && spec.seq == seq
                && !effective.is_empty()
            {
                let mut bytes = effective.to_vec();
                bytes[0] ^= 0xFF;
                effective = Bytes::from(bytes);
            }
        }
        // Hash of the (possibly corrupted) copy goes to every *other* replica
        // of the destination rank so they can cross-check the copy they got
        // from their own sender replica.
        let h = digest(&effective);
        let map = self.inner.map();
        let my_replica = self.inner.replica_id();
        let mut header = [0i64; 8];
        header[0] = HASH_KIND;
        header[1] = self.inner.app_rank() as i64;
        header[2] = seq as i64;
        header[3] = h as i64;
        for rep in 0..self.degree {
            if rep == my_replica {
                continue;
            }
            let target = map.endpoint(dst, rep);
            pml.send_control(target, class::HASH, header, Bytes::new());
        }
        self.inner.isend(pml, dst, comm, tag, effective)
    }

    fn irecv(
        &mut self,
        pml: &mut Pml,
        src: Option<Rank>,
        comm: CommId,
        tag: TagSel,
    ) -> ProtoRecvReq {
        self.inner.irecv(pml, src, comm, tag)
    }

    fn send_complete(&mut self, pml: &mut Pml, req: ProtoSendReq) -> bool {
        self.inner.send_complete(pml, req)
    }

    fn recv_complete(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> bool {
        self.inner.recv_complete(pml, req)
    }

    fn take_recv(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> Option<(Status, Bytes)> {
        let (status, payload) = self.inner.take_recv(pml, req)?;
        let src = status.source;
        let seq = self.recv_count[src];
        self.recv_count[src] += 1;
        self.local_digest.insert((src, seq), digest(&payload));
        self.compare_if_ready((src, seq));
        Some((status, payload))
    }

    fn free_send(&mut self, pml: &mut Pml, req: ProtoSendReq) {
        self.inner.free_send(pml, req)
    }

    fn finalize(&mut self, pml: &mut Pml) {
        // Flush outstanding hash comparisons: every delivered message will be
        // matched by a hash from the other sender replica (it was sent before
        // that replica's copy of the application finished), so wait for the
        // stragglers before tearing the process down.
        let mut spins = 0;
        while !self.local_digest.is_empty() && spins < 10_000 {
            match pml.progress_blocking("redMPI hash flush at finalize") {
                Ok(events) => {
                    for ev in events {
                        self.handle_event(pml, ev);
                    }
                }
                Err(_) => break,
            }
            spins += 1;
        }
        self.inner.finalize(pml);
    }

    fn handle_event(&mut self, pml: &mut Pml, ev: PmlEvent) {
        if let PmlEvent::Control {
            class: cls, header, ..
        } = &ev
        {
            if *cls == class::HASH && header[0] == HASH_KIND {
                let src_rank = header[1] as usize;
                let seq = header[2] as u64;
                let hash = header[3] as u64;
                self.remote_hash
                    .entry((src_rank, seq))
                    .or_default()
                    .push(hash);
                self.compare_if_ready((src_rank, seq));
                return;
            }
        }
        self.inner.handle_event(pml, ev);
    }

    fn describe_pending(&self) -> String {
        format!(
            "redMPI-style protocol: {} hash comparisons pending; {}",
            self.local_digest.len() + self.remote_hash.len(),
            self.inner.describe_pending()
        )
    }
}

/// Factory for the redMPI-style protocol.
#[derive(Clone)]
pub struct RedMpiFactory {
    degree: usize,
    corruption: Option<CorruptionSpec>,
    report: Arc<SdcReport>,
}

impl RedMpiFactory {
    /// Dual replication with no corruption injected.
    pub fn dual(report: Arc<SdcReport>) -> Self {
        RedMpiFactory::with_degree(2, report)
    }

    /// Uniform replication at the given degree (≥ 2). Degree ≥ 3 enables
    /// majority-vote correction of single corrupted copies.
    pub fn with_degree(degree: usize, report: Arc<SdcReport>) -> Self {
        assert!(degree >= 2, "redMPI needs at least two replicas to compare");
        RedMpiFactory {
            degree,
            corruption: None,
            report,
        }
    }

    /// Replication degree of the jobs this factory builds.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Inject the given corruption.
    pub fn with_corruption(mut self, spec: CorruptionSpec) -> Self {
        self.corruption = Some(spec);
        self
    }
}

impl ProtocolFactory for RedMpiFactory {
    fn physical_processes(&self, app_ranks: usize) -> usize {
        app_ranks * self.degree
    }

    fn build(&self, endpoint: EndpointId, app_ranks: usize) -> Box<dyn Protocol> {
        Box::new(RedMpiProtocol::new(
            endpoint,
            app_ranks,
            self.degree,
            self.corruption,
            Arc::clone(&self.report),
        ))
    }

    fn name(&self) -> &str {
        "redmpi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::JobBuilder;
    use sim_net::{Cluster, LogGpModel, Placement};

    fn redmpi_job(ranks: usize, factory: RedMpiFactory) -> JobBuilder {
        let degree = factory.degree();
        JobBuilder::new(ranks)
            .network(LogGpModel::fast_test_model())
            .protocol(Arc::new(factory))
            .cluster(Cluster::new(ranks * degree, 1))
            .placement(Placement::ReplicaSets { ranks, degree })
    }

    fn exchange_app(p: &mut sim_mpi::Process) -> u64 {
        let world = p.world();
        let mut acc = 0;
        if p.rank() == 0 {
            for i in 0..4u64 {
                p.send_u64s(world, 1, 1, &[i * 7]);
            }
        } else {
            for _ in 0..4 {
                let (_, v) = p.recv_u64s(world, 0, 1);
                acc += v[0];
            }
        }
        acc
    }

    #[test]
    fn clean_run_has_comparisons_but_no_mismatches() {
        let report_handle = SdcReport::new();
        let job = redmpi_job(2, RedMpiFactory::dual(Arc::clone(&report_handle)));
        let result = job.run(exchange_app);
        assert!(result.all_finished());
        assert_eq!(result.primary_results()[1], &(0 + 7 + 14 + 21));
        // Each of the 4 messages per replica set is hash-checked by the
        // receiving replica (2 replicas × 4 messages = 8 comparisons).
        assert_eq!(report_handle.comparisons(), 8);
        assert_eq!(report_handle.mismatches(), 0);
        assert_eq!(result.stats.hash_msgs(), 8);
        assert_eq!(result.stats.ack_msgs(), 0, "redMPI does not handle crashes");
    }

    #[test]
    fn injected_corruption_is_detected() {
        let report_handle = SdcReport::new();
        let corruption = CorruptionSpec {
            replica: 1,
            src_rank: 0,
            dst_rank: 1,
            seq: 2,
        };
        let job = redmpi_job(
            2,
            RedMpiFactory::dual(Arc::clone(&report_handle)).with_corruption(corruption),
        );
        let result = job.run(exchange_app);
        assert!(result.all_finished());
        // The corrupted copy travelled inside replica set 1; both receiver
        // replicas compare against the other sender's hash, so the mismatch is
        // seen twice (once by each receiver replica of rank 1).
        assert_eq!(report_handle.mismatches(), 2);
        assert!(report_handle.comparisons() >= 8);
        // Both detections carry the corrupted message's identity.
        assert_eq!(report_handle.detected_keys(), vec![(0, 2), (0, 2)]);
        // The primary replica set still computed the uncorrupted result.
        assert_eq!(result.primary_results()[1], &42);
    }

    #[test]
    fn pml_level_flip_is_detected_exactly_once() {
        // The fault-campaign SDC class corrupts the payload *below* the
        // protocol layer: the sender's hash was computed on the clean copy,
        // so only the receiver replica that got the flipped copy mismatches
        // (against the other sender's clean hash) — one detection per flip,
        // unlike the protocol-level CorruptionSpec which is seen twice.
        let report_handle = SdcReport::new();
        let job = redmpi_job(2, RedMpiFactory::dual(Arc::clone(&report_handle)))
            // Endpoint 2 is replica 1 of rank 0; corrupt its 2nd app send.
            .sdc_flip(
                EndpointId(2),
                sim_mpi::SdcFlip {
                    nth_send: 2,
                    bit: 3,
                },
            );
        let result = job.run(exchange_app);
        assert!(result.all_finished());
        assert_eq!(result.stats.sdc_flips_injected(), 1);
        assert_eq!(report_handle.mismatches(), 1);
        assert_eq!(report_handle.detected_keys(), vec![(0, 1)]);
        assert_eq!(report_handle.corrected(), 0, "two votes can only tie");
        // The primary replica set never saw the corruption.
        assert_eq!(result.primary_results()[1], &42);
    }

    #[test]
    fn degree_three_outvotes_a_single_flip() {
        // At degree 3 the corrupted copy is the minority of three votes
        // (local digest vs two clean sender hashes), so the receiver that got
        // it both detects and *corrects* the corruption. The other two
        // receiver replicas see three agreeing votes.
        let report_handle = SdcReport::new();
        let job = redmpi_job(2, RedMpiFactory::with_degree(3, Arc::clone(&report_handle)))
            // Endpoint 2 is replica 1 of rank 0 under ReplicaSets placement;
            // corrupt its 2nd app send below the protocol layer.
            .sdc_flip(
                EndpointId(2),
                sim_mpi::SdcFlip {
                    nth_send: 2,
                    bit: 3,
                },
            );
        let result = job.run(exchange_app);
        assert!(result.all_finished());
        assert_eq!(result.stats.sdc_flips_injected(), 1);
        assert_eq!(report_handle.mismatches(), 1);
        assert_eq!(
            report_handle.corrected(),
            1,
            "minority of three is outvoted"
        );
        assert_eq!(report_handle.detected_keys(), vec![(0, 1)]);
        // 3 replicas × 4 messages, each checked against 2 remote hashes.
        assert_eq!(report_handle.comparisons(), 12);
        assert_eq!(result.primary_results()[1], &42);
    }
}
