//! The mirror replication protocol (MR-MPI-style).
//!
//! In a mirror protocol every replica of the sending rank transmits the
//! application message to **every** replica of the destination rank: as long
//! as one sender replica survives, all receiver replicas get the message, so
//! no acknowledgement machinery is needed. The price is message complexity:
//! `O(q·r²)` application messages instead of the parallel protocol's
//! `O(q·r)` (Section 2.4 of the paper), which is what the
//! `ablation_mirror_vs_parallel` harness measures.
//!
//! Implementation: the primary copy (replica `k` of the sender to replica `k`
//! of the receiver) goes through the SDR engine configured with
//! [`sdr_core::AckOn::Never`]; the redundant copies are injected directly at
//! the PML with the same application-level sequence number. Receivers match
//! the primary copy; redundant copies of already-delivered sequence numbers
//! are periodically purged from the unexpected queue.

use bytes::Bytes;
use sdr_core::{AckOn, ReplicationConfig, SdrProtocol};
use sim_mpi::pml::{Pml, PmlEvent};
use sim_mpi::{
    CommId, ProtoRecvReq, ProtoSendReq, Protocol, ProtocolFactory, Rank, Status, Tag, TagSel,
};
use sim_net::EndpointId;

/// The mirror replication protocol.
pub struct MirrorProtocol {
    inner: SdrProtocol,
    degree: usize,
    /// Application-level sequence counter per destination rank (mirrors the
    /// inner protocol's counter so redundant copies carry the right id).
    send_seq: Vec<u64>,
    /// Delivered-sequence high-water mark per source rank, used to purge
    /// redundant copies from the unexpected queue.
    delivered: Vec<u64>,
    events_since_purge: u32,
    redundant_copies_sent: u64,
}

impl MirrorProtocol {
    /// Build the mirror protocol for physical process `endpoint`.
    pub fn new(endpoint: EndpointId, app_ranks: usize, degree: usize) -> Self {
        let cfg = ReplicationConfig::with_degree(degree).ack_on(AckOn::Never);
        MirrorProtocol {
            inner: SdrProtocol::new(endpoint, app_ranks, cfg),
            degree,
            send_seq: vec![0; app_ranks],
            delivered: vec![0; app_ranks],
            events_since_purge: 0,
            redundant_copies_sent: 0,
        }
    }

    /// Number of redundant (non-primary) copies this process has sent.
    pub fn redundant_copies_sent(&self) -> u64 {
        self.redundant_copies_sent
    }

    fn purge_redundant(&mut self, pml: &mut Pml) {
        let layout = self.inner.map();
        let delivered = self.delivered.clone();
        pml.purge_unexpected(|msg| {
            let src_rank = layout.rank_of(msg.src);
            (msg.aux as u64) < delivered[src_rank]
        });
    }
}

impl Protocol for MirrorProtocol {
    fn app_rank(&self) -> Rank {
        self.inner.app_rank()
    }

    fn app_size(&self) -> usize {
        self.inner.app_size()
    }

    fn replica_id(&self) -> usize {
        self.inner.replica_id()
    }

    fn is_primary(&self) -> bool {
        self.inner.is_primary()
    }

    fn isend(
        &mut self,
        pml: &mut Pml,
        dst: Rank,
        comm: CommId,
        tag: Tag,
        payload: Bytes,
    ) -> ProtoSendReq {
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        let layout = self.inner.map();
        let my_replica = self.inner.replica_id();
        // Redundant copies to every replica of the destination other than the
        // primary one handled by the inner protocol.
        for rep in 0..self.degree {
            if rep == my_replica {
                continue;
            }
            let target = layout.endpoint(dst, rep);
            pml.isend(target, comm, tag, seq as i64, payload.clone());
            self.redundant_copies_sent += 1;
        }
        self.inner.isend(pml, dst, comm, tag, payload)
    }

    fn irecv(
        &mut self,
        pml: &mut Pml,
        src: Option<Rank>,
        comm: CommId,
        tag: TagSel,
    ) -> ProtoRecvReq {
        self.inner.irecv(pml, src, comm, tag)
    }

    fn send_complete(&mut self, pml: &mut Pml, req: ProtoSendReq) -> bool {
        self.inner.send_complete(pml, req)
    }

    fn recv_complete(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> bool {
        self.inner.recv_complete(pml, req)
    }

    fn take_recv(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> Option<(Status, Bytes)> {
        let result = self.inner.take_recv(pml, req)?;
        let src = result.0.source;
        self.delivered[src] = self.delivered[src].saturating_add(1);
        Some(result)
    }

    fn free_send(&mut self, pml: &mut Pml, req: ProtoSendReq) {
        self.inner.free_send(pml, req)
    }

    fn handle_event(&mut self, pml: &mut Pml, ev: PmlEvent) {
        self.inner.handle_event(pml, ev);
        self.events_since_purge += 1;
        if self.events_since_purge >= 64 {
            self.events_since_purge = 0;
            self.purge_redundant(pml);
        }
    }

    fn finalize(&mut self, pml: &mut Pml) {
        self.purge_redundant(pml);
        self.inner.finalize(pml);
    }

    fn describe_pending(&self) -> String {
        format!("mirror protocol: {}", self.inner.describe_pending())
    }
}

/// Factory for the mirror protocol.
#[derive(Debug, Clone)]
pub struct MirrorFactory {
    degree: usize,
}

impl MirrorFactory {
    /// Mirror replication with the given degree.
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 1);
        MirrorFactory { degree }
    }

    /// Dual mirror replication.
    pub fn dual() -> Self {
        MirrorFactory::new(2)
    }
}

impl ProtocolFactory for MirrorFactory {
    fn physical_processes(&self, app_ranks: usize) -> usize {
        app_ranks * self.degree
    }

    fn build(&self, endpoint: EndpointId, app_ranks: usize) -> Box<dyn Protocol> {
        Box::new(MirrorProtocol::new(endpoint, app_ranks, self.degree))
    }

    fn name(&self) -> &str {
        "mirror"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{JobBuilder, ReduceOp};
    use sim_net::{Cluster, LogGpModel, Placement};
    use std::sync::Arc;

    fn mirror_job(ranks: usize, degree: usize) -> JobBuilder {
        JobBuilder::new(ranks)
            .network(LogGpModel::fast_test_model())
            .protocol(Arc::new(MirrorFactory::new(degree)))
            .cluster(Cluster::new(ranks * degree, 1))
            .placement(Placement::ReplicaSets { ranks, degree })
    }

    #[test]
    fn mirror_results_match_and_messages_scale_quadratically() {
        let app = |p: &mut sim_mpi::Process| {
            let world = p.world();
            let mut total = 0.0;
            for _ in 0..3 {
                total += p.allreduce_f64(world, ReduceOp::Sum, (p.rank() + 1) as f64);
            }
            total
        };
        let native = sdr_core::native_job(4)
            .network(LogGpModel::fast_test_model())
            .run(app);
        let mirror = mirror_job(4, 2).run(app);
        assert!(native.all_finished() && mirror.all_finished());
        assert_eq!(native.primary_results(), mirror.primary_results());
        // Mirror: r copies of each replica's message → r * r times the native
        // application message count (q·r²).
        assert_eq!(mirror.stats.app_msgs(), native.stats.app_msgs() * 4);
        assert_eq!(
            mirror.stats.ack_msgs(),
            0,
            "mirror needs no acknowledgements"
        );
    }

    #[test]
    fn mirror_message_blowup_vs_parallel_protocol() {
        let app = |p: &mut sim_mpi::Process| {
            let world = p.world();
            let peer = (p.rank() + 1) % p.size();
            let from = (p.rank() + p.size() - 1) % p.size();
            for _ in 0..5 {
                p.sendrecv_bytes(world, peer, 0, Bytes::from(vec![1u8; 256]), from as i64, 0);
            }
        };
        let parallel = sdr_core::replicated_job(3, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .run(app);
        let mirror = mirror_job(3, 2).run(app);
        assert!(parallel.all_finished() && mirror.all_finished());
        // Same application, same replication degree: the mirror protocol sends
        // twice as many application messages as the parallel protocol.
        assert_eq!(mirror.stats.app_msgs(), parallel.stats.app_msgs() * 2);
        // The parallel protocol pays in acks instead.
        assert!(parallel.stats.ack_msgs() > 0);
        assert_eq!(mirror.stats.ack_msgs(), 0);
    }

    #[test]
    fn degree_three_mirror_runs() {
        let report = mirror_job(2, 3).run(|p| {
            let world = p.world();
            let peer = 1 - p.rank();
            let (_, data) = p.sendrecv_bytes(
                world,
                peer,
                7,
                Bytes::from(vec![p.rank() as u8]),
                peer as i64,
                7,
            );
            data[0] as usize
        });
        assert!(report.all_finished());
        for proc in &report.processes {
            assert_eq!(proc.outcome.result(), Some(&(1 - proc.app_rank)));
        }
    }
}
