//! # repl-baselines — the replication protocols SDR-MPI is compared against
//!
//! The paper's related-work section (Section 2.4) contrasts SDR-MPI with three
//! existing MPI replication approaches. This crate implements all three on the
//! same `sim-mpi` interception layer so that the comparisons can be reproduced
//! on identical substrates:
//!
//! * [`mirror`] — the **mirror protocol** of MR-MPI: every replica of the
//!   sender transmits the message to every replica of the receiver, so the
//!   application-message complexity grows as `O(q·r²)` instead of the parallel
//!   protocol's `O(q·r)`.
//! * [`leader`] — the **leader-based parallel protocol** used by rMPI: a
//!   leader replica decides the outcome of non-deterministic operations
//!   (`MPI_ANY_SOURCE` receptions) and informs the other replicas, putting an
//!   extra decision message on the critical path of anonymous receptions.
//! * [`redmpi`] — the **redMPI-style SDC detector**: replicas additionally
//!   exchange payload hashes so receivers can detect silent data corruption;
//!   no crash tolerance (and therefore no acknowledgements).

pub mod leader;
pub mod mirror;
pub mod redmpi;

pub use leader::{LeaderFactory, LeaderParallelProtocol};
pub use mirror::{MirrorFactory, MirrorProtocol};
pub use redmpi::{CorruptionSpec, RedMpiFactory, RedMpiProtocol, SdcReport};
