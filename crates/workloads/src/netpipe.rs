//! NetPipe-style ping-pong microbenchmark (Figure 7a/7b of the paper).
//!
//! Two ranks exchange a message of a given size back and forth; the reported
//! latency is half the average round-trip time and the throughput is the
//! message size divided by that latency — exactly what NetPipe reports.
//! Running the same loop natively and under a replication protocol reproduces
//! the latency/throughput degradation curves of Figure 7.

use bytes::Bytes;
use sim_mpi::{JobBuilder, Process};
use sim_net::SimTime;

/// One point of the NetPipe sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetpipePoint {
    /// Message size in bytes.
    pub size: usize,
    /// One-way latency in microseconds.
    pub latency_us: f64,
    /// Throughput in megabits per second.
    pub throughput_mbps: f64,
}

/// The ping-pong loop run by both ranks. Returns this rank's virtual time
/// spent in the measurement loop.
pub fn ping_pong(p: &mut Process, size: usize, reps: usize) -> SimTime {
    let world = p.world();
    let payload = Bytes::from(vec![0x5Au8; size]);
    // One warm-up round, not timed.
    if p.rank() == 0 {
        p.send_bytes(world, 1, 0, payload.clone());
        p.recv_bytes(world, 1, 0);
    } else {
        p.recv_bytes(world, 0, 0);
        p.send_bytes(world, 0, 0, payload.clone());
    }
    let start = p.now();
    for _ in 0..reps {
        if p.rank() == 0 {
            p.send_bytes(world, 1, 1, payload.clone());
            p.recv_bytes(world, 1, 1);
        } else {
            p.recv_bytes(world, 0, 1);
            p.send_bytes(world, 0, 1, payload.clone());
        }
    }
    p.now() - start
}

/// Run the ping-pong for one message size on a prepared two-rank job builder
/// and convert the result into a [`NetpipePoint`].
pub fn measure(builder: JobBuilder, size: usize, reps: usize) -> NetpipePoint {
    assert!(reps > 0);
    let report = builder.run(move |p| ping_pong(p, size, reps).as_micros_f64());
    assert!(
        report.all_finished(),
        "netpipe run did not finish cleanly: {:?} crashed, {:?} deadlocked",
        report.crashed(),
        report.deadlocked()
    );
    // Rank 0 of the primary replica set measured the full round trips.
    let rank0_us: f64 = *report.primary_results()[0];
    let latency_us = rank0_us / (2.0 * reps as f64);
    let throughput_mbps = if latency_us > 0.0 {
        (size as f64 * 8.0) / latency_us
    } else {
        0.0
    };
    NetpipePoint {
        size,
        latency_us,
        throughput_mbps,
    }
}

/// The default NetPipe message-size ladder (1 B – 8 MiB, roughly the x-axis of
/// Figure 7).
pub fn default_sizes() -> Vec<usize> {
    let mut sizes = vec![1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let mut s = 1024usize;
    while s <= 8 * 1024 * 1024 {
        sizes.push(s);
        s *= 4;
    }
    sizes
}

/// Sweep the message sizes with a builder factory (one fresh job per size).
pub fn netpipe_sweep<F>(mut make_builder: F, sizes: &[usize], reps: usize) -> Vec<NetpipePoint>
where
    F: FnMut() -> JobBuilder,
{
    sizes
        .iter()
        .map(|&size| measure(make_builder(), size, reps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_core::{native_job, replicated_job, ReplicationConfig};
    use sim_net::LogGpModel;

    #[test]
    fn native_one_byte_latency_matches_calibration() {
        let point = measure(native_job(2).network(LogGpModel::infiniband_20g()), 1, 20);
        // Paper: native Open MPI one-byte latency ≈ 1.67 µs.
        assert!(
            point.latency_us > 1.4 && point.latency_us < 2.0,
            "native 1-byte latency {} µs out of range",
            point.latency_us
        );
    }

    #[test]
    fn replicated_one_byte_latency_overhead_is_noticeable_but_bounded() {
        let native = measure(native_job(2).network(LogGpModel::infiniband_20g()), 1, 20);
        let sdr = measure(
            replicated_job(2, ReplicationConfig::dual()).network(LogGpModel::infiniband_20g()),
            1,
            20,
        );
        let overhead = (sdr.latency_us - native.latency_us) / native.latency_us;
        // Paper: 1.67 µs → 2.37 µs, i.e. ≈ +42%. Accept a generous band.
        assert!(
            overhead > 0.10 && overhead < 0.90,
            "1-byte replication latency overhead {overhead} out of the expected band (native {} µs, SDR {} µs)",
            native.latency_us,
            sdr.latency_us
        );
    }

    #[test]
    fn large_message_overhead_vanishes() {
        let size = 1 << 20;
        let native = measure(native_job(2).network(LogGpModel::infiniband_20g()), size, 5);
        let sdr = measure(
            replicated_job(2, ReplicationConfig::dual()).network(LogGpModel::infiniband_20g()),
            size,
            5,
        );
        let overhead = (sdr.latency_us - native.latency_us) / native.latency_us;
        assert!(
            overhead < 0.05,
            "1 MiB replication overhead {overhead} should be below 5%"
        );
        assert!(native.throughput_mbps > 1_000.0);
    }

    #[test]
    fn throughput_grows_with_message_size() {
        let points = netpipe_sweep(
            || native_job(2).network(LogGpModel::infiniband_20g()),
            &[64, 4096, 262144],
            5,
        );
        assert!(points[0].throughput_mbps < points[1].throughput_mbps);
        assert!(points[1].throughput_mbps < points[2].throughput_mbps);
    }

    #[test]
    fn default_sizes_span_the_figure_axis() {
        let sizes = default_sizes();
        assert_eq!(*sizes.first().unwrap(), 1);
        assert_eq!(*sizes.last().unwrap(), 4 * 1024 * 1024);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }
}
