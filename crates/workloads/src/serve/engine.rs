//! The serve engine: run many validated [`JobSpec`]s concurrently over the
//! process-global carrier/stack pools and stream one [`JobRecord`] per job
//! as it completes.
//!
//! ## Isolation invariants (DESIGN.md §6)
//!
//! Every job gets its own `Fabric` — scheduler, virtual clock, statistics,
//! `FailureService` schedule, net-fault policy, and `EventTrace` are all
//! per-fabric state, so nothing protocol-visible is shared between
//! concurrently running jobs. The only process-global state jobs share is
//! the carrier-thread pool and the coroutine stack pool, and those may only
//! influence the *host-side* counters (thread/stack reuse splits, wall-clock
//! latency). [`JobRecord::deterministic_json`] is exactly the job-level
//! image that must be bit-identical between a job run alone and the same
//! job run next to arbitrary neighbours: outcomes, checksums, virtual
//! times, protocol and fault counters, and the trace digest. Host-side
//! counters live under the `"host"` key and are excluded. The
//! `tests/serve_isolation.rs` suite and the `sdr_serve --self-test` CI gate
//! both enforce the invariant through [`check_isolation`].

use super::json::Json;
use super::spec::{CrashFault, JobSpec, LayoutSpec, SpecError, WorkloadKind};
use crate::nas::NasKernel;
use sim_mpi::{JobReport, ProcessOutcome};
use sim_net::campaign::{sample_plan, CampaignConfig, FaultDistribution, PlannedFault};
use sim_net::{CarrierMode, NetFaultConfig, TraceEvent};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How one job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Every process finished.
    Finished,
    /// Some replicas crashed, every survivor finished (the loss was masked).
    Survived,
    /// A survivor reported an unrecoverable rank loss (`RankLost`).
    Aborted,
    /// At least one process deadlocked.
    Deadlocked,
    /// At least one process panicked for another reason.
    Failed,
}

impl JobStatus {
    /// Wire name of the status.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Finished => "finished",
            JobStatus::Survived => "survived",
            JobStatus::Aborted => "aborted",
            JobStatus::Deadlocked => "deadlocked",
            JobStatus::Failed => "failed",
        }
    }
}

/// Per-process outcome inside a [`JobRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessRecord {
    /// Physical endpoint id.
    pub endpoint: usize,
    /// Application rank the process played.
    pub app_rank: usize,
    /// Replica index within its rank.
    pub replica: usize,
    /// Whether the process's result is part of the job's primary output.
    pub primary: bool,
    /// Outcome kind (`"finished"`, `"crashed"`, `"deadlocked"`,
    /// `"panicked"`).
    pub outcome: &'static str,
    /// Exact bit pattern of the checksum, for finished processes.
    pub result_bits: Option<u64>,
    /// Final virtual time, nanoseconds.
    pub finish_ns: u64,
}

/// Everything the service reports about one completed job. The
/// deterministic part (everything except [`JobRecord::host`]) is a pure
/// function of the spec for `workers: 1` jobs, independent of what else the
/// server is running — that is the per-job isolation contract.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The spec's job id.
    pub id: String,
    /// The validated spec the job ran (echoed so a report is
    /// self-describing).
    pub spec: JobSpec,
    /// How the job ended.
    pub status: JobStatus,
    /// Per-process outcomes, in endpoint order.
    pub processes: Vec<ProcessRecord>,
    /// Simulated wall-clock time, nanoseconds.
    pub elapsed_ns: u64,
    /// Application messages sent.
    pub app_msgs: u64,
    /// Acknowledgement messages sent.
    pub ack_msgs: u64,
    /// All messages (app + ack + control + hash).
    pub total_msgs: u64,
    /// Total payload bytes moved.
    pub total_bytes: u64,
    /// Frames the net-fault policy dropped.
    pub msgs_dropped: u64,
    /// Extra frame copies the policy injected.
    pub msgs_duplicated: u64,
    /// Frames the policy delayed.
    pub msgs_delayed: u64,
    /// Retransmissions the send-log timeout path issued.
    pub retransmits: u64,
    /// Duplicate copies suppressed before the application saw them.
    pub dups_suppressed: u64,
    /// PML bit flips actually injected.
    pub sdc_flips_injected: u64,
    /// Processes that crashed (scheduled faults that fired).
    pub crashes: usize,
    /// Coroutine stacks leased over the job (fresh + recycled).
    pub stack_leases: u64,
    /// Peak bytes of coroutine stack this job had leased at once (0 in
    /// thread mode). Per-job by construction — see
    /// `sim_net::NetStats::record_stack_lease`.
    pub stack_bytes_peak: u64,
    /// Worker-pool size the job ran with.
    pub workers: usize,
    /// Execution mode the job actually used.
    pub carrier_mode: CarrierMode,
    /// Number of trace events recorded (0 unless the spec asked for
    /// tracing).
    pub trace_len: usize,
    /// FNV-1a digest over the ordered determinism keys of the job's trace.
    pub trace_digest: u64,
    /// The full trace, when the spec asked for it.
    pub trace: Option<Vec<TraceEvent>>,
    /// Host-side (non-deterministic) observations.
    pub host: HostRecord,
}

/// The host-side, scheduling-dependent part of a report: excluded from the
/// isolation comparison because carrier/stack reuse and wall-clock latency
/// legitimately depend on what else the server is running.
#[derive(Debug, Clone, PartialEq)]
pub struct HostRecord {
    /// Submission index within the queue.
    pub seq: usize,
    /// Real seconds from job start to completion.
    pub latency_s: f64,
    /// Carrier threads freshly spawned.
    pub threads_spawned: u64,
    /// Carrier threads recycled from the global pool.
    pub threads_reused: u64,
    /// Coroutine stacks freshly mapped.
    pub stacks_allocated: u64,
    /// Coroutine stacks recycled from the global pool.
    pub stacks_reused: u64,
}

fn hex(v: u64) -> Json {
    Json::Str(format!("{v:#018x}"))
}

fn kind_name(kind: sim_net::EventKind) -> &'static str {
    match kind {
        sim_net::EventKind::Send => "send",
        sim_net::EventKind::RecvComplete => "recv",
        sim_net::EventKind::Crash => "crash",
    }
}

/// FNV-1a over the ordered determinism keys (plus process ids) of a trace.
pub fn trace_digest(events: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    for e in events {
        mix(e.process.0 as u64);
        mix(match e.kind {
            sim_net::EventKind::Send => 0,
            sim_net::EventKind::RecvComplete => 1,
            sim_net::EventKind::Crash => 2,
        });
        mix(e.peer.map(|p| p as u64 + 1).unwrap_or(0));
        mix(e.tag.map(|t| t as u64 ^ 0x5555).unwrap_or(0));
        mix(e.payload_digest);
        mix(e.payload_len as u64);
    }
    hash
}

impl JobRecord {
    /// The full report as JSON, host observations included.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            (
                "status".to_string(),
                Json::Str(self.status.name().to_string()),
            ),
            ("spec".to_string(), self.spec.to_json()),
            ("elapsed_ns".to_string(), Json::Int(self.elapsed_ns as i64)),
            ("app_msgs".to_string(), Json::Int(self.app_msgs as i64)),
            ("ack_msgs".to_string(), Json::Int(self.ack_msgs as i64)),
            ("total_msgs".to_string(), Json::Int(self.total_msgs as i64)),
            (
                "total_bytes".to_string(),
                Json::Int(self.total_bytes as i64),
            ),
            (
                "msgs_dropped".to_string(),
                Json::Int(self.msgs_dropped as i64),
            ),
            (
                "msgs_duplicated".to_string(),
                Json::Int(self.msgs_duplicated as i64),
            ),
            (
                "msgs_delayed".to_string(),
                Json::Int(self.msgs_delayed as i64),
            ),
            (
                "retransmits".to_string(),
                Json::Int(self.retransmits as i64),
            ),
            (
                "dups_suppressed".to_string(),
                Json::Int(self.dups_suppressed as i64),
            ),
            (
                "sdc_flips_injected".to_string(),
                Json::Int(self.sdc_flips_injected as i64),
            ),
            ("crashes".to_string(), Json::Int(self.crashes as i64)),
            (
                "stack_leases".to_string(),
                Json::Int(self.stack_leases as i64),
            ),
            (
                "stack_bytes_peak".to_string(),
                Json::Int(self.stack_bytes_peak as i64),
            ),
            ("workers".to_string(), Json::Int(self.workers as i64)),
            (
                "carrier".to_string(),
                Json::Str(
                    match self.carrier_mode {
                        CarrierMode::Coroutine => "coroutine",
                        CarrierMode::Thread => "thread",
                    }
                    .to_string(),
                ),
            ),
            (
                "processes".to_string(),
                Json::Arr(
                    self.processes
                        .iter()
                        .map(|p| {
                            let mut f = vec![
                                ("endpoint".to_string(), Json::Int(p.endpoint as i64)),
                                ("app_rank".to_string(), Json::Int(p.app_rank as i64)),
                                ("replica".to_string(), Json::Int(p.replica as i64)),
                                ("primary".to_string(), Json::Bool(p.primary)),
                                ("outcome".to_string(), Json::Str(p.outcome.to_string())),
                                ("finish_ns".to_string(), Json::Int(p.finish_ns as i64)),
                            ];
                            if let Some(bits) = p.result_bits {
                                f.push(("result_bits".to_string(), hex(bits)));
                            }
                            Json::Obj(f)
                        })
                        .collect(),
                ),
            ),
            ("trace_len".to_string(), Json::Int(self.trace_len as i64)),
            ("trace_digest".to_string(), hex(self.trace_digest)),
        ];
        if let Some(events) = &self.trace {
            fields.push((
                "trace".to_string(),
                Json::Arr(
                    events
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("process".to_string(), Json::Int(e.process.0 as i64)),
                                ("kind".to_string(), Json::Str(kind_name(e.kind).to_string())),
                                (
                                    "peer".to_string(),
                                    e.peer.map(|p| Json::Int(p as i64)).unwrap_or(Json::Null),
                                ),
                                (
                                    "tag".to_string(),
                                    e.tag.map(Json::Int).unwrap_or(Json::Null),
                                ),
                                ("digest".to_string(), hex(e.payload_digest)),
                                ("len".to_string(), Json::Int(e.payload_len as i64)),
                                ("at_ns".to_string(), Json::Int(e.at.as_nanos() as i64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        fields.push((
            "host".to_string(),
            Json::Obj(vec![
                ("seq".to_string(), Json::Int(self.host.seq as i64)),
                ("latency_s".to_string(), Json::Num(self.host.latency_s)),
                (
                    "threads_spawned".to_string(),
                    Json::Int(self.host.threads_spawned as i64),
                ),
                (
                    "threads_reused".to_string(),
                    Json::Int(self.host.threads_reused as i64),
                ),
                (
                    "stacks_allocated".to_string(),
                    Json::Int(self.host.stacks_allocated as i64),
                ),
                (
                    "stacks_reused".to_string(),
                    Json::Int(self.host.stacks_reused as i64),
                ),
            ]),
        ));
        Json::Obj(fields)
    }

    /// The deterministic image of the report: the full JSON with the
    /// `"host"` object removed. For a `workers: 1` job this string is a pure
    /// function of the spec — bit-identical no matter what else the server
    /// is running — and it is exactly what the isolation tests compare.
    pub fn deterministic_json(&self) -> String {
        match self.to_json() {
            Json::Obj(fields) => {
                Json::Obj(fields.into_iter().filter(|(k, _)| k != "host").collect()).encode()
            }
            other => other.encode(),
        }
    }
}

fn rank_lost_reported(report: &JobReport<f64>) -> bool {
    report.processes.iter().any(|p| {
        !p.outcome.is_crashed()
            && matches!(&p.outcome,
                ProcessOutcome::Panicked(msg) if msg.contains("lost all") && msg.contains("replicas"))
    })
}

/// Run one job to completion on the calling thread and build its record.
/// This is the single execution path shared by the concurrent server, the
/// standalone reference runs in the isolation tests, and the bench driver —
/// sharing it is what makes "bit-identical to the same job run alone" a
/// meaningful comparison.
pub fn run_job(spec: &JobSpec, seq: usize) -> Result<JobRecord, SpecError> {
    let builder = spec.compile()?;
    let app = spec.app();
    let started = Instant::now();
    let report = builder.run(move |p| (app)(p));
    let latency_s = started.elapsed().as_secs_f64();
    let crashes = report.crashed().len();
    let mut deadlocked = false;
    let mut failed = false;
    let processes: Vec<ProcessRecord> = report
        .processes
        .iter()
        .map(|p| {
            let (outcome, result_bits) = match &p.outcome {
                ProcessOutcome::Finished(v) => ("finished", Some(v.to_bits())),
                ProcessOutcome::Crashed { .. } => ("crashed", None),
                ProcessOutcome::Deadlocked { .. } => {
                    deadlocked = true;
                    ("deadlocked", None)
                }
                ProcessOutcome::Panicked(_) => {
                    failed = true;
                    ("panicked", None)
                }
            };
            ProcessRecord {
                endpoint: p.endpoint.0,
                app_rank: p.app_rank,
                replica: p.replica,
                primary: p.primary,
                outcome,
                result_bits,
                finish_ns: p.finish_time.as_nanos(),
            }
        })
        .collect();
    let status = if rank_lost_reported(&report) {
        JobStatus::Aborted
    } else if deadlocked {
        JobStatus::Deadlocked
    } else if failed {
        JobStatus::Failed
    } else if crashes > 0 {
        JobStatus::Survived
    } else {
        JobStatus::Finished
    };
    let events = report.trace.events();
    let stats = &report.stats;
    Ok(JobRecord {
        id: spec.id.clone(),
        spec: spec.clone(),
        status,
        processes,
        elapsed_ns: report.elapsed.as_nanos(),
        app_msgs: stats.app_msgs(),
        ack_msgs: stats.ack_msgs(),
        total_msgs: stats.total_msgs(),
        total_bytes: stats.total_bytes(),
        msgs_dropped: stats.msgs_dropped(),
        msgs_duplicated: stats.msgs_duplicated(),
        msgs_delayed: stats.msgs_delayed(),
        retransmits: stats.retransmits(),
        dups_suppressed: stats.dups_suppressed(),
        sdc_flips_injected: stats.sdc_flips_injected(),
        crashes,
        stack_leases: stats.stacks_allocated() + stats.stacks_reused(),
        stack_bytes_peak: stats.stack_bytes_peak(),
        workers: report.workers,
        carrier_mode: report.carrier_mode,
        trace_len: events.len(),
        trace_digest: trace_digest(&events),
        trace: spec.trace.then_some(events),
        host: HostRecord {
            seq,
            latency_s,
            threads_spawned: report.threads_spawned as u64,
            threads_reused: report.threads_reused as u64,
            stacks_allocated: stats.stacks_allocated(),
            stacks_reused: stats.stacks_reused(),
        },
    })
}

/// One submitted queue entry: a validated spec or a typed rejection.
#[derive(Debug, Clone)]
pub enum Submission {
    /// A validated job.
    Spec(JobSpec),
    /// A line that failed validation, with its 1-based line number.
    Invalid {
        /// 1-based line number in the queue.
        line: usize,
        /// Why it was rejected.
        error: SpecError,
    },
}

/// Parse a whole queue file: one JSON spec per line; blank lines and
/// `#`-comments are skipped. Malformed lines become [`Submission::Invalid`]
/// — the caller decides whether to stop or stream an error report.
pub fn parse_queue(text: &str) -> Vec<Submission> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(i, l)| match JobSpec::parse_line(l.trim()) {
            Ok(spec) => Submission::Spec(spec),
            Err(error) => Submission::Invalid { line: i + 1, error },
        })
        .collect()
}

/// A streamed server event.
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// A job finished (events arrive in completion order).
    Completed(Box<JobRecord>),
    /// A queue line was rejected.
    Rejected {
        /// 1-based line number.
        line: usize,
        /// The typed error.
        error: SpecError,
    },
}

impl ServeEvent {
    /// The event as one JSON line.
    pub fn to_json(&self) -> Json {
        match self {
            ServeEvent::Completed(record) => record.to_json(),
            ServeEvent::Rejected { line, error } => Json::Obj(vec![
                ("status".to_string(), Json::Str("rejected".to_string())),
                ("line".to_string(), Json::Int(*line as i64)),
                ("error".to_string(), Json::Str(error.to_string())),
            ]),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Jobs run concurrently (each still gets its own fabric; this only
    /// bounds how many are in flight at once). 0 is clamped to 1.
    pub max_concurrent: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_concurrent: 4 }
    }
}

/// End-of-run summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSummary {
    /// Jobs completed.
    pub completed: usize,
    /// Queue lines rejected.
    pub rejected: usize,
    /// Completed jobs that aborted with `RankLost`.
    pub aborted: usize,
    /// Completed jobs that deadlocked or failed.
    pub failed: usize,
    /// Real seconds the whole queue took.
    pub host_secs: f64,
    /// Sustained throughput over the queue.
    pub jobs_per_minute: f64,
}

/// Run a parsed queue: rejected lines are streamed first, then every
/// validated job runs (at most `max_concurrent` in flight) and its record
/// is streamed in completion order. The sink runs on the calling thread.
/// Nothing in this loop panics on malformed input — validation happened at
/// parse time and job-level failures become [`JobStatus`] values.
pub fn serve<F: FnMut(ServeEvent)>(
    submissions: Vec<Submission>,
    config: ServeConfig,
    mut sink: F,
) -> ServeSummary {
    let started = Instant::now();
    let mut rejected = 0usize;
    let mut queue = VecDeque::new();
    for (seq, sub) in submissions.into_iter().enumerate() {
        match sub {
            Submission::Spec(spec) => queue.push_back((seq, spec)),
            Submission::Invalid { line, error } => {
                rejected += 1;
                sink(ServeEvent::Rejected { line, error });
            }
        }
    }
    let jobs = queue.len();
    let workers = config.max_concurrent.max(1).min(jobs.max(1));
    let queue = Arc::new(Mutex::new(queue));
    let (tx, rx) = mpsc::channel::<Box<JobRecord>>();
    let mut carriers = Vec::with_capacity(workers);
    for _ in 0..workers {
        let queue = Arc::clone(&queue);
        let tx = tx.clone();
        carriers.push(std::thread::spawn(move || loop {
            let next = queue.lock().expect("serve queue lock").pop_front();
            let Some((seq, spec)) = next else { break };
            // The spec was validated (and compiled once) at parse time, so
            // run_job cannot fail here; keep the loop panic-free anyway.
            match run_job(&spec, seq) {
                Ok(record) => {
                    if tx.send(Box::new(record)).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }));
    }
    drop(tx);
    let mut completed = 0usize;
    let mut aborted = 0usize;
    let mut failed = 0usize;
    while let Ok(record) = rx.recv() {
        completed += 1;
        match record.status {
            JobStatus::Aborted => aborted += 1,
            JobStatus::Deadlocked | JobStatus::Failed => failed += 1,
            _ => {}
        }
        sink(ServeEvent::Completed(record));
    }
    for c in carriers {
        let _ = c.join();
    }
    let host_secs = started.elapsed().as_secs_f64();
    ServeSummary {
        completed,
        rejected,
        aborted,
        failed,
        host_secs,
        jobs_per_minute: if host_secs > 0.0 {
            completed as f64 / host_secs * 60.0
        } else {
            0.0
        },
    }
}

/// Build the standard heavy mixed queue: `jobs` specs rotating through
/// clean NAS kernels, crash-surviving replicated jobs, a guaranteed
/// `RankLost` abort, lossy links, delayed acks, native baselines, and
/// partial layouts — alternating both carrier modes, all at `workers: 1` so
/// every job is exactly replayable (the isolation-check precondition).
pub fn mixed_queue(jobs: usize, seed: u64) -> Vec<JobSpec> {
    let kernels = [
        NasKernel::Bt,
        NasKernel::Cg,
        NasKernel::Ft,
        NasKernel::Mg,
        NasKernel::Sp,
    ];
    (0..jobs)
        .map(|slot| {
            let jseed = seed.wrapping_add(slot as u64);
            let carrier = if slot % 2 == 0 {
                CarrierMode::Coroutine
            } else {
                CarrierMode::Thread
            };
            let base = JobSpec {
                id: format!("job-{slot:03}"),
                workload: WorkloadKind::Collective { iterations: 6 },
                ranks: 4,
                class: "test".to_string(),
                layout: LayoutSpec::Replicated { degree: 2 },
                carrier_mode: Some(carrier),
                workers: Some(1),
                seed: jseed,
                crashes: Vec::new(),
                sdc: Vec::new(),
                net_faults: None,
                trace: false,
            };
            match slot % 6 {
                // Clean NAS kernel, dual replication.
                0 => JobSpec {
                    workload: WorkloadKind::Nas(kernels[slot / 6 % kernels.len()]),
                    trace: true,
                    ..base
                },
                // Survivable single-replica crash mid-collective.
                1 => JobSpec {
                    crashes: vec![CrashFault {
                        endpoint: (jseed % 8) as usize,
                        schedule: sim_net::CrashSchedule::AfterSend { nth: 1 + jseed % 4 },
                    }],
                    ..base
                },
                // Guaranteed abort: both replicas of one rank die
                // (correlated pair loss sampled from the campaign planner).
                2 => {
                    let cfg = CampaignConfig {
                        ranks: 2,
                        degree: 2,
                        dist: FaultDistribution::CorrelatedPairLoss {
                            mean_sends: 3,
                            horizon_sends: 3,
                        },
                    };
                    let crashes = sample_plan(cfg, 7 + jseed % 4)
                        .faults
                        .iter()
                        .filter_map(|f| match *f {
                            PlannedFault::Crash { endpoint, schedule } => Some(CrashFault {
                                endpoint: endpoint.0,
                                schedule,
                            }),
                            _ => None,
                        })
                        .collect();
                    JobSpec {
                        ranks: 2,
                        crashes,
                        ..base
                    }
                }
                // Lossy links over a ring exchange.
                3 => JobSpec {
                    workload: WorkloadKind::Ring { iterations: 8 },
                    net_faults: Some(super::spec::NetFaultSpec {
                        config: NetFaultConfig::lossy_links(),
                        seed: jseed,
                    }),
                    trace: slot % 4 == 3,
                    ..base
                },
                // Native (unreplicated) clean baseline.
                4 => JobSpec {
                    workload: WorkloadKind::Nas(kernels[(slot / 6 + 2) % kernels.len()]),
                    layout: LayoutSpec::Native,
                    ..base
                },
                // Delayed acks over the collective app, partial layout.
                _ => JobSpec {
                    layout: LayoutSpec::Partial {
                        replicated: vec![0, 1],
                    },
                    net_faults: Some(super::spec::NetFaultSpec {
                        config: NetFaultConfig::delayed_acks(),
                        seed: jseed,
                    }),
                    ..base
                },
            }
        })
        .collect()
}

/// One isolation violation: a job whose concurrent record diverged from its
/// solo record.
#[derive(Debug, Clone)]
pub struct IsolationViolation {
    /// The job id.
    pub id: String,
    /// The solo (reference) deterministic image.
    pub solo: String,
    /// The concurrent deterministic image that diverged.
    pub concurrent: String,
}

/// The isolation gate: run every spec alone (sequentially), then run the
/// whole queue concurrently, and compare each job's
/// [`JobRecord::deterministic_json`] images. Specs must be `workers: 1`
/// (exactly replayable) for the comparison to be meaningful; the function
/// asserts that. Returns the violations (empty = the isolation invariant
/// held) plus the concurrent run's summary.
pub fn check_isolation(
    specs: &[JobSpec],
    config: ServeConfig,
) -> (Vec<IsolationViolation>, ServeSummary) {
    for spec in specs {
        assert_eq!(
            spec.workers,
            Some(1),
            "isolation checks need exactly-replayable (workers: 1) jobs; '{}' is not",
            spec.id
        );
    }
    let mut solo = std::collections::BTreeMap::new();
    for (seq, spec) in specs.iter().enumerate() {
        let record = run_job(spec, seq).expect("validated spec");
        solo.insert(spec.id.clone(), record.deterministic_json());
    }
    let mut violations = Vec::new();
    let submissions = specs.iter().cloned().map(Submission::Spec).collect();
    let summary = serve(submissions, config, |event| {
        if let ServeEvent::Completed(record) = event {
            let concurrent = record.deterministic_json();
            let reference = solo.get(&record.id).expect("every job has a solo run");
            if *reference != concurrent {
                violations.push(IsolationViolation {
                    id: record.id.clone(),
                    solo: reference.clone(),
                    concurrent,
                });
            }
        }
    });
    (violations, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_job_reports_a_clean_collective() {
        let spec = JobSpec::parse_line(
            r#"{"id":"c1","workload":"collective","iterations":4,"ranks":3,"workers":1,"trace":true}"#,
        )
        .unwrap();
        let record = run_job(&spec, 0).unwrap();
        assert_eq!(record.status, JobStatus::Finished);
        assert_eq!(record.processes.len(), 6);
        let expected = crate::campaign::collective_checksum(3, 4).to_bits();
        for p in &record.processes {
            assert_eq!(p.outcome, "finished");
            assert_eq!(p.result_bits, Some(expected));
        }
        assert!(record.app_msgs > 0);
        assert!(record.trace_len > 0);
        assert_eq!(record.trace.as_ref().unwrap().len(), record.trace_len);
        assert_eq!(
            record.trace_digest,
            trace_digest(record.trace.as_ref().unwrap())
        );
        // The deterministic image hides the host object but keeps the rest.
        let det = record.deterministic_json();
        assert!(!det.contains("\"host\""));
        assert!(det.contains("\"trace_digest\""));
    }

    #[test]
    fn serve_streams_rejections_and_completions() {
        let text = "\n# a comment\n\
            {\"id\":\"ok\",\"workload\":\"ring\",\"ranks\":2,\"iterations\":3,\"workers\":1}\n\
            {\"id\":\"bad\",\"workload\":\"nope\",\"ranks\":2}\n\
            not json at all\n";
        let submissions = parse_queue(text);
        assert_eq!(submissions.len(), 3);
        let mut completed = Vec::new();
        let mut rejected = Vec::new();
        let summary = serve(submissions, ServeConfig::default(), |ev| match ev {
            ServeEvent::Completed(r) => completed.push(r.id.clone()),
            ServeEvent::Rejected { line, .. } => rejected.push(line),
        });
        assert_eq!(completed, vec!["ok".to_string()]);
        assert_eq!(rejected, vec![4, 5]);
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.rejected, 2);
        assert_eq!(summary.failed, 0);
        assert!(summary.jobs_per_minute > 0.0);
    }

    #[test]
    fn mixed_queue_covers_the_advertised_shapes() {
        let specs = mixed_queue(12, 40);
        assert_eq!(specs.len(), 12);
        // Every spec revalidates through the wire format.
        for spec in &specs {
            let re = JobSpec::parse_line(&spec.to_json().encode()).unwrap();
            assert_eq!(*spec, re);
        }
        assert!(specs.iter().any(|s| !s.crashes.is_empty()));
        assert!(specs.iter().any(|s| s.net_faults.is_some()));
        assert!(specs
            .iter()
            .any(|s| s.carrier_mode == Some(CarrierMode::Thread)));
        assert!(specs
            .iter()
            .any(|s| s.carrier_mode == Some(CarrierMode::Coroutine)));
        assert!(specs.iter().any(|s| s.layout == LayoutSpec::Native));
        assert!(specs
            .iter()
            .any(|s| matches!(s.layout, LayoutSpec::Partial { .. })));
    }

    #[test]
    fn correlated_pair_slot_aborts_with_rank_lost() {
        let specs = mixed_queue(3, 40);
        let record = run_job(&specs[2], 0).unwrap();
        assert_eq!(record.status, JobStatus::Aborted, "slot 2 must abort");
    }
}
