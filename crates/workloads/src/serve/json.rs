//! Minimal hand-rolled JSON value, parser, and encoder.
//!
//! The workspace's `serde` is a no-op vendored stand-in (`vendor/README.md`),
//! so — like the report writers in `sdr-bench` — the serve protocol carries
//! its own JSON layer. It is deliberately small: a [`Json`] tree, a
//! recursive-descent parser with byte-offset error positions, and an encoder
//! whose output the parser round-trips exactly (integers stay integers,
//! floats use Rust's shortest round-trip `Display`).

use std::fmt;

/// A parsed JSON value.
///
/// Numbers keep the integer/float distinction: a literal without `.`/`e`
/// that fits `i64` parses as [`Json::Int`], everything else as
/// [`Json::Num`]. This lets 64-bit seeds and counters round-trip without
/// passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal (no fraction or exponent, in `i64` range).
    Int(i64),
    /// Any other number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in declaration order (no deduplication: last key wins on
    /// lookup like most parsers, but encoding preserves what was built).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Non-negative integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric payload, widening integers to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Is this an object?
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Encode to compact JSON text; [`parse`] round-trips the result.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                // JSON has no NaN/Infinity; encode them as null like
                // browsers' JSON.stringify does.
                if n.is_finite() {
                    // Guarantee a float stays a float on re-parse.
                    let s = n.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth cap: malformed input must produce a typed error, never a
/// stack overflow in the server loop.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos after the last digit; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else if matches!(self.peek(), Some(b'1'..=b'9')) {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        } else {
            return Err(self.err("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2.0, "x"], "b": {"c": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn encode_round_trips() {
        let doc = Json::Obj(vec![
            ("id".to_string(), Json::Str("job \"1\"\n".to_string())),
            ("seed".to_string(), Json::Int(i64::MAX)),
            ("coverage".to_string(), Json::Num(0.375)),
            ("whole_float".to_string(), Json::Num(3.0)),
            (
                "arr".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(false), Json::Int(-3)]),
            ),
        ]);
        assert_eq!(parse(&doc.encode()).unwrap(), doc);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""A😀""#).unwrap(),
            Json::Str("A\u{1f600}".to_string())
        );
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dxx""#).is_err());
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "01", "1.", "1e", "\"a", "{}x", "nan", "\u{0007}",
            "--1", "[",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "offset in range for {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("3.0").unwrap(), Json::Num(3.0));
        assert_eq!(Json::Num(3.0).encode(), "3.0");
        assert_eq!(Json::Int(3).encode(), "3");
        // i64 overflow falls back to float.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }
}
