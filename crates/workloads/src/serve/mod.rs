//! Multi-job service mode: the simulator as a long-running server.
//!
//! `sdr-serve` (in `sdr-bench`) accepts a stream of JSON job specs — one
//! [`JobSpec`] per line — runs many jobs concurrently over the shared
//! carrier/stack pools, and streams one [`JobRecord`] per job as it
//! completes. The module splits into:
//!
//! * [`json`] — the hand-rolled JSON value/parser/encoder the wire format
//!   uses (the vendored `serde` is a no-op stand-in);
//! * [`spec`] — [`JobSpec`] validation with typed [`SpecError`]s, and the
//!   spec → [`sim_mpi::JobBuilder`] compiler;
//! * [`engine`] — [`run_job`], the concurrent [`serve`] loop, the standard
//!   [`mixed_queue`], and the [`check_isolation`] gate.
//!
//! The per-job isolation contract and its verification strategy are
//! documented on [`engine`] and in DESIGN.md §6.

pub mod engine;
pub mod json;
pub mod spec;

pub use engine::{
    check_isolation, mixed_queue, parse_queue, run_job, serve, trace_digest, HostRecord,
    IsolationViolation, JobRecord, JobStatus, ProcessRecord, ServeConfig, ServeEvent, ServeSummary,
    Submission,
};
pub use json::{Json, JsonError};
pub use spec::{CrashFault, JobSpec, LayoutSpec, NetFaultSpec, SdcFault, SpecError, WorkloadKind};
