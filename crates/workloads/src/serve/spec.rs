//! Job specifications: the line protocol `sdr-serve` accepts.
//!
//! One JSON object per line describes one simulation job — workload, ranks,
//! NAS class, replica layout, carrier mode, fault and net-fault config, and
//! seed. [`JobSpec::from_json`] validates everything up front and returns a
//! typed [`SpecError`] on any malformed input, so the server loop never
//! panics on user data; [`JobSpec::compile`] turns a validated spec into the
//! exact same [`JobBuilder`] + application closure a standalone run would
//! use, which is what makes the serve-vs-standalone bit-identity tests in
//! `tests/serve_isolation.rs` meaningful.

use super::json::{self, Json, JsonError};
use crate::campaign::{collective_app, ring_app};
use crate::nas::{run_kernel, NasConfig, NasKernel};
use sdr_core::{
    coverage_job, native_job, partial_replicated_job, replicated_job, ReplicationConfig,
};
use sim_mpi::{JobBuilder, Process, SdcFlip};
use sim_net::{CarrierMode, CrashSchedule, EndpointId, LogGpModel, NetFaultConfig, SimTime};
use std::fmt;
use std::sync::Arc;

/// Upper bound on `ranks` accepted by the service (the harness is proven to
/// 4096 ranks; see ROADMAP item 2).
pub const MAX_RANKS: usize = 4096;
/// Upper bound on the replication degree.
pub const MAX_DEGREE: usize = 8;
/// Upper bound on per-job `workers`.
pub const MAX_WORKERS: usize = 1024;
/// Upper bound on collective/ring iterations.
pub const MAX_ITERATIONS: u64 = 100_000;
/// Upper bound on the job-id length, in characters.
pub const MAX_ID_LEN: usize = 128;

/// The application a job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadKind {
    /// One of the five NAS mini-kernels, sized by the spec's `class`.
    Nas(NasKernel),
    /// The collective-heavy campaign app (ring halo + allreduce per
    /// iteration).
    Collective {
        /// Number of iterations.
        iterations: u64,
    },
    /// The pure ring exchange with kilobyte payloads.
    Ring {
        /// Number of iterations.
        iterations: u64,
    },
}

impl WorkloadKind {
    /// The wire name (`"bt"`, `"cg"`, ..., `"collective"`, `"ring"`).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Nas(NasKernel::Bt) => "bt",
            WorkloadKind::Nas(NasKernel::Cg) => "cg",
            WorkloadKind::Nas(NasKernel::Ft) => "ft",
            WorkloadKind::Nas(NasKernel::Mg) => "mg",
            WorkloadKind::Nas(NasKernel::Sp) => "sp",
            WorkloadKind::Collective { .. } => "collective",
            WorkloadKind::Ring { .. } => "ring",
        }
    }
}

/// The replica layout a job runs under.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutSpec {
    /// Unreplicated baseline.
    Native,
    /// Every rank replicated at `degree`.
    Replicated {
        /// Replication degree (2 = the paper's dual replication).
        degree: usize,
    },
    /// An explicit subset of ranks replicated at degree 2, the rest
    /// singletons.
    Partial {
        /// The replicated ranks.
        replicated: Vec<usize>,
    },
    /// The first `ceil(coverage · ranks)` ranks replicated at degree 2.
    Coverage {
        /// Replicated-rank fraction in `(0, 1]`.
        coverage: f64,
    },
}

impl LayoutSpec {
    fn name(&self) -> &'static str {
        match self {
            LayoutSpec::Native => "native",
            LayoutSpec::Replicated { .. } => "replicated",
            LayoutSpec::Partial { .. } => "partial",
            LayoutSpec::Coverage { .. } => "coverage",
        }
    }
}

/// A scheduled crash of one physical process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The physical process (endpoint) to crash.
    pub endpoint: usize,
    /// When to crash it.
    pub schedule: CrashSchedule,
}

/// A scheduled PML-level bit flip on one physical process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcFault {
    /// The physical process whose send gets corrupted.
    pub endpoint: usize,
    /// 1-based index of the application send to corrupt.
    pub nth_send: u64,
    /// Bit to flip (taken modulo the payload size in bits).
    pub bit: u32,
}

/// A transport fault policy install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultSpec {
    /// Drop/duplicate/delay rates.
    pub config: NetFaultConfig,
    /// Policy seed (the fault decisions are a pure function of
    /// `(config, seed, link, frame_index)`).
    pub seed: u64,
}

/// One validated simulation-job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen job id, echoed in the report.
    pub id: String,
    /// The application to run.
    pub workload: WorkloadKind,
    /// Number of application (logical MPI) ranks.
    pub ranks: usize,
    /// NAS problem class (`"test"`, `"s"`, or `"d"`); ignored by the
    /// collective/ring workloads.
    pub class: String,
    /// Replica layout.
    pub layout: LayoutSpec,
    /// Execution mode override (`None` keeps the build-target default).
    pub carrier_mode: Option<CarrierMode>,
    /// Scheduler worker-pool size override; `Some(1)` makes the job an
    /// exact-deterministic replay.
    pub workers: Option<usize>,
    /// Job seed, echoed in the report and used as the default net-fault
    /// policy seed.
    pub seed: u64,
    /// Scheduled crashes.
    pub crashes: Vec<CrashFault>,
    /// Scheduled PML bit flips.
    pub sdc: Vec<SdcFault>,
    /// Transport fault policy, if any.
    pub net_faults: Option<NetFaultSpec>,
    /// Record the job's [`sim_net::TraceEvent`] stream and include it in the
    /// report.
    pub trace: bool,
}

/// Why a spec was rejected. Every variant is a deterministic function of the
/// input line — the server loop turns these into error reports, never
/// panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The line is not well-formed JSON.
    Json(JsonError),
    /// The document is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    MissingField(&'static str),
    /// A field has the wrong JSON type or an out-of-domain scalar.
    WrongType {
        /// The offending field.
        field: &'static str,
        /// What the field must be.
        expected: &'static str,
    },
    /// The `id` is empty, too long, or contains control characters.
    InvalidId,
    /// `workload` names no known kernel.
    UnknownWorkload(String),
    /// `class` names no NAS problem class.
    UnknownClass(String),
    /// `layout` names no known layout.
    UnknownLayout(String),
    /// `carrier` names no known carrier mode.
    UnknownCarrierMode(String),
    /// `profile` names no known net-fault preset.
    UnknownProfile(String),
    /// `kind` names no known crash schedule.
    UnknownCrashKind(String),
    /// `ranks` outside `1..=MAX_RANKS`.
    InvalidRanks(usize),
    /// Replication degree outside `1..=MAX_DEGREE`.
    InvalidDegree(usize),
    /// Coverage outside `(0, 1]`.
    InvalidCoverage(f64),
    /// Iterations outside `1..=MAX_ITERATIONS`.
    InvalidIterations(u64),
    /// `workers` outside `1..=MAX_WORKERS`.
    InvalidWorkers(usize),
    /// The partial/coverage layout is structurally invalid (empty subset,
    /// out-of-range or duplicate rank, ...).
    InvalidLayout(String),
    /// A fault names a physical process the layout does not create.
    EndpointOutOfRange {
        /// The offending endpoint.
        endpoint: usize,
        /// Physical processes the job actually has.
        physical: usize,
    },
    /// A crash/SDC send index of 0 (they are 1-based).
    ZeroSendIndex,
    /// The net-fault rates sum past the 16-bit draw they share.
    InvalidFaultRates {
        /// `drop + dup + delay`, which must be ≤ 65 536.
        sum: u64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::NotAnObject => write!(f, "spec must be a JSON object"),
            SpecError::MissingField(field) => write!(f, "missing field '{field}'"),
            SpecError::WrongType { field, expected } => {
                write!(f, "field '{field}' must be {expected}")
            }
            SpecError::InvalidId => write!(f, "id must be 1..={MAX_ID_LEN} printable characters"),
            SpecError::UnknownWorkload(w) => write!(
                f,
                "unknown workload '{w}' (expected bt|cg|ft|mg|sp|collective|ring)"
            ),
            SpecError::UnknownClass(c) => {
                write!(f, "unknown class '{c}' (expected test|s|d)")
            }
            SpecError::UnknownLayout(l) => write!(
                f,
                "unknown layout '{l}' (expected native|replicated|partial|coverage)"
            ),
            SpecError::UnknownCarrierMode(m) => {
                write!(f, "unknown carrier mode '{m}' (expected coroutine|thread)")
            }
            SpecError::UnknownProfile(p) => write!(
                f,
                "unknown net-fault profile '{p}' (expected lossy-links|delayed-acks)"
            ),
            SpecError::UnknownCrashKind(k) => write!(
                f,
                "unknown crash kind '{k}' (expected before-send|after-send|at-time)"
            ),
            SpecError::InvalidRanks(r) => {
                write!(f, "ranks {r} outside 1..={MAX_RANKS}")
            }
            SpecError::InvalidDegree(d) => {
                write!(f, "degree {d} outside 1..={MAX_DEGREE}")
            }
            SpecError::InvalidCoverage(c) => {
                write!(f, "coverage {c} outside (0, 1]")
            }
            SpecError::InvalidIterations(i) => {
                write!(f, "iterations {i} outside 1..={MAX_ITERATIONS}")
            }
            SpecError::InvalidWorkers(w) => {
                write!(f, "workers {w} outside 1..={MAX_WORKERS}")
            }
            SpecError::InvalidLayout(msg) => write!(f, "invalid layout: {msg}"),
            SpecError::EndpointOutOfRange { endpoint, physical } => write!(
                f,
                "fault endpoint {endpoint} outside the job's {physical} physical processes"
            ),
            SpecError::ZeroSendIndex => {
                write!(f, "send indices are 1-based; 0 never fires")
            }
            SpecError::InvalidFaultRates { sum } => write!(
                f,
                "net-fault rates sum to {sum}, above the 65536 draw space"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

fn get_u64(obj: &Json, field: &'static str) -> Result<Option<u64>, SpecError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(SpecError::WrongType {
            field,
            expected: "a non-negative integer",
        }),
    }
}

fn get_usize(obj: &Json, field: &'static str) -> Result<Option<usize>, SpecError> {
    Ok(get_u64(obj, field)?.map(|v| v as usize))
}

fn get_str<'a>(obj: &'a Json, field: &'static str) -> Result<Option<&'a str>, SpecError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or(SpecError::WrongType {
            field,
            expected: "a string",
        }),
    }
}

fn get_bool(obj: &Json, field: &'static str) -> Result<Option<bool>, SpecError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_bool().map(Some).ok_or(SpecError::WrongType {
            field,
            expected: "a boolean",
        }),
    }
}

fn require<T>(value: Option<T>, field: &'static str) -> Result<T, SpecError> {
    value.ok_or(SpecError::MissingField(field))
}

impl JobSpec {
    /// Parse and validate one queue line.
    pub fn parse_line(line: &str) -> Result<JobSpec, SpecError> {
        let doc = json::parse(line)?;
        JobSpec::from_json(&doc)
    }

    /// Build and validate a spec from a parsed JSON document.
    pub fn from_json(doc: &Json) -> Result<JobSpec, SpecError> {
        if !doc.is_obj() {
            return Err(SpecError::NotAnObject);
        }
        let id = require(get_str(doc, "id")?, "id")?.to_string();
        if id.is_empty() || id.chars().count() > MAX_ID_LEN || id.chars().any(char::is_control) {
            return Err(SpecError::InvalidId);
        }
        let ranks = require(get_usize(doc, "ranks")?, "ranks")?;
        if ranks == 0 || ranks > MAX_RANKS {
            return Err(SpecError::InvalidRanks(ranks));
        }
        let workload_name = require(get_str(doc, "workload")?, "workload")?;
        let iterations = get_u64(doc, "iterations")?.unwrap_or(6);
        if iterations == 0 || iterations > MAX_ITERATIONS {
            return Err(SpecError::InvalidIterations(iterations));
        }
        let workload = match workload_name {
            "bt" => WorkloadKind::Nas(NasKernel::Bt),
            "cg" => WorkloadKind::Nas(NasKernel::Cg),
            "ft" => WorkloadKind::Nas(NasKernel::Ft),
            "mg" => WorkloadKind::Nas(NasKernel::Mg),
            "sp" => WorkloadKind::Nas(NasKernel::Sp),
            "collective" => WorkloadKind::Collective { iterations },
            "ring" => WorkloadKind::Ring { iterations },
            other => return Err(SpecError::UnknownWorkload(other.to_string())),
        };
        let class = get_str(doc, "class")?.unwrap_or("test").to_string();
        if NasConfig::from_class_name(&class).is_none() {
            return Err(SpecError::UnknownClass(class));
        }
        let layout = match get_str(doc, "layout")?.unwrap_or("replicated") {
            "native" => LayoutSpec::Native,
            "replicated" => {
                let degree = get_usize(doc, "degree")?.unwrap_or(2);
                if degree == 0 || degree > MAX_DEGREE {
                    return Err(SpecError::InvalidDegree(degree));
                }
                LayoutSpec::Replicated { degree }
            }
            "partial" => {
                let ranks_field = require(doc.get("replicated_ranks"), "replicated_ranks")?;
                let arr = ranks_field.as_arr().ok_or(SpecError::WrongType {
                    field: "replicated_ranks",
                    expected: "an array of rank numbers",
                })?;
                let mut replicated = Vec::with_capacity(arr.len());
                for item in arr {
                    replicated.push(item.as_u64().ok_or(SpecError::WrongType {
                        field: "replicated_ranks",
                        expected: "an array of rank numbers",
                    })? as usize);
                }
                LayoutSpec::Partial { replicated }
            }
            "coverage" => {
                let coverage = doc
                    .get("coverage")
                    .ok_or(SpecError::MissingField("coverage"))?
                    .as_f64()
                    .ok_or(SpecError::WrongType {
                        field: "coverage",
                        expected: "a number",
                    })?;
                if !(coverage > 0.0 && coverage <= 1.0) {
                    return Err(SpecError::InvalidCoverage(coverage));
                }
                LayoutSpec::Coverage { coverage }
            }
            other => return Err(SpecError::UnknownLayout(other.to_string())),
        };
        let carrier_mode = match get_str(doc, "carrier")? {
            None => None,
            Some("coroutine") => Some(CarrierMode::Coroutine),
            Some("thread") => Some(CarrierMode::Thread),
            Some(other) => return Err(SpecError::UnknownCarrierMode(other.to_string())),
        };
        let workers = get_usize(doc, "workers")?;
        if let Some(w) = workers {
            if w == 0 || w > MAX_WORKERS {
                return Err(SpecError::InvalidWorkers(w));
            }
        }
        let seed = get_u64(doc, "seed")?.unwrap_or(0);
        let mut crashes = Vec::new();
        if let Some(list) = doc.get("crashes") {
            let arr = list.as_arr().ok_or(SpecError::WrongType {
                field: "crashes",
                expected: "an array of crash objects",
            })?;
            for item in arr {
                if !item.is_obj() {
                    return Err(SpecError::WrongType {
                        field: "crashes",
                        expected: "an array of crash objects",
                    });
                }
                let endpoint = require(get_usize(item, "endpoint")?, "endpoint")?;
                let schedule = match require(get_str(item, "kind")?, "kind")? {
                    "before-send" => {
                        let nth = require(get_u64(item, "nth")?, "nth")?;
                        if nth == 0 {
                            return Err(SpecError::ZeroSendIndex);
                        }
                        CrashSchedule::BeforeSend { nth }
                    }
                    "after-send" => {
                        let nth = require(get_u64(item, "nth")?, "nth")?;
                        if nth == 0 {
                            return Err(SpecError::ZeroSendIndex);
                        }
                        CrashSchedule::AfterSend { nth }
                    }
                    "at-time" => CrashSchedule::AtTime {
                        at: SimTime::from_nanos(require(get_u64(item, "at_ns")?, "at_ns")?),
                    },
                    other => return Err(SpecError::UnknownCrashKind(other.to_string())),
                };
                crashes.push(CrashFault { endpoint, schedule });
            }
        }
        let mut sdc = Vec::new();
        if let Some(list) = doc.get("sdc") {
            let arr = list.as_arr().ok_or(SpecError::WrongType {
                field: "sdc",
                expected: "an array of flip objects",
            })?;
            for item in arr {
                if !item.is_obj() {
                    return Err(SpecError::WrongType {
                        field: "sdc",
                        expected: "an array of flip objects",
                    });
                }
                let nth_send = require(get_u64(item, "nth_send")?, "nth_send")?;
                if nth_send == 0 {
                    return Err(SpecError::ZeroSendIndex);
                }
                sdc.push(SdcFault {
                    endpoint: require(get_usize(item, "endpoint")?, "endpoint")?,
                    nth_send,
                    bit: require(get_u64(item, "bit")?, "bit")? as u32,
                });
            }
        }
        let net_faults = match doc.get("net") {
            None | Some(Json::Null) => None,
            Some(net) => {
                if !net.is_obj() {
                    return Err(SpecError::WrongType {
                        field: "net",
                        expected: "an object",
                    });
                }
                let net_seed = get_u64(net, "seed")?.unwrap_or(seed);
                let config = match get_str(net, "profile")? {
                    Some("lossy-links") => NetFaultConfig::lossy_links(),
                    Some("delayed-acks") => NetFaultConfig::delayed_acks(),
                    Some(other) => return Err(SpecError::UnknownProfile(other.to_string())),
                    None => NetFaultConfig {
                        drop_per_64k: require(get_u64(net, "drop_per_64k")?, "drop_per_64k")?
                            as u32,
                        dup_per_64k: require(get_u64(net, "dup_per_64k")?, "dup_per_64k")? as u32,
                        delay_per_64k: require(get_u64(net, "delay_per_64k")?, "delay_per_64k")?
                            as u32,
                        delay_ns: require(get_u64(net, "delay_ns")?, "delay_ns")?,
                        ack_only: get_bool(net, "ack_only")?.unwrap_or(false),
                    },
                };
                let sum = config.drop_per_64k as u64
                    + config.dup_per_64k as u64
                    + config.delay_per_64k as u64;
                if sum > 65_536 {
                    return Err(SpecError::InvalidFaultRates { sum });
                }
                Some(NetFaultSpec {
                    config,
                    seed: net_seed,
                })
            }
        };
        let spec = JobSpec {
            id,
            workload,
            ranks,
            class,
            layout,
            carrier_mode,
            workers,
            seed,
            crashes,
            sdc,
            net_faults,
            trace: get_bool(doc, "trace")?.unwrap_or(false),
        };
        // Layout structure and fault endpoints are checked by actually
        // compiling the spec — the same code path the engine runs, so a spec
        // that parses cleanly can never fail (or panic) at job-start time.
        spec.compile()?;
        Ok(spec)
    }

    /// Encode the spec back to its wire form. `parse_line(to_json().encode())`
    /// reproduces the spec exactly (the property pinned by
    /// `tests/serve_spec.rs`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            (
                "workload".to_string(),
                Json::Str(self.workload.name().to_string()),
            ),
            ("ranks".to_string(), Json::Int(self.ranks as i64)),
            ("class".to_string(), Json::Str(self.class.clone())),
            (
                "layout".to_string(),
                Json::Str(self.layout.name().to_string()),
            ),
        ];
        match &self.workload {
            WorkloadKind::Collective { iterations } | WorkloadKind::Ring { iterations } => {
                fields.push(("iterations".to_string(), Json::Int(*iterations as i64)));
            }
            WorkloadKind::Nas(_) => {}
        }
        match &self.layout {
            LayoutSpec::Native => {}
            LayoutSpec::Replicated { degree } => {
                fields.push(("degree".to_string(), Json::Int(*degree as i64)));
            }
            LayoutSpec::Partial { replicated } => {
                fields.push((
                    "replicated_ranks".to_string(),
                    Json::Arr(replicated.iter().map(|&r| Json::Int(r as i64)).collect()),
                ));
            }
            LayoutSpec::Coverage { coverage } => {
                fields.push(("coverage".to_string(), Json::Num(*coverage)));
            }
        }
        if let Some(mode) = self.carrier_mode {
            let name = match mode {
                CarrierMode::Coroutine => "coroutine",
                CarrierMode::Thread => "thread",
            };
            fields.push(("carrier".to_string(), Json::Str(name.to_string())));
        }
        if let Some(w) = self.workers {
            fields.push(("workers".to_string(), Json::Int(w as i64)));
        }
        fields.push(("seed".to_string(), Json::Int(self.seed as i64)));
        if !self.crashes.is_empty() {
            let items = self
                .crashes
                .iter()
                .map(|c| {
                    let mut f = vec![("endpoint".to_string(), Json::Int(c.endpoint as i64))];
                    match c.schedule {
                        CrashSchedule::Never => {
                            f.push(("kind".to_string(), Json::Str("at-time".to_string())));
                            f.push(("at_ns".to_string(), Json::Int(i64::MAX)));
                        }
                        CrashSchedule::AtTime { at } => {
                            f.push(("kind".to_string(), Json::Str("at-time".to_string())));
                            f.push(("at_ns".to_string(), Json::Int(at.as_nanos() as i64)));
                        }
                        CrashSchedule::BeforeSend { nth } => {
                            f.push(("kind".to_string(), Json::Str("before-send".to_string())));
                            f.push(("nth".to_string(), Json::Int(nth as i64)));
                        }
                        CrashSchedule::AfterSend { nth } => {
                            f.push(("kind".to_string(), Json::Str("after-send".to_string())));
                            f.push(("nth".to_string(), Json::Int(nth as i64)));
                        }
                    }
                    Json::Obj(f)
                })
                .collect();
            fields.push(("crashes".to_string(), Json::Arr(items)));
        }
        if !self.sdc.is_empty() {
            let items = self
                .sdc
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("endpoint".to_string(), Json::Int(s.endpoint as i64)),
                        ("nth_send".to_string(), Json::Int(s.nth_send as i64)),
                        ("bit".to_string(), Json::Int(s.bit as i64)),
                    ])
                })
                .collect();
            fields.push(("sdc".to_string(), Json::Arr(items)));
        }
        if let Some(net) = &self.net_faults {
            fields.push((
                "net".to_string(),
                Json::Obj(vec![
                    (
                        "drop_per_64k".to_string(),
                        Json::Int(net.config.drop_per_64k as i64),
                    ),
                    (
                        "dup_per_64k".to_string(),
                        Json::Int(net.config.dup_per_64k as i64),
                    ),
                    (
                        "delay_per_64k".to_string(),
                        Json::Int(net.config.delay_per_64k as i64),
                    ),
                    (
                        "delay_ns".to_string(),
                        Json::Int(net.config.delay_ns as i64),
                    ),
                    ("ack_only".to_string(), Json::Bool(net.config.ack_only)),
                    ("seed".to_string(), Json::Int(net.seed as i64)),
                ]),
            ));
        }
        if self.trace {
            fields.push(("trace".to_string(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }

    /// The application closure the spec's workload names.
    pub fn app(&self) -> Arc<dyn Fn(&mut Process) -> f64 + Send + Sync> {
        match self.workload {
            WorkloadKind::Nas(kernel) => {
                let cfg =
                    NasConfig::from_class_name(&self.class).expect("class validated in from_json");
                Arc::new(move |p| run_kernel(kernel, p, &cfg))
            }
            WorkloadKind::Collective { iterations } => {
                Arc::new(move |p| collective_app(p, iterations))
            }
            WorkloadKind::Ring { iterations } => Arc::new(move |p| ring_app(p, iterations)),
        }
    }

    /// Compile the spec into the exact [`JobBuilder`] a standalone run would
    /// use: layout factory, fast test network model, fault installs, and the
    /// execution-layer tuning. Structural layout errors and out-of-range
    /// fault endpoints surface here as typed errors (and therefore already
    /// at [`JobSpec::from_json`] time, which calls this).
    pub fn compile(&self) -> Result<JobBuilder, SpecError> {
        let mut builder = match &self.layout {
            LayoutSpec::Native => native_job(self.ranks),
            LayoutSpec::Replicated { degree } => {
                replicated_job(self.ranks, ReplicationConfig::with_degree(*degree))
            }
            LayoutSpec::Partial { replicated } => {
                partial_replicated_job(self.ranks, replicated, ReplicationConfig::dual())
                    .map_err(|e| SpecError::InvalidLayout(format!("{e:?}")))?
            }
            LayoutSpec::Coverage { coverage } => {
                coverage_job(self.ranks, *coverage, ReplicationConfig::dual())
                    .map_err(|e| SpecError::InvalidLayout(format!("{e:?}")))?
            }
        };
        builder = builder.network(LogGpModel::fast_test_model());
        let physical = builder.physical_processes();
        for c in &self.crashes {
            if c.endpoint >= physical {
                return Err(SpecError::EndpointOutOfRange {
                    endpoint: c.endpoint,
                    physical,
                });
            }
            builder = builder.crash(EndpointId(c.endpoint), c.schedule);
        }
        for s in &self.sdc {
            if s.endpoint >= physical {
                return Err(SpecError::EndpointOutOfRange {
                    endpoint: s.endpoint,
                    physical,
                });
            }
            builder = builder.sdc_flip(
                EndpointId(s.endpoint),
                SdcFlip {
                    nth_send: s.nth_send,
                    bit: s.bit,
                },
            );
        }
        if let Some(net) = &self.net_faults {
            builder = builder.net_faults(net.config, net.seed);
        }
        if let Some(w) = self.workers {
            builder = builder.workers(w);
        }
        if let Some(mode) = self.carrier_mode {
            builder = builder.carrier_mode(mode);
        }
        builder = builder.trace(self.trace);
        Ok(builder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = JobSpec::parse_line(r#"{"id": "j1", "workload": "cg", "ranks": 4}"#).unwrap();
        assert_eq!(spec.id, "j1");
        assert_eq!(spec.workload, WorkloadKind::Nas(NasKernel::Cg));
        assert_eq!(spec.layout, LayoutSpec::Replicated { degree: 2 });
        assert_eq!(spec.class, "test");
        assert!(!spec.trace);
        assert_eq!(spec.compile().unwrap().physical_processes(), 8);
    }

    #[test]
    fn full_spec_round_trips() {
        let line = r#"{"id":"mix","workload":"collective","iterations":5,"ranks":3,
            "layout":"replicated","degree":2,"carrier":"thread","workers":1,"seed":9,
            "crashes":[{"endpoint":4,"kind":"after-send","nth":2}],
            "sdc":[{"endpoint":1,"nth_send":3,"bit":17}],
            "net":{"profile":"lossy-links","seed":11},"trace":true}"#;
        let spec = JobSpec::parse_line(line).unwrap();
        let re = JobSpec::parse_line(&spec.to_json().encode()).unwrap();
        assert_eq!(spec, re);
        assert_eq!(
            spec.net_faults.unwrap().config,
            NetFaultConfig::lossy_links()
        );
    }

    #[test]
    fn malformed_specs_give_typed_errors() {
        let cases: Vec<(&str, SpecError)> = vec![
            (r#"[]"#, SpecError::NotAnObject),
            (
                r#"{"workload":"cg","ranks":4}"#,
                SpecError::MissingField("id"),
            ),
            (
                r#"{"id":"","workload":"cg","ranks":4}"#,
                SpecError::InvalidId,
            ),
            (
                r#"{"id":"x","workload":"lu","ranks":4}"#,
                SpecError::UnknownWorkload("lu".to_string()),
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":0}"#,
                SpecError::InvalidRanks(0),
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":4,"class":"z"}"#,
                SpecError::UnknownClass("z".to_string()),
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":4,"degree":9}"#,
                SpecError::InvalidDegree(9),
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":4,"layout":"coverage","coverage":1.5}"#,
                SpecError::InvalidCoverage(1.5),
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":4,"crashes":[{"endpoint":8,"kind":"after-send","nth":1}]}"#,
                SpecError::EndpointOutOfRange {
                    endpoint: 8,
                    physical: 8,
                },
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":4,"crashes":[{"endpoint":0,"kind":"after-send","nth":0}]}"#,
                SpecError::ZeroSendIndex,
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":4,"net":{"drop_per_64k":65536,"dup_per_64k":1,"delay_per_64k":0,"delay_ns":0}}"#,
                SpecError::InvalidFaultRates { sum: 65_537 },
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":"four"}"#,
                SpecError::WrongType {
                    field: "ranks",
                    expected: "a non-negative integer",
                },
            ),
            (
                r#"{"id":"x","workload":"cg","ranks":4,"layout":"partial","replicated_ranks":[]}"#,
                SpecError::InvalidLayout("EmptyReplicatedSet".to_string()),
            ),
        ];
        for (line, want) in cases {
            assert_eq!(JobSpec::parse_line(line).unwrap_err(), want, "for {line}");
        }
        assert!(matches!(
            JobSpec::parse_line("{nope").unwrap_err(),
            SpecError::Json(_)
        ));
    }
}
