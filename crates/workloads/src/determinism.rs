//! Operational send-determinism checking (Definition 1 of the paper).
//!
//! An algorithm is send-deterministic if, for a given input, every process
//! emits the same sequence of send events in any correct execution, whatever
//! the timing or relative order of message receptions. We check this
//! operationally: run the application several times under a [`JitterModel`]
//! that perturbs per-message wire latency with a seeded pseudo-random jitter
//! (changing reception orders), record every application-level send with the
//! job trace, and compare the per-rank sequences of
//! (destination, tag, payload digest, length) across runs.
//!
//! The paper's claim (from Cappello et al., reference 5 of the paper) is that SPMD HPC codes are
//! send-deterministic while master–worker codes are not; the tests below
//! exercise both directions.

use sim_mpi::{JobBuilder, Process};
use sim_net::trace::EventKind;
use sim_net::{NetworkModel, SimTime};

/// Wraps a network model and adds a deterministic (seeded) pseudo-random
/// jitter to each message's wire time, perturbing reception orders without
/// changing any protocol behaviour.
#[derive(Debug, Clone)]
pub struct JitterModel<M> {
    inner: M,
    seed: u64,
    max_jitter_ns: u64,
    counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl<M: NetworkModel> JitterModel<M> {
    /// Wrap `inner`, adding up to `max_jitter_ns` of extra wire time per
    /// message, derived from `seed`.
    pub fn new(inner: M, seed: u64, max_jitter_ns: u64) -> Self {
        JitterModel {
            inner,
            seed,
            max_jitter_ns,
            counter: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    fn jitter(&self, salt: u64) -> u64 {
        if self.max_jitter_ns == 0 {
            return 0;
        }
        let n = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(n.wrapping_mul(0xD1B54A32D192ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) % self.max_jitter_ns
    }
}

impl<M: NetworkModel> NetworkModel for JitterModel<M> {
    fn send_overhead(&self, payload_bytes: usize, intra_node: bool) -> SimTime {
        self.inner.send_overhead(payload_bytes, intra_node)
    }

    fn recv_overhead(&self, payload_bytes: usize, intra_node: bool) -> SimTime {
        self.inner.recv_overhead(payload_bytes, intra_node)
    }

    fn wire_time(&self, payload_bytes: usize, intra_node: bool) -> SimTime {
        self.inner.wire_time(payload_bytes, intra_node)
            + SimTime::from_nanos(self.jitter(payload_bytes as u64))
    }
}

/// Result of a determinism check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismReport {
    /// Number of perturbed executions compared (including the reference).
    pub runs: usize,
    /// Ranks whose send sequences differed from the reference run, if any.
    pub divergent_ranks: Vec<usize>,
}

impl DeterminismReport {
    /// Did every rank emit the same send sequence in every run?
    pub fn is_send_deterministic(&self) -> bool {
        self.divergent_ranks.is_empty()
    }
}

/// Run `app` `runs` times under different perturbations and compare per-rank
/// send sequences. `make_builder` must produce identical job configurations
/// (the function enables tracing and installs the jitter model itself).
///
/// Each perturbed run (every run but the reference) samples a different
/// *correct execution* along two axes: seeded wire-latency jitter (changing
/// virtual arrival orders) and a seeded per-rank start-time stagger
/// (changing which process reaches each communication point first). The
/// stagger matters under the coroutine carriers, whose dispatch is fully
/// deterministic: without it, every run would schedule identically and a
/// timing-dependent pattern (the master–worker counter-example) would look
/// deterministic even though *other* correct executions order its sends
/// differently. A genuinely send-deterministic application must emit the
/// same sends whatever the timing, so neither axis may change its sequences.
pub fn check_send_determinism<F, A, R>(
    ranks: usize,
    runs: usize,
    make_builder: F,
    app: A,
) -> DeterminismReport
where
    F: Fn() -> JobBuilder,
    A: Fn(&mut Process) -> R + Send + Sync + Clone + 'static,
    R: Send + 'static,
{
    assert!(runs >= 2, "need at least two runs to compare");
    let mut sequences: Vec<Vec<Vec<_>>> = Vec::new();
    for run in 0..runs {
        let builder = make_builder()
            .network(JitterModel::new(
                sim_net::LogGpModel::fast_test_model(),
                0xC0FFEE ^ (run as u64 * 7919),
                if run == 0 { 0 } else { 5_000 },
            ))
            // Single-permit replay mode: each run is then one reproducible
            // execution uniquely determined by the jitter seed and stagger —
            // dispatch follows virtual time (`Scheduler::advance`), so the
            // perturbations translate into reception-order changes instead of
            // being washed out (or frozen) by host-level thread timing.
            .workers(1)
            .trace(true);
        let app = app.clone();
        let run_salt = run as u64;
        let report = builder.run(move |p| {
            if run_salt > 0 {
                // Stagger this rank's start by up to 20 µs (seeded, per run
                // and per rank) so perturbed runs really are different
                // executions, not replays of the reference schedule.
                let mut z = (0xA5A5_5A5A_u64 ^ run_salt.wrapping_mul(0x9E3779B97F4A7C15))
                    .wrapping_add((p.rank() as u64).wrapping_mul(0xD1B54A32D192ED03));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z ^= z >> 27;
                p.compute(SimTime::from_nanos(z % 20_000));
            }
            app(p)
        });
        assert!(
            report.all_finished(),
            "determinism-check run {run} did not finish"
        );
        let per_rank: Vec<Vec<_>> = (0..ranks)
            .map(|r| {
                report
                    .trace
                    .events_of(sim_net::EndpointId(r))
                    .into_iter()
                    .filter(|e| e.kind == EventKind::Send)
                    .map(|e| e.determinism_key())
                    .collect()
            })
            .collect();
        sequences.push(per_rank);
    }
    let reference = &sequences[0];
    let mut divergent = Vec::new();
    for rank in 0..ranks {
        if sequences.iter().any(|s| s[rank] != reference[rank]) {
            divergent.push(rank);
        }
    }
    DeterminismReport {
        runs,
        divergent_ranks: divergent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::{run_cg, NasConfig};
    use bytes::Bytes;
    use sdr_core::native_job;
    use sim_mpi::{ReduceOp, ANY_SOURCE};

    #[test]
    fn jitter_model_perturbs_wire_time_only() {
        let base = sim_net::LogGpModel::fast_test_model();
        let jittered = JitterModel::new(base, 42, 1_000);
        assert_eq!(
            jittered.send_overhead(100, false),
            base.send_overhead(100, false)
        );
        assert_eq!(
            jittered.recv_overhead(100, false),
            base.recv_overhead(100, false)
        );
        assert!(jittered.wire_time(100, false) >= base.wire_time(100, false));
    }

    #[test]
    fn cg_kernel_is_send_deterministic() {
        let cfg = NasConfig {
            local_size: 64,
            iterations: 3,
            compute_ns_per_point: 1,
        };
        let report = check_send_determinism(4, 3, || native_job(4), move |p| run_cg(p, &cfg));
        assert!(report.is_send_deterministic(), "{report:?}");
    }

    #[test]
    fn any_source_sum_is_send_deterministic() {
        // Receiving with ANY_SOURCE and summing is still send-deterministic:
        // the messages sent do not depend on the reception order.
        let report = check_send_determinism(
            4,
            3,
            || native_job(4),
            |p| {
                let world = p.world();
                if p.rank() == 0 {
                    let mut total = 0.0;
                    for _ in 0..3 {
                        let (_, v) = p.recv_f64s(world, ANY_SOURCE, 5);
                        total += v[0];
                    }
                    p.send_f64s(world, 1, 6, &[total]);
                } else {
                    p.send_f64s(world, 0, 5, &[p.rank() as f64]);
                    if p.rank() == 1 {
                        let _ = p.recv_f64s(world, 0, 6);
                    }
                }
                p.allreduce_f64(world, ReduceOp::Sum, 1.0)
            },
        );
        assert!(report.is_send_deterministic(), "{report:?}");
    }

    #[test]
    fn master_worker_is_not_send_deterministic() {
        // The classic counter-example (Section 2.1): a master hands the next
        // work item to whichever worker answers first, so the sequence of
        // destinations it sends to depends on reception order.
        let report = check_send_determinism(
            3,
            4,
            || native_job(3),
            |p| {
                let world = p.world();
                if p.rank() == 0 {
                    // Master: 6 work items, dispatched to whoever is idle.
                    for item in 0..6u64 {
                        let (status, _) = p.recv_bytes(world, ANY_SOURCE, 1);
                        p.send_u64s(world, status.source, 2, &[item]);
                    }
                    // Tell both workers to stop.
                    for w in 1..3 {
                        p.send_u64s(world, w, 3, &[u64::MAX]);
                    }
                } else {
                    // Worker: request work, process it, repeat until told to
                    // stop. Work (tag 2) and stop (tag 3) arrive on the same
                    // FIFO channel from the master, so a wildcard-tag receive
                    // picks whichever comes next.
                    loop {
                        p.send_bytes(world, 0, 1, Bytes::new());
                        let (status, _payload) = p.recv_bytes(world, 0, sim_mpi::ANY_TAG);
                        if status.tag == 3 {
                            break;
                        }
                        // Identical processing time on every worker: the
                        // master's dispatch order is then decided purely by
                        // message timing, i.e. by the injected jitter.
                        p.compute(SimTime::from_micros(10));
                    }
                }
            },
        );
        assert!(
            !report.is_send_deterministic(),
            "the master-worker pattern should be flagged as non-send-deterministic"
        );
        assert!(
            report.divergent_ranks.contains(&0),
            "the master diverges: {report:?}"
        );
    }
}
