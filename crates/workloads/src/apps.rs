//! HPCCG- and CM1-like applications (Table 2 of the paper).
//!
//! These two applications matter because they contain `MPI_ANY_SOURCE`
//! receptions: the paper uses them to show that SDR-MPI's performance does not
//! degrade on anonymous receptions (contrary to the leader-based rMPI and
//! redMPI protocols).
//!
//! * [`run_hpccg`] — conjugate gradient on a 3-D chimney domain decomposed in
//!   the z direction; each mat-vec exchanges boundary planes with the up/down
//!   neighbours, and the receives use `MPI_ANY_SOURCE` (the sender is
//!   identified from the status), plus the usual dot-product allreduces.
//! * [`run_cm1`] — an atmospheric-model-like stencil on a 2-D process grid:
//!   per step, halo exchange with the four neighbours using `MPI_ANY_SOURCE`
//!   receives, local advection/diffusion update, and a CFL allreduce every few
//!   steps.

use sim_mpi::datatype::{bytes_to_f64s, f64s_to_bytes};
use sim_mpi::{Process, ReduceOp, ANY_SOURCE};
use sim_net::SimTime;

/// Configuration shared by the two applications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppConfig {
    /// Local plane size (points per boundary plane exchanged with a
    /// neighbour).
    pub plane_points: usize,
    /// Local volume points per rank (drives the compute charge).
    pub volume_points: usize,
    /// Outer iterations (CG iterations / time steps).
    pub iterations: usize,
    /// Virtual nanoseconds of computation per volume point per iteration.
    pub compute_ns_per_point: u64,
}

impl AppConfig {
    /// Small configuration for unit tests.
    pub fn test_size() -> Self {
        AppConfig {
            plane_points: 64,
            volume_points: 2_048,
            iterations: 4,
            compute_ns_per_point: 30,
        }
    }

    /// HPCCG with the paper's 128×128×64 local domain flavour (scaled).
    pub fn hpccg_paper_like() -> Self {
        AppConfig {
            plane_points: 1_024,
            volume_points: 32_768,
            iterations: 20,
            compute_ns_per_point: 60,
        }
    }

    /// CM1 with the paper's 160×160×160 flavour (scaled).
    pub fn cm1_paper_like() -> Self {
        AppConfig {
            plane_points: 1_536,
            volume_points: 49_152,
            iterations: 16,
            compute_ns_per_point: 90,
        }
    }

    fn charge(&self, p: &mut Process, weight: f64) {
        let ns = (self.volume_points as f64 * self.compute_ns_per_point as f64 * weight) as u64;
        p.compute(SimTime::from_nanos(ns));
    }
}

/// HPCCG-like conjugate gradient with anonymous halo receptions. Returns the
/// final residual norm.
pub fn run_hpccg(p: &mut Process, cfg: &AppConfig) -> f64 {
    let world = p.world();
    let rank = p.rank();
    let size = p.size();
    let n = cfg.plane_points;
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((rank * n + i) as f64 * 0.21).sin())
        .collect();
    let mut residual = 0.0;
    for it in 0..cfg.iterations {
        // Boundary-plane exchange with up/down neighbours, received
        // anonymously (HPCCG posts wildcard receives for its neighbour
        // planes and sorts them out by inspecting the status).
        let up = if rank + 1 < size {
            Some(rank + 1)
        } else {
            None
        };
        let down = if rank > 0 { Some(rank - 1) } else { None };
        let expected = up.is_some() as usize + down.is_some() as usize;
        let mut reqs = Vec::new();
        for _ in 0..expected {
            reqs.push(p.irecv_bytes(world, ANY_SOURCE, 200 + it as i64 % 2));
        }
        let plane: Vec<f64> = x.iter().take(n).copied().collect();
        if let Some(u) = up {
            p.send_bytes(world, u, 200 + it as i64 % 2, f64s_to_bytes(&plane));
        }
        if let Some(d) = down {
            p.send_bytes(world, d, 200 + it as i64 % 2, f64s_to_bytes(&plane));
        }
        let mut halo_up = vec![0.0; n];
        let mut halo_down = vec![0.0; n];
        for req in reqs {
            let (status, payload) = p.wait(world, req);
            let values = bytes_to_f64s(&payload.expect("halo plane"));
            if Some(status.source) == up {
                halo_up = values;
            } else {
                halo_down = values;
            }
        }
        // 27-point-ish local mat-vec + CG vector updates (charged, simplified
        // numerically to a weighted neighbour sum).
        cfg.charge(p, 4.0);
        for i in 0..n {
            x[i] = 0.6 * x[i] + 0.2 * halo_up[i] + 0.2 * halo_down[i] + 1e-3;
        }
        // Two dot products per iteration (residual and search direction).
        let local: f64 = x.iter().map(|v| v * v).sum();
        residual = p.allreduce_f64(world, ReduceOp::Sum, local);
        let _alpha = p.allreduce_f64(world, ReduceOp::Sum, local * 0.5);
    }
    residual.sqrt()
}

/// CM1-like atmospheric stencil with anonymous halo receptions. Returns a
/// domain checksum.
pub fn run_cm1(p: &mut Process, cfg: &AppConfig) -> f64 {
    let world = p.world();
    let size = p.size();
    let rank = p.rank();
    // 2-D process grid.
    let mut px = (size as f64).sqrt() as usize;
    while px > 1 && size % px != 0 {
        px -= 1;
    }
    let px = px.max(1);
    let py = size / px;
    let (ix, iy) = (rank % px, rank / px);
    let n = cfg.plane_points;
    let mut field: Vec<f64> = (0..n)
        .map(|i| ((rank * 7 + i) as f64 * 0.05).cos())
        .collect();
    let neighbour = |dx: i64, dy: i64| -> Option<usize> {
        let nx = ix as i64 + dx;
        let ny = iy as i64 + dy;
        if nx < 0 || ny < 0 || nx >= px as i64 || ny >= py as i64 {
            None
        } else {
            Some(ny as usize * px + nx as usize)
        }
    };
    let mut checksum = 0.0;
    for step in 0..cfg.iterations {
        let tag = 300 + (step % 2) as i64;
        let neighbours: Vec<usize> = [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)]
            .iter()
            .filter_map(|&(dx, dy)| neighbour(dx, dy))
            .collect();
        // CM1 posts wildcard receives for all incoming halos of the step.
        let reqs: Vec<_> = (0..neighbours.len())
            .map(|_| p.irecv_bytes(world, ANY_SOURCE, tag))
            .collect();
        for &nb in &neighbours {
            p.send_bytes(world, nb, tag, f64s_to_bytes(&field));
        }
        // Collect the halos keyed by their actual sender, then combine them in
        // source order: the result is independent of the reception order, which
        // keeps the kernel send-deterministic down to the last floating-point
        // bit (the property the whole protocol relies on).
        let mut halos: Vec<(usize, Vec<f64>)> = Vec::with_capacity(reqs.len());
        for req in reqs {
            let (status, payload) = p.wait(world, req);
            halos.push((status.source, bytes_to_f64s(&payload.expect("halo"))));
        }
        halos.sort_by_key(|(src, _)| *src);
        let mut halo_sum = vec![0.0; n];
        for (_, values) in &halos {
            for (h, v) in halo_sum.iter_mut().zip(values) {
                *h += v;
            }
        }
        // Advection/diffusion update over the local volume.
        cfg.charge(p, 6.0);
        for i in 0..n {
            field[i] = 0.92 * field[i] + 0.02 * halo_sum[i] + 1e-4;
        }
        // CFL condition check every 4 steps (global max reduce).
        if step % 4 == 3 {
            let local_max = field.iter().cloned().fold(f64::MIN, f64::max);
            let _cfl = p.allreduce_f64(world, ReduceOp::Max, local_max);
        }
        checksum = p.allreduce_f64(world, ReduceOp::Sum, field.iter().sum());
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_core::{native_job, replicated_job, ReplicationConfig};
    use sim_net::LogGpModel;

    #[test]
    fn hpccg_native_equals_replicated() {
        let cfg = AppConfig::test_size();
        let app = move |p: &mut Process| run_hpccg(p, &cfg);
        let native = native_job(4)
            .network(LogGpModel::fast_test_model())
            .run(app);
        let repl = replicated_job(4, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .run(app);
        assert!(native.all_finished() && repl.all_finished());
        assert_eq!(native.primary_results(), repl.primary_results());
        // Anonymous receptions must not require any leader traffic.
        assert_eq!(repl.stats.control_msgs(), 0);
    }

    #[test]
    fn cm1_native_equals_replicated() {
        let cfg = AppConfig::test_size();
        let app = move |p: &mut Process| run_cm1(p, &cfg);
        let native = native_job(4)
            .network(LogGpModel::fast_test_model())
            .run(app);
        let repl = replicated_job(4, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .run(app);
        assert!(native.all_finished() && repl.all_finished());
        assert_eq!(native.primary_results(), repl.primary_results());
        assert_eq!(repl.stats.control_msgs(), 0);
    }

    #[test]
    fn hpccg_all_replicas_agree_despite_any_source() {
        // Both replicas of every rank must compute the same residual even
        // though their reception orders may differ.
        let cfg = AppConfig::test_size();
        let repl = replicated_job(4, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .run(move |p| run_hpccg(p, &cfg));
        assert!(repl.all_finished());
        for rank in 0..4 {
            let values: Vec<f64> = repl
                .processes
                .iter()
                .filter(|pr| pr.app_rank == rank)
                .filter_map(|pr| pr.outcome.result().copied())
                .collect();
            assert_eq!(values.len(), 2);
            assert_eq!(values[0], values[1], "replicas of rank {rank} diverged");
        }
    }

    #[test]
    fn cm1_survives_replica_crash() {
        use sim_net::{CrashSchedule, EndpointId};
        let cfg = AppConfig::test_size();
        let repl = replicated_job(4, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .crash(EndpointId(6), CrashSchedule::AfterSend { nth: 6 })
            .run(move |p| run_cm1(p, &cfg));
        assert_eq!(repl.crashed(), vec![EndpointId(6)]);
        // The primary replica set is unaffected and computes the full result.
        let finished_primary = repl
            .processes
            .iter()
            .filter(|p| p.primary)
            .all(|p| p.outcome.is_finished());
        assert!(finished_primary, "primary replica set must finish");
    }
}
