//! NAS-Parallel-Benchmark-like mini-kernels (Table 1 of the paper).
//!
//! The paper measures SDR-MPI on five NAS benchmarks (BT, CG, FT, MG, SP,
//! class D, 256 ranks). We reproduce each benchmark's *communication pattern*
//! at reduced scale with real (small) numerics, and charge a calibrated
//! per-iteration computation cost to the virtual clock so that the
//! compute/communication ratio — which is what determines the replication
//! overhead percentage — is representative of a class-D execution:
//!
//! | kernel | communication pattern reproduced |
//! |--------|----------------------------------|
//! | CG     | 1-D row-block sparse mat-vec: halo exchange with both neighbours + dot-product allreduces every iteration |
//! | MG     | V-cycle over a 1-D grid hierarchy: halo exchange at every level, residual-norm allreduce per cycle |
//! | FT     | distributed 2-D FFT: local row FFTs, all-to-all transpose, column FFTs, checksum allreduce |
//! | BT     | 2-D process grid ADI: face halo exchange + pipelined line sweeps in x and y (large block messages) |
//! | SP     | same structure as BT with smaller (scalar pentadiagonal) messages and lighter per-point compute |
//!
//! Every kernel returns a checksum so that tests can assert that native and
//! replicated executions compute identical results.

use bytes::Bytes;
use sim_mpi::datatype::{bytes_to_f64s, f64s_to_bytes};
use sim_mpi::{Process, ReduceOp};
use sim_net::SimTime;

/// Which NAS-like kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasKernel {
    /// Block tridiagonal ADI-like solver.
    Bt,
    /// Conjugate gradient.
    Cg,
    /// 2-D FFT with all-to-all transposes.
    Ft,
    /// Multigrid V-cycles.
    Mg,
    /// Scalar pentadiagonal ADI-like solver.
    Sp,
}

impl NasKernel {
    /// All five kernels, in the order of the paper's Table 1.
    pub fn all() -> [NasKernel; 5] {
        [
            NasKernel::Bt,
            NasKernel::Cg,
            NasKernel::Ft,
            NasKernel::Mg,
            NasKernel::Sp,
        ]
    }

    /// The name used in the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            NasKernel::Bt => "BT",
            NasKernel::Cg => "CG",
            NasKernel::Ft => "FT",
            NasKernel::Mg => "MG",
            NasKernel::Sp => "SP",
        }
    }
}

/// Problem-size / iteration configuration for the mini-kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NasConfig {
    /// Local (per-rank) problem size (elements per rank for 1-D kernels, grid
    /// edge for 2-D kernels).
    pub local_size: usize,
    /// Number of outer iterations (CG iterations, V-cycles, FFT steps, ADI
    /// steps).
    pub iterations: usize,
    /// Virtual nanoseconds of computation charged per local grid point and
    /// per iteration. Calibrated so that the compute/communication ratio is
    /// class-D-like; see `EXPERIMENTS.md`.
    pub compute_ns_per_point: u64,
}

impl NasConfig {
    /// A quick configuration for unit tests (small, fast in real time).
    pub fn test_size() -> Self {
        NasConfig {
            local_size: 256,
            iterations: 4,
            compute_ns_per_point: 40,
        }
    }

    /// The configuration used by the Table 1 harness: large enough virtual
    /// compute per iteration to be class-D-like, small enough real data to run
    /// quickly on a laptop.
    pub fn class_d_like() -> Self {
        NasConfig {
            local_size: 4096,
            iterations: 12,
            compute_ns_per_point: 220,
        }
    }

    /// Class S, the smallest NAS problem class: tiny per-rank data and few
    /// iterations. This is the configuration the ≥64-rank scaling runs use —
    /// the point of those runs is to exercise the communication pattern and
    /// the scheduler at paper-scale process counts, not to move data.
    pub fn class_s() -> Self {
        NasConfig {
            local_size: 64,
            iterations: 3,
            compute_ns_per_point: 120,
        }
    }

    /// Parse a class name as accepted by the harness `--class` flag.
    pub fn from_class_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "s" => Some(NasConfig::class_s()),
            "d" | "d-like" => Some(NasConfig::class_d_like()),
            "test" => Some(NasConfig::test_size()),
            _ => None,
        }
    }

    fn charge_compute(&self, p: &mut Process, points: usize, weight: f64) {
        let ns = (points as f64 * self.compute_ns_per_point as f64 * weight).round() as u64;
        p.compute(SimTime::from_nanos(ns));
    }
}

/// Run one kernel and return its checksum.
pub fn run_kernel(kernel: NasKernel, p: &mut Process, cfg: &NasConfig) -> f64 {
    match kernel {
        NasKernel::Cg => run_cg(p, cfg),
        NasKernel::Mg => run_mg(p, cfg),
        NasKernel::Ft => run_ft(p, cfg),
        NasKernel::Bt => run_adi(p, cfg, AdiFlavor::Bt),
        NasKernel::Sp => run_adi(p, cfg, AdiFlavor::Sp),
    }
}

// ---------------------------------------------------------------------------
// CG: conjugate gradient on a 1-D Laplacian, row-block decomposition
// ---------------------------------------------------------------------------

/// Distributed sparse mat-vec for the 1-D Laplacian: needs one halo value from
/// each neighbour.
fn laplacian_matvec(p: &mut Process, x: &[f64], cfg: &NasConfig) -> Vec<f64> {
    let world = p.world();
    let rank = p.rank();
    let size = p.size();
    let n = x.len();
    // Exchange boundary values with neighbours (post receives first).
    let mut left_halo = 0.0;
    let mut right_halo = 0.0;
    let mut reqs = Vec::new();
    if rank > 0 {
        reqs.push((0usize, p.irecv_bytes(world, (rank - 1) as i64, 11)));
    }
    if rank + 1 < size {
        reqs.push((1usize, p.irecv_bytes(world, (rank + 1) as i64, 10)));
    }
    if rank > 0 {
        let req = p.isend_bytes(world, rank - 1, 10, f64s_to_bytes(&[x[0]]));
        p.wait(world, req);
    }
    if rank + 1 < size {
        let req = p.isend_bytes(world, rank + 1, 11, f64s_to_bytes(&[x[n - 1]]));
        p.wait(world, req);
    }
    for (side, req) in reqs {
        let (_, payload) = p.wait(world, req);
        let v = bytes_to_f64s(&payload.expect("halo payload"))[0];
        if side == 0 {
            left_halo = v;
        } else {
            right_halo = v;
        }
    }
    cfg.charge_compute(p, n, 3.0);
    let mut y = vec![0.0; n];
    for i in 0..n {
        let left = if i == 0 { left_halo } else { x[i - 1] };
        let right = if i + 1 == n { right_halo } else { x[i + 1] };
        y[i] = 2.0 * x[i] - left - right;
    }
    y
}

fn dot(p: &mut Process, a: &[f64], b: &[f64], cfg: &NasConfig) -> f64 {
    cfg.charge_compute(p, a.len(), 1.0);
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    p.allreduce_f64(p.world(), ReduceOp::Sum, local)
}

/// Conjugate gradient iterations; returns the final residual-norm checksum.
pub fn run_cg(p: &mut Process, cfg: &NasConfig) -> f64 {
    let n = cfg.local_size;
    let rank = p.rank();
    // Right-hand side: a deterministic function of the global index.
    let b: Vec<f64> = (0..n)
        .map(|i| ((rank * n + i) as f64 * 0.37).sin())
        .collect();
    let mut x = vec![0.0; n];
    let mut r = b.clone();
    let mut d = r.clone();
    let mut rr = dot(p, &r, &r, cfg);
    for _ in 0..cfg.iterations {
        let ad = laplacian_matvec(p, &d, cfg);
        let dad = dot(p, &d, &ad, cfg);
        let alpha = if dad.abs() > 1e-300 { rr / dad } else { 0.0 };
        cfg.charge_compute(p, n, 2.0);
        for i in 0..n {
            x[i] += alpha * d[i];
            r[i] -= alpha * ad[i];
        }
        let rr_new = dot(p, &r, &r, cfg);
        let beta = if rr.abs() > 1e-300 { rr_new / rr } else { 0.0 };
        rr = rr_new;
        cfg.charge_compute(p, n, 1.0);
        for i in 0..n {
            d[i] = r[i] + beta * d[i];
        }
    }
    rr.sqrt()
}

// ---------------------------------------------------------------------------
// MG: 1-D multigrid V-cycles
// ---------------------------------------------------------------------------

fn halo_exchange_1d(p: &mut Process, field: &[f64], tag_base: i64) -> (f64, f64) {
    let world = p.world();
    let rank = p.rank();
    let size = p.size();
    let n = field.len();
    let mut left = 0.0;
    let mut right = 0.0;
    let mut reqs = Vec::new();
    if rank > 0 {
        reqs.push((
            0usize,
            p.irecv_bytes(world, (rank - 1) as i64, tag_base + 1),
        ));
    }
    if rank + 1 < size {
        reqs.push((1usize, p.irecv_bytes(world, (rank + 1) as i64, tag_base)));
    }
    if rank > 0 {
        let req = p.isend_bytes(world, rank - 1, tag_base, f64s_to_bytes(&[field[0]]));
        p.wait(world, req);
    }
    if rank + 1 < size {
        let req = p.isend_bytes(
            world,
            rank + 1,
            tag_base + 1,
            f64s_to_bytes(&[field[n - 1]]),
        );
        p.wait(world, req);
    }
    for (side, req) in reqs {
        let (_, payload) = p.wait(world, req);
        let v = bytes_to_f64s(&payload.expect("halo payload"))[0];
        if side == 0 {
            left = v;
        } else {
            right = v;
        }
    }
    (left, right)
}

fn jacobi_smooth(p: &mut Process, u: &mut Vec<f64>, f: &[f64], cfg: &NasConfig, tag: i64) {
    let (left, right) = halo_exchange_1d(p, u, tag);
    cfg.charge_compute(p, u.len(), 2.0);
    let n = u.len();
    let old = u.clone();
    for i in 0..n {
        let l = if i == 0 { left } else { old[i - 1] };
        let r = if i + 1 == n { right } else { old[i + 1] };
        u[i] = 0.5 * (l + r + f[i]);
    }
}

/// Multigrid V-cycles; returns the final residual norm.
pub fn run_mg(p: &mut Process, cfg: &NasConfig) -> f64 {
    let levels = 4usize;
    let n = cfg.local_size.next_power_of_two().max(1 << levels);
    let rank = p.rank();
    let f: Vec<f64> = (0..n)
        .map(|i| ((rank * n + i) as f64 * 0.11).cos())
        .collect();
    let mut u = vec![0.0; n];
    for _cycle in 0..cfg.iterations {
        // Descend: smooth and restrict.
        let mut fine_f = f.clone();
        let mut grids: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        let mut level_u = u.clone();
        for level in 0..levels {
            jacobi_smooth(p, &mut level_u, &fine_f, cfg, 20 + 2 * level as i64);
            // Restriction: average pairs.
            let coarse_n = level_u.len() / 2;
            let coarse_f: Vec<f64> = (0..coarse_n)
                .map(|i| 0.5 * (fine_f[2 * i] + fine_f[2 * i + 1]))
                .collect();
            grids.push((level_u.clone(), fine_f.clone()));
            level_u = (0..coarse_n)
                .map(|i| 0.5 * (level_u[2 * i] + level_u[2 * i + 1]))
                .collect();
            fine_f = coarse_f;
        }
        // Ascend: prolongate and smooth.
        for level in (0..levels).rev() {
            let (mut fine_u, fine_f) = grids[level].clone();
            for i in 0..fine_u.len() {
                fine_u[i] += level_u[i / 2];
            }
            jacobi_smooth(p, &mut fine_u, &fine_f, cfg, 40 + 2 * level as i64);
            level_u = fine_u;
        }
        u = level_u;
        // Residual norm once per cycle (the paper's MG also reduces norms).
        let local: f64 = u.iter().map(|v| v * v).sum();
        let _norm = p.allreduce_f64(p.world(), ReduceOp::Sum, local);
    }
    let local: f64 = u.iter().map(|v| v * v).sum();
    p.allreduce_f64(p.world(), ReduceOp::Sum, local).sqrt()
}

// ---------------------------------------------------------------------------
// FT: distributed 2-D FFT (row FFTs, all-to-all transpose, column FFTs)
// ---------------------------------------------------------------------------

/// In-place iterative radix-2 FFT over (re, im) pairs.
fn fft_inplace(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Distributed FFT steps; returns a checksum of the transformed field.
pub fn run_ft(p: &mut Process, cfg: &NasConfig) -> f64 {
    let size = p.size();
    let rank = p.rank();
    // Global grid: (rows = size * rows_per_rank) x (cols = size * rows_per_rank),
    // each rank holds `rows_per_rank` full rows.
    let rows_per_rank = (cfg.local_size / size).next_power_of_two().clamp(2, 64);
    let cols = (rows_per_rank * size).next_power_of_two();
    let rows = rows_per_rank;
    let mut re: Vec<Vec<f64>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| (((rank * rows + r) * cols + c) as f64 * 0.017).sin())
                .collect()
        })
        .collect();
    let mut im: Vec<Vec<f64>> = vec![vec![0.0; cols]; rows];
    let mut checksum = 0.0;
    for _step in 0..cfg.iterations {
        // Local row FFTs.
        cfg.charge_compute(p, rows * cols, 2.5);
        for r in 0..rows {
            fft_inplace(&mut re[r], &mut im[r]);
        }
        // All-to-all transpose: block (this rank, dest) of columns. The
        // whole send slab is marshalled once, destination-major; the
        // per-destination blocks are then O(1) `Bytes::slice` views sharing
        // that single allocation instead of one marshalling + allocation per
        // destination (256 of them at paper scale).
        let block_cols = cols / size;
        let mut flat = Vec::with_capacity(rows * cols * 2);
        for dst in 0..size {
            for r in 0..rows {
                for c in 0..block_cols {
                    flat.push(re[r][dst * block_cols + c]);
                    flat.push(im[r][dst * block_cols + c]);
                }
            }
        }
        let slab = f64s_to_bytes(&flat);
        let block_bytes = rows * block_cols * 2 * std::mem::size_of::<f64>();
        let blocks: Vec<Bytes> = (0..size)
            .map(|dst| slab.slice(dst * block_bytes..(dst + 1) * block_bytes))
            .collect();
        let received = p.alltoall_bytes(p.world(), blocks);
        // Rebuild the local slab from the received blocks (transposed layout),
        // then FFT along the other dimension (still length `cols` rows locally
        // to keep the kernel simple).
        cfg.charge_compute(p, rows * cols, 1.0);
        for (src, block) in received.iter().enumerate() {
            let vals = bytes_to_f64s(block);
            for (k, chunk) in vals.chunks_exact(2).enumerate() {
                let r = k / (cols / size);
                let c = k % (cols / size);
                re[r % rows][src * (cols / size) + c] = chunk[0];
                im[r % rows][src * (cols / size) + c] = chunk[1];
            }
        }
        cfg.charge_compute(p, rows * cols, 2.5);
        for r in 0..rows {
            fft_inplace(&mut re[r], &mut im[r]);
        }
        // Checksum reduce, as NPB FT does after each evolution step.
        let local: f64 = re.iter().flatten().map(|v| v.abs()).sum::<f64>()
            + im.iter().flatten().map(|v| v.abs()).sum::<f64>();
        checksum = p.allreduce_f64(p.world(), ReduceOp::Sum, local);
    }
    checksum
}

// ---------------------------------------------------------------------------
// BT / SP: ADI-like solvers on a 2-D process grid
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdiFlavor {
    Bt,
    Sp,
}

fn process_grid(size: usize) -> (usize, usize) {
    let mut px = (size as f64).sqrt() as usize;
    while px > 1 && size % px != 0 {
        px -= 1;
    }
    (px.max(1), size / px.max(1))
}

fn run_adi(p: &mut Process, cfg: &NasConfig, flavor: AdiFlavor) -> f64 {
    let world = p.world();
    let size = p.size();
    let rank = p.rank();
    let (px, py) = process_grid(size);
    let (ix, iy) = (rank % px, rank / px);
    let edge = (cfg.local_size as f64).sqrt() as usize + 2;
    // Per-point unknowns: BT solves 5x5 blocks (heavier messages and compute),
    // SP solves scalar pentadiagonal systems.
    let (vars, weight) = match flavor {
        AdiFlavor::Bt => (5usize, 5.0),
        AdiFlavor::Sp => (1usize, 2.0),
    };
    let mut field: Vec<f64> = (0..edge * edge * vars)
        .map(|i| ((rank * 131 + i) as f64 * 0.013).sin())
        .collect();
    let neighbour = |dx: i64, dy: i64| -> Option<usize> {
        let nx = ix as i64 + dx;
        let ny = iy as i64 + dy;
        if nx < 0 || ny < 0 || nx >= px as i64 || ny >= py as i64 {
            None
        } else {
            Some(ny as usize * px + nx as usize)
        }
    };
    let mut checksum = 0.0;
    for step in 0..cfg.iterations {
        // Face halo exchange with up to 4 neighbours (post receives first).
        let face = edge * vars;
        let mut reqs = Vec::new();
        for (tag, (dx, dy)) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)].iter().enumerate() {
            if let Some(nb) = neighbour(*dx, *dy) {
                reqs.push(p.irecv_bytes(world, nb as i64, 60 + tag as i64));
            }
        }
        for (tag, (dx, dy)) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)].iter().enumerate() {
            if let Some(nb) = neighbour(*dx, *dy) {
                let boundary: Vec<f64> = field.iter().take(face).copied().collect();
                let req = p.isend_bytes(world, nb, 60 + tag as i64, f64s_to_bytes(&boundary));
                p.wait(world, req);
            }
        }
        let mut halo_sum = 0.0;
        for req in reqs {
            let (_, payload) = p.wait(world, req);
            halo_sum += bytes_to_f64s(&payload.expect("face halo"))
                .iter()
                .sum::<f64>();
        }
        // Local relaxation sweep.
        cfg.charge_compute(p, edge * edge * vars, weight);
        for v in field.iter_mut() {
            *v = 0.99 * *v + 1e-6 * halo_sum;
        }
        // Pipelined line sweep along x then y: pass a boundary line to the
        // next process in the row / column (this is the ADI structure that
        // makes BT/SP communication-latency sensitive).
        for (axis, (dx, dy)) in [(0usize, (1i64, 0i64)), (1, (0, 1))] {
            let upstream = neighbour(-dx, -dy);
            let downstream = neighbour(dx, dy);
            let tag = 70 + 2 * step as i64 % 8 + axis as i64;
            let mut line: Vec<f64> = field.iter().take(face).copied().collect();
            if let Some(up) = upstream {
                let (_, payload) = p.recv_bytes(world, up as i64, tag);
                let incoming = bytes_to_f64s(&payload);
                for (l, i) in line.iter_mut().zip(incoming) {
                    *l += 0.5 * i;
                }
            }
            cfg.charge_compute(p, edge * vars, weight);
            if let Some(down) = downstream {
                p.send_bytes(world, down, tag, f64s_to_bytes(&line));
            }
        }
        let local: f64 = field.iter().map(|v| v * v).sum();
        checksum = p.allreduce_f64(world, ReduceOp::Sum, local);
    }
    checksum
}

/// Public wrappers for the two ADI flavours.
pub fn run_bt(p: &mut Process, cfg: &NasConfig) -> f64 {
    run_adi(p, cfg, AdiFlavor::Bt)
}

/// Scalar-pentadiagonal flavour.
pub fn run_sp(p: &mut Process, cfg: &NasConfig) -> f64 {
    run_adi(p, cfg, AdiFlavor::Sp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_core::{native_job, replicated_job, ReplicationConfig};
    use sim_net::LogGpModel;

    fn run_native_and_replicated(kernel: NasKernel) -> (Vec<f64>, Vec<f64>) {
        let cfg = NasConfig::test_size();
        let app = move |p: &mut Process| run_kernel(kernel, p, &cfg);
        let native = native_job(4)
            .network(LogGpModel::fast_test_model())
            .run(app);
        let repl = replicated_job(4, ReplicationConfig::dual())
            .network(LogGpModel::fast_test_model())
            .run(app);
        assert!(native.all_finished(), "{kernel:?} native run failed");
        assert!(repl.all_finished(), "{kernel:?} replicated run failed");
        (
            native.primary_results().into_iter().copied().collect(),
            repl.primary_results().into_iter().copied().collect(),
        )
    }

    #[test]
    fn cg_native_equals_replicated() {
        let (a, b) = run_native_and_replicated(NasKernel::Cg);
        assert_eq!(a, b);
        assert!(a[0].is_finite() && a[0] > 0.0);
    }

    #[test]
    fn mg_native_equals_replicated() {
        let (a, b) = run_native_and_replicated(NasKernel::Mg);
        assert_eq!(a, b);
        assert!(a[0].is_finite());
    }

    #[test]
    fn ft_native_equals_replicated() {
        let (a, b) = run_native_and_replicated(NasKernel::Ft);
        assert_eq!(a, b);
        assert!(a[0].is_finite() && a[0] > 0.0);
    }

    #[test]
    fn bt_native_equals_replicated() {
        let (a, b) = run_native_and_replicated(NasKernel::Bt);
        assert_eq!(a, b);
        assert!(a[0].is_finite());
    }

    #[test]
    fn sp_native_equals_replicated() {
        let (a, b) = run_native_and_replicated(NasKernel::Sp);
        assert_eq!(a, b);
        assert!(a[0].is_finite());
    }

    #[test]
    fn fft_matches_naive_dft_on_small_input() {
        let n = 8;
        let input: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin()).collect();
        let mut re = input.clone();
        let mut im = vec![0.0; n];
        fft_inplace(&mut re, &mut im);
        for k in 0..n {
            let mut dr = 0.0;
            let mut di = 0.0;
            for (j, x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                dr += x * ang.cos();
                di += x * ang.sin();
            }
            assert!((re[k] - dr).abs() < 1e-9, "re[{k}]");
            assert!((im[k] - di).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn cg_converges_on_laplacian() {
        // With enough iterations the residual shrinks substantially.
        let cfg_short = NasConfig {
            local_size: 64,
            iterations: 2,
            compute_ns_per_point: 1,
        };
        let cfg_long = NasConfig {
            local_size: 64,
            iterations: 30,
            compute_ns_per_point: 1,
        };
        let short = native_job(2)
            .network(LogGpModel::fast_test_model())
            .run(move |p| run_cg(p, &cfg_short));
        let long = native_job(2)
            .network(LogGpModel::fast_test_model())
            .run(move |p| run_cg(p, &cfg_long));
        let r_short = *short.primary_results()[0];
        let r_long = *long.primary_results()[0];
        assert!(
            r_long < r_short,
            "CG residual should decrease ({r_long} vs {r_short})"
        );
    }

    #[test]
    fn process_grid_factorisation() {
        assert_eq!(process_grid(16), (4, 4));
        assert_eq!(process_grid(12), (3, 4));
        assert_eq!(process_grid(7), (1, 7));
        assert_eq!(process_grid(1), (1, 1));
    }

    #[test]
    fn kernel_names_match_table_order() {
        let names: Vec<_> = NasKernel::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["BT", "CG", "FT", "MG", "SP"]);
    }
}
