//! Native-vs-replicated comparison runner.
//!
//! The rows of the paper's Table 1 and Table 2 all have the same shape:
//! *application, native wall-clock time, replicated wall-clock time, overhead
//! in percent*. [`compare_protocols`] runs one workload under both
//! configurations on the calibrated InfiniBand-20G model and produces such a
//! row; the `sdr-bench` harness binaries print them.

use sdr_core::{mapped_job, native_job, replicated_job, ReplicaMap, ReplicationConfig};
use sim_mpi::{JobBuilder, Process};
use sim_net::{CarrierMode, LogGpModel};
use std::sync::Arc;

/// A workload packaged for comparison runs.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Display name (e.g. "CG", "HPCCG").
    pub name: String,
    /// Number of application ranks to run with.
    pub ranks: usize,
    /// The application body. Must be send-deterministic and return a checksum.
    pub app: Arc<dyn Fn(&mut Process) -> f64 + Send + Sync>,
}

impl WorkloadSpec {
    /// Package a workload.
    pub fn new<F>(name: &str, ranks: usize, app: F) -> Self
    where
        F: Fn(&mut Process) -> f64 + Send + Sync + 'static,
    {
        WorkloadSpec {
            name: name.to_string(),
            ranks,
            app: Arc::new(app),
        }
    }
}

/// Execution-layer counters of one job run, lifted from the fabric's
/// [`sim_net::StatsSnapshot`] and the job report for machine-readable
/// benchmark reports. The PR 2 delivery path took the scheduler's run-queue
/// lock once per message; `wakes_issued` is what the batched/coalesced path
/// actually paid, and
/// [`sim_net::StatsSnapshot::baseline_equivalent_wakes`] (issued +
/// suppressed + extra messages in multi-message batches) reconstructs the
/// baseline exactly. `handoffs`/`steals` vs `condvar_waits` split dispatches
/// into the direct-handoff fast path and the cold idle-permit path, and the
/// `threads_*` counters account for carrier churn against the process-global
/// [`sim_net::CarrierPool`]. In coroutine mode (`carrier_mode`), the
/// `stack_*` counters account for the user-space execution layer instead:
/// context switches performed, stacks leased fresh vs recycled from the
/// [`sim_net::StackPool`], and the job's peak leased stack bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryCounters {
    /// Scheduler wakes that unparked the target (moved it to the ready
    /// queues).
    pub wakes_issued: u64,
    /// Wakes coalesced on the lock-free fast path (or no-ops).
    pub wakes_suppressed: u64,
    /// Outbox batches pushed (one channel operation + one wake each).
    pub flushes: u64,
    /// Messages carried by those batches.
    pub flushed_msgs: u64,
    /// Mean messages per batch (0 when nothing was flushed).
    pub mean_flush_batch: f64,
    /// Dispatches where a departing carrier handed its run permit directly to
    /// a ready process from its own shard.
    pub handoffs: u64,
    /// Direct dispatches stolen from another ready shard.
    pub steals: u64,
    /// Cold-path dispatches (idle-permit grants — the old condvar handshake).
    pub condvar_waits: u64,
    /// Deliveries ingested on the delivery ladder's in-order O(1) fast path
    /// (see `sim_net::fabric`: the single-pass pipeline's common case).
    pub deliveries_direct: u64,
    /// Out-of-order deliveries buffered through the fallback heap — each one
    /// is what *every* delivery cost under the channel + pending-heap path.
    pub heap_fallbacks: u64,
    /// Carrier threads freshly spawned for the run.
    pub threads_spawned: u64,
    /// Carrier threads recycled from the process-global pool.
    pub threads_reused: u64,
    /// Execution mode the run used (coroutine stacks vs OS threads).
    pub carrier_mode: CarrierMode,
    /// Scheduler worker-pool size the run executed with.
    pub workers: u64,
    /// User-space context switches performed (coroutine mode; 0 otherwise).
    pub stack_switches: u64,
    /// Coroutine stacks freshly mapped for the run.
    pub stacks_allocated: u64,
    /// Coroutine stacks recycled from the process-global stack pool.
    pub stacks_reused: u64,
    /// Peak coroutine-stack bytes the run had leased at once (per-job, not
    /// the shared pool's resident footprint).
    pub stack_bytes_peak: u64,
    /// Host (real) seconds the run took, as opposed to simulated seconds.
    pub host_secs: f64,
}

impl DeliveryCounters {
    fn from_report<R>(report: &sim_mpi::JobReport<R>, host_secs: f64) -> Self {
        DeliveryCounters {
            wakes_issued: report.stats.wakes_issued(),
            wakes_suppressed: report.stats.wakes_suppressed(),
            flushes: report.stats.flushes(),
            flushed_msgs: report.stats.flushed_msgs(),
            mean_flush_batch: report.stats.mean_flush_batch(),
            handoffs: report.stats.handoffs(),
            steals: report.stats.steals(),
            condvar_waits: report.stats.condvar_waits(),
            deliveries_direct: report.stats.deliveries_direct(),
            heap_fallbacks: report.stats.heap_fallbacks(),
            threads_spawned: report.threads_spawned as u64,
            threads_reused: report.threads_reused as u64,
            carrier_mode: report.carrier_mode,
            workers: report.workers as u64,
            stack_switches: report.stats.stack_switches(),
            stacks_allocated: report.stats.stacks_allocated(),
            stacks_reused: report.stats.stacks_reused(),
            stack_bytes_peak: report.stats.stack_bytes_peak(),
            host_secs,
        }
    }
}

/// One row of a Table-1/Table-2-style comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Workload name.
    pub name: String,
    /// Number of application ranks.
    pub ranks: usize,
    /// Replication degree used for the replicated run (the maximum per-rank
    /// degree for partial layouts).
    pub degree: usize,
    /// Fraction of ranks with at least two replicas (1.0 for the full
    /// layouts, the configured fraction for partial replication).
    pub coverage: f64,
    /// Native simulated wall-clock time, seconds.
    pub native_secs: f64,
    /// Replicated simulated wall-clock time, seconds.
    pub replicated_secs: f64,
    /// Overhead in percent.
    pub overhead_pct: f64,
    /// Whether the native and replicated checksums agreed.
    pub results_match: bool,
    /// Application messages sent natively.
    pub native_app_msgs: u64,
    /// Application messages sent with replication.
    pub replicated_app_msgs: u64,
    /// Acknowledgement messages sent with replication.
    pub replicated_ack_msgs: u64,
    /// Wake/flush counters of the native run.
    pub native_delivery: DeliveryCounters,
    /// Wake/flush counters of the replicated run.
    pub replicated_delivery: DeliveryCounters,
}

fn checksums(report: &sim_mpi::JobReport<f64>) -> Vec<f64> {
    report.primary_results().into_iter().copied().collect()
}

/// Execution-layer tuning for comparison runs, threaded down to the
/// scheduler: `None` fields keep the [`sim_mpi::JobBuilder`] defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunTuning {
    /// Scheduler worker-pool size (how many simulated processes execute
    /// concurrently). Defaults to `min(host cores, physical processes)`.
    pub workers: Option<usize>,
    /// Execution mode: coroutine stacks (the default on supported targets)
    /// or one pooled OS thread per process.
    pub carrier_mode: Option<CarrierMode>,
}

impl RunTuning {
    /// Apply the tuning to a builder (`None` fields leave the defaults).
    pub fn apply(self, builder: JobBuilder) -> JobBuilder {
        let builder = match self.workers {
            Some(w) => builder.workers(w),
            None => builder,
        };
        match self.carrier_mode {
            Some(m) => builder.carrier_mode(m),
            None => builder,
        }
    }
}

/// Run `spec` natively and replicated (degree from `cfg`) and build the row.
pub fn compare_protocols(spec: &WorkloadSpec, cfg: ReplicationConfig) -> ComparisonRow {
    compare_protocols_tuned(spec, cfg, RunTuning::default())
}

/// Like [`compare_protocols`], with explicit execution-layer tuning. This is
/// what the ≥64-rank harness configurations go through: the scheduler
/// multiplexes the job's processes over the bounded worker pool regardless of
/// rank count.
pub fn compare_protocols_tuned(
    spec: &WorkloadSpec,
    cfg: ReplicationConfig,
    tuning: RunTuning,
) -> ComparisonRow {
    let app_native = Arc::clone(&spec.app);
    let app_repl = Arc::clone(&spec.app);
    let native_builder = tuning.apply(native_job(spec.ranks).network(LogGpModel::infiniband_20g()));
    let repl_builder =
        tuning.apply(replicated_job(spec.ranks, cfg).network(LogGpModel::infiniband_20g()));
    let started = std::time::Instant::now();
    let native = native_builder.run(move |p| (app_native)(p));
    let native_host_secs = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    let replicated = repl_builder.run(move |p| (app_repl)(p));
    let replicated_host_secs = started.elapsed().as_secs_f64();
    assert!(
        native.all_finished(),
        "{}: native run did not finish",
        spec.name
    );
    assert!(
        replicated.all_finished(),
        "{}: replicated run did not finish",
        spec.name
    );
    let native_secs = native.elapsed.as_secs_f64();
    let replicated_secs = replicated.elapsed.as_secs_f64();
    ComparisonRow {
        name: spec.name.clone(),
        ranks: spec.ranks,
        degree: cfg.degree,
        coverage: 1.0,
        native_secs,
        replicated_secs,
        overhead_pct: (replicated_secs - native_secs) / native_secs * 100.0,
        results_match: checksums(&native) == checksums(&replicated),
        native_app_msgs: native.stats.app_msgs(),
        replicated_app_msgs: replicated.stats.app_msgs(),
        replicated_ack_msgs: replicated.stats.ack_msgs(),
        native_delivery: DeliveryCounters::from_report(&native, native_host_secs),
        replicated_delivery: DeliveryCounters::from_report(&replicated, replicated_host_secs),
    }
}

/// Like [`compare_protocols_tuned`], but replicating under an arbitrary
/// [`ReplicaMap`] — partial coverage, uniform degree ≥ 3, CYCLIC numbering.
/// The row's `degree` is the map's maximum per-rank degree and `coverage`
/// its replicated-rank fraction; the native baseline is identical to the
/// full-layout comparison, so rows from both entry points chart on one axis.
pub fn compare_layout_tuned(
    spec: &WorkloadSpec,
    map: Arc<dyn ReplicaMap>,
    cfg: ReplicationConfig,
    tuning: RunTuning,
) -> ComparisonRow {
    assert_eq!(
        map.ranks(),
        spec.ranks,
        "{}: the replica map must cover the workload's ranks",
        spec.name
    );
    let app_native = Arc::clone(&spec.app);
    let app_repl = Arc::clone(&spec.app);
    let degree = map.max_degree();
    let coverage = map.coverage();
    let native_builder = tuning.apply(native_job(spec.ranks).network(LogGpModel::infiniband_20g()));
    let repl_builder =
        tuning.apply(mapped_job(Arc::clone(&map), cfg).network(LogGpModel::infiniband_20g()));
    let started = std::time::Instant::now();
    let native = native_builder.run(move |p| (app_native)(p));
    let native_host_secs = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    let replicated = repl_builder.run(move |p| (app_repl)(p));
    let replicated_host_secs = started.elapsed().as_secs_f64();
    assert!(
        native.all_finished(),
        "{}: native run did not finish",
        spec.name
    );
    assert!(
        replicated.all_finished(),
        "{}: mapped run did not finish",
        spec.name
    );
    let native_secs = native.elapsed.as_secs_f64();
    let replicated_secs = replicated.elapsed.as_secs_f64();
    ComparisonRow {
        name: spec.name.clone(),
        ranks: spec.ranks,
        degree,
        coverage,
        native_secs,
        replicated_secs,
        overhead_pct: (replicated_secs - native_secs) / native_secs * 100.0,
        results_match: checksums(&native) == checksums(&replicated),
        native_app_msgs: native.stats.app_msgs(),
        replicated_app_msgs: replicated.stats.app_msgs(),
        replicated_ack_msgs: replicated.stats.ack_msgs(),
        native_delivery: DeliveryCounters::from_report(&native, native_host_secs),
        replicated_delivery: DeliveryCounters::from_report(&replicated, replicated_host_secs),
    }
}

/// Run a workload under an arbitrary protocol factory (used by the ablation
/// harnesses to compare SDR-MPI with the mirror and leader-based baselines).
pub fn run_with_builder(spec: &WorkloadSpec, builder: JobBuilder) -> sim_mpi::JobReport<f64> {
    let app = Arc::clone(&spec.app);
    builder.run(move |p| (app)(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::{run_kernel, NasConfig, NasKernel};

    #[test]
    fn comparison_row_for_cg_is_sane() {
        let cfg = NasConfig::test_size();
        let spec = WorkloadSpec::new("CG", 4, move |p| run_kernel(NasKernel::Cg, p, &cfg));
        let row = compare_protocols(&spec, ReplicationConfig::dual());
        assert!(
            row.results_match,
            "native and replicated checksums must agree"
        );
        assert!(row.native_secs > 0.0);
        assert!(row.replicated_secs > 0.0);
        assert_eq!(row.replicated_app_msgs, row.native_app_msgs * 2);
        assert!(row.replicated_ack_msgs > 0);
        let d = &row.replicated_delivery;
        assert!(d.flushes > 0, "managed runs must push outbox batches");
        assert!(d.mean_flush_batch >= 1.0);
        assert!(
            d.wakes_issued + d.wakes_suppressed >= d.flushes,
            "every batch issues exactly one wake"
        );
        assert!(
            d.handoffs + d.steals + d.condvar_waits > 0,
            "the run must have dispatched through the scheduler"
        );
        assert!(
            d.deliveries_direct > 0,
            "deliveries must flow through the single-pass pipeline"
        );
        assert!(
            d.deliveries_direct >= d.heap_fallbacks,
            "in-order ingest must dominate: {} direct vs {} heap fallbacks",
            d.deliveries_direct,
            d.heap_fallbacks
        );
        match d.carrier_mode {
            CarrierMode::Thread => assert_eq!(
                d.threads_spawned + d.threads_reused,
                8,
                "4 ranks at dual replication need exactly 8 carrier threads"
            ),
            CarrierMode::Coroutine => {
                assert_eq!(
                    d.stacks_allocated + d.stacks_reused,
                    8,
                    "4 ranks at dual replication need exactly 8 coroutine stacks"
                );
                assert!(d.stack_switches > 0, "the run must have stack-switched");
                assert_eq!(
                    d.threads_spawned + d.threads_reused,
                    d.workers,
                    "coroutine mode hosts the whole job on the worker pool"
                );
            }
        }
        assert!(d.host_secs > 0.0);
        assert!(
            row.overhead_pct > -2.0 && row.overhead_pct < 50.0,
            "unexpected overhead {}% for a small test problem",
            row.overhead_pct
        );
    }

    #[test]
    fn partial_layout_row_scales_message_overhead_with_coverage() {
        use sdr_core::{MappingPolicy, PartialLayout};
        let cfg = NasConfig::test_size();
        let spec = WorkloadSpec::new("CG", 4, move |p| run_kernel(NasKernel::Cg, p, &cfg));
        let map = Arc::new(
            PartialLayout::with_coverage(4, 0.5, MappingPolicy::Adjacent).expect("valid layout"),
        );
        let row = compare_layout_tuned(&spec, map, ReplicationConfig::dual(), RunTuning::default());
        assert!(
            row.results_match,
            "mapped run must match the native results"
        );
        assert_eq!(row.coverage, 0.5);
        assert_eq!(row.degree, 2);
        // Each logical message is physically copied once per destination
        // replica: at half coverage the traffic sits strictly between the
        // native and full-dual volumes.
        assert!(row.replicated_app_msgs > row.native_app_msgs);
        assert!(row.replicated_app_msgs < row.native_app_msgs * 2);
    }

    #[test]
    fn class_d_like_cg_overhead_below_five_percent() {
        // The Table 1 claim, at reduced scale: with class-D-like compute
        // density the SDR-MPI overhead stays below 5%.
        let cfg = NasConfig::class_d_like();
        let spec = WorkloadSpec::new("CG", 8, move |p| run_kernel(NasKernel::Cg, p, &cfg));
        let row = compare_protocols(&spec, ReplicationConfig::dual());
        assert!(row.results_match);
        assert!(
            row.overhead_pct < 5.0,
            "CG overhead {}% exceeds the paper's 5% bound",
            row.overhead_pct
        );
    }
}
