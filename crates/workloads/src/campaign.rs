//! Fault-campaign execution: run sampled [`FaultPlan`]s, judge each case
//! against its distribution's expectation, and shrink violations to minimal
//! regression cases.
//!
//! This is the execution half of the fault-campaign engine; the planning
//! half ([`sim_net::campaign`]) samples seeded plans. For every case the
//! driver:
//!
//! 1. samples the plan for `(config, seed)` ([`sim_net::campaign::sample_plan`]),
//! 2. compiles it into a job — crashes become
//!    [`sim_mpi::JobBuilder::crash`] schedules (i.e.
//!    `FailureService::schedule` calls), soft errors become
//!    [`sim_mpi::JobBuilder::sdc_flip`] PML corruption hooks,
//! 3. runs the workload and judges the report:
//!    * single-replica-loss distributions (`exp-mtbf`, `mid-collective`)
//!      must be **survived** — every non-crashed process finishes with the
//!      closed-form checksum;
//!    * `correlated-pair` loss must **abort promptly** with
//!      `MpiError::RankLost` naming the dead rank;
//!    * `sdc` flips must be **detected** by the redMPI cross-replica hash
//!      comparison, exactly once per injected flip.
//!
//! Lossy-transport distributions (`lossy-links`, `delayed-acks`) compile
//! into a [`sim_mpi::JobBuilder::net_faults`] policy install instead: the
//! fabric drops/duplicates/delays frames per the sampled
//! [`sim_net::NetFaultConfig`], and the case must be **masked** — every
//! process finishes, the results are bit-identical to a fault-free reference
//! run of the same workload, every injected duplicate is suppressed
//! (`dups_suppressed == msgs_duplicated`), and any drop forces at least one
//! retransmission. Lossy cases rotate through the five NAS kernels plus the
//! collective-heavy app ([`lossy_workload`]), so the masking claim covers
//! halo exchanges, all-to-all transposes and pipelined sweeps, not just one
//! traffic shape.
//!
//! Any deviation is a *violation*; [`shrink_violation`] replays the case's
//! fault list under the deterministic single-worker scheduler and reduces it
//! to a locally minimal failing subset ([`sim_net::campaign::shrink_events`]),
//! emitting a ready-to-paste regression-test stanza.

use crate::nas::{run_kernel, NasConfig, NasKernel};
use crate::runner::RunTuning;
use bytes::Bytes;
use repl_baselines::{RedMpiFactory, SdcReport};
use sdr_core::{partial_replicated_job, replicated_job, ReplicationConfig};
use sim_mpi::{JobBuilder, JobReport, Process, ProcessOutcome, ReduceOp, SdcFlip};
use sim_net::campaign::{
    sample_plan, shrink_events, CampaignConfig, FaultDistribution, FaultPlan, PlannedFault,
};
use sim_net::{Cluster, CrashSchedule, LogGpModel, Placement};
use std::sync::Arc;

/// The collective-heavy campaign workload: every iteration mixes a ring
/// halo exchange (the per-rank send traffic crash schedules count) with an
/// allreduce, like the mid-collective scenario of `tests/fault_scenarios.rs`.
/// Returns the accumulated allreduce series as the checksum.
pub fn collective_app(p: &mut Process, iterations: u64) -> f64 {
    let world = p.world();
    let mut acc = 0.0f64;
    for it in 0..iterations {
        let peer = (p.rank() + 1) % p.size();
        let from = (p.rank() + p.size() - 1) % p.size();
        p.sendrecv_bytes(
            world,
            peer,
            1,
            Bytes::from(vec![it as u8; 64]),
            from as i64,
            1,
        );
        acc += p.allreduce_f64(world, ReduceOp::Sum, (p.rank() as u64 + it) as f64);
    }
    acc
}

/// Closed-form checksum of [`collective_app`]: per iteration the allreduce
/// sums `rank + it` over all ranks, accumulated over iterations.
pub fn collective_checksum(ranks: usize, iterations: u64) -> f64 {
    (0..iterations)
        .map(|it| (0..ranks as u64).map(|r| (r + it) as f64).sum::<f64>())
        .sum()
}

/// The SDC campaign workload: a pure ring exchange with kilobyte payloads —
/// exactly one application send per endpoint per iteration, so a flip's
/// `nth_send` lands iff it is in `[1, iterations]`, and every payload is
/// large enough to absorb any sampled bit index.
pub fn ring_app(p: &mut Process, iterations: u64) -> f64 {
    let world = p.world();
    let peer = (p.rank() + 1) % p.size();
    let from = (p.rank() + p.size() - 1) % p.size();
    let mut acc = 0.0f64;
    for it in 0..iterations {
        let payload = Bytes::from(vec![(it as u8).wrapping_add(p.rank() as u8); 1024]);
        let (_, data) = p.sendrecv_bytes(world, peer, 1, payload, from as i64, 1);
        acc += data[0] as f64;
    }
    acc
}

/// Transport-level fault and masking counters of one case, lifted from the
/// job's [`sim_net::StatsSnapshot`]. All zero for crash and SDC
/// distributions (no network fault policy installed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Frames the fault policy dropped at deliver time.
    pub msgs_dropped: u64,
    /// Frames the policy injected an extra copy of.
    pub msgs_duplicated: u64,
    /// Frames the policy stalled on their link.
    pub msgs_delayed: u64,
    /// Payload retransmissions the send-log timeout path issued.
    pub retransmits: u64,
    /// Duplicate copies suppressed before reaching the application.
    pub dups_suppressed: u64,
}

impl NetCounters {
    fn from_report<R>(report: &JobReport<R>) -> Self {
        NetCounters {
            msgs_dropped: report.stats.msgs_dropped(),
            msgs_duplicated: report.stats.msgs_duplicated(),
            msgs_delayed: report.stats.msgs_delayed(),
            retransmits: report.stats.retransmits(),
            dups_suppressed: report.stats.dups_suppressed(),
        }
    }

    fn accumulate(&mut self, other: &NetCounters) {
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_delayed += other.msgs_delayed;
        self.retransmits += other.retransmits;
        self.dups_suppressed += other.dups_suppressed;
    }
}

/// The verdict on one campaign case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case seed.
    pub seed: u64,
    /// The sampled plan the case ran with.
    pub plan: FaultPlan,
    /// Did the job survive (all non-crashed processes finished with the
    /// expected checksum)? Always false for abort-expected distributions.
    pub survived: bool,
    /// Did a survivor report the unrecoverable rank loss (`RankLost`)?
    pub aborted: bool,
    /// Crashes that actually fired during the run.
    pub crashes: usize,
    /// Survived runs with at least one crash: virtual seconds from the first
    /// crash to job completion (the recovery latency the campaign
    /// aggregates).
    pub recovery_latency_s: Option<f64>,
    /// Soft-error flips actually injected (a planned flip on a send index
    /// the endpoint never reached does not fire).
    pub sdc_injected: u64,
    /// Flips detected by the redMPI cross-replica comparison.
    pub sdc_detected: u64,
    /// Flips outvoted by a hash majority (degree ≥ 3 only): detected *and*
    /// attributable to the corrupt copy, so the receiver can substitute the
    /// majority payload.
    pub sdc_corrected: u64,
    /// Transport fault/masking counters (lossy-transport cases).
    pub net: NetCounters,
    /// Virtual-time overhead of the masked lossy run relative to its
    /// fault-free reference of the same workload, in percent. `None` for
    /// non-lossy distributions.
    pub masked_overhead_pct: Option<f64>,
    /// Workload the case ran ("collective", "ring", or a NAS kernel name —
    /// lossy cases rotate through the kernels by seed).
    pub workload: &'static str,
    /// Violation of the distribution's expectation, if any.
    pub violation: Option<String>,
}

fn apply_faults(mut builder: JobBuilder, faults: &[PlannedFault]) -> JobBuilder {
    for f in faults {
        builder = match *f {
            PlannedFault::Crash { endpoint, schedule } => builder.crash(endpoint, schedule),
            PlannedFault::BitFlip {
                endpoint,
                nth_send,
                bit,
            } => builder.sdc_flip(endpoint, SdcFlip { nth_send, bit }),
            PlannedFault::LossyTransport {
                config,
                policy_seed,
            } => builder.net_faults(config, policy_seed),
        };
    }
    builder
}

/// The workload a lossy-transport case runs, rotated by case seed: the five
/// NAS kernels (class-S sizing) plus the collective-heavy campaign app. The
/// returned name labels the case in reports.
pub fn lossy_workload(
    seed: u64,
    iterations: u64,
) -> (&'static str, Arc<dyn Fn(&mut Process) -> f64 + Send + Sync>) {
    let cfg = NasConfig::class_s();
    match seed % 6 {
        0 => ("BT", Arc::new(move |p| run_kernel(NasKernel::Bt, p, &cfg))),
        1 => ("CG", Arc::new(move |p| run_kernel(NasKernel::Cg, p, &cfg))),
        2 => ("FT", Arc::new(move |p| run_kernel(NasKernel::Ft, p, &cfg))),
        3 => ("MG", Arc::new(move |p| run_kernel(NasKernel::Mg, p, &cfg))),
        4 => ("SP", Arc::new(move |p| run_kernel(NasKernel::Sp, p, &cfg))),
        _ => (
            "collective",
            Arc::new(move |p| collective_app(p, iterations)),
        ),
    }
}

fn run_crash_job(
    config: CampaignConfig,
    iterations: u64,
    tuning: RunTuning,
    faults: &[PlannedFault],
) -> JobReport<f64> {
    let builder = replicated_job(config.ranks, ReplicationConfig::with_degree(config.degree))
        .network(LogGpModel::fast_test_model());
    apply_faults(tuning.apply(builder), faults).run(move |p| collective_app(p, iterations))
}

/// Does the crash report describe a fully survived run: every non-crashed
/// process finished with `expected`?
fn crash_report_survived(report: &JobReport<f64>, expected: f64) -> Option<String> {
    for proc in &report.processes {
        if proc.outcome.is_crashed() {
            continue;
        }
        match &proc.outcome {
            ProcessOutcome::Finished(v) if *v == expected => {}
            ProcessOutcome::Finished(v) => {
                return Some(format!(
                    "survivor {:?} finished with wrong checksum {v} (expected {expected})",
                    proc.endpoint
                ));
            }
            other => {
                return Some(format!(
                    "survivor {:?} did not finish: {other:?}",
                    proc.endpoint
                ));
            }
        }
    }
    None
}

/// Did a survivor report the unrecoverable rank loss?
fn rank_loss_reported(report: &JobReport<f64>) -> bool {
    report.processes.iter().any(|proc| {
        !proc.outcome.is_crashed()
            && matches!(&proc.outcome,
                ProcessOutcome::Panicked(msg) if msg.contains("lost all") && msg.contains("replicas"))
    })
}

/// Oracle for the shrinker and the checked-in regression stanzas: does
/// running [`collective_app`] under `faults` (deterministic single-worker
/// replay) violate survivability — i.e. some non-crashed process fails to
/// finish with the closed-form checksum?
pub fn crash_faults_violate_survival(
    config: CampaignConfig,
    iterations: u64,
    faults: &[PlannedFault],
) -> bool {
    let tuning = RunTuning {
        workers: Some(1),
        ..RunTuning::default()
    };
    let report = run_crash_job(config, iterations, tuning, faults);
    crash_report_survived(&report, collective_checksum(config.ranks, iterations)).is_some()
}

/// Replay the case's faulted job twice under the deterministic single-worker
/// scheduler with tracing on, and report whether the two `TraceEvent`
/// streams (and per-process finish times) are bit-identical. A `false` here
/// is a determinism violation — exactly what the shrink path minimizes.
pub fn replay_is_deterministic(config: CampaignConfig, seed: u64, iterations: u64) -> bool {
    replay_is_deterministic_tuned(config, seed, iterations, RunTuning::default())
}

/// Like [`replay_is_deterministic`], with an explicit carrier mode (the
/// `workers` field of the tuning is ignored — replay always pins a single
/// run permit). Lossy distributions replay the case's actual rotated
/// workload, so the injected drop/duplicate/delay decisions — pure functions
/// of the per-link frame counters — recur at the exact same frames.
pub fn replay_is_deterministic_tuned(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> bool {
    let plan = sample_plan(config, seed);
    let lossy = matches!(
        config.dist,
        FaultDistribution::LossyLinks { .. } | FaultDistribution::DelayedAcks { .. }
    );
    let run = || {
        let app: Arc<dyn Fn(&mut Process) -> f64 + Send + Sync> = if lossy {
            lossy_workload(seed, iterations).1
        } else {
            Arc::new(move |p: &mut Process| collective_app(p, iterations))
        };
        let mut builder =
            replicated_job(config.ranks, ReplicationConfig::with_degree(config.degree))
                .network(LogGpModel::fast_test_model())
                .workers(1)
                .trace(true);
        if let Some(mode) = tuning.carrier_mode {
            builder = builder.carrier_mode(mode);
        }
        apply_faults(builder, &plan.faults).run(move |p| (app)(p))
    };
    let a = run();
    let b = run();
    a.trace.events() == b.trace.events()
        && a.processes.len() == b.processes.len()
        && a.processes
            .iter()
            .zip(b.processes.iter())
            .all(|(pa, pb)| pa.finish_time == pb.finish_time)
}

fn run_crash_case(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    tuning: RunTuning,
    expect_abort: bool,
) -> CaseOutcome {
    let plan = sample_plan(config, seed);
    let report = run_crash_job(config, iterations, tuning, &plan.faults);
    let crashes = report.crashed().len();
    let not_survived =
        crash_report_survived(&report, collective_checksum(config.ranks, iterations));
    let survived = not_survived.is_none();
    let aborted = rank_loss_reported(&report);
    let violation = if expect_abort {
        if aborted {
            None
        } else {
            Some(format!(
                "correlated loss of both replicas was not reported as RankLost \
                 (survived={survived}, crashes={crashes})"
            ))
        }
    } else {
        not_survived
    };
    let recovery_latency_s = if survived && crashes > 0 {
        let first_crash = report
            .processes
            .iter()
            .filter_map(|p| match p.outcome {
                ProcessOutcome::Crashed { at } => Some(at),
                _ => None,
            })
            .min()
            .expect("crashes > 0");
        Some((report.elapsed - first_crash).as_secs_f64())
    } else {
        None
    };
    CaseOutcome {
        seed,
        plan,
        survived,
        aborted,
        crashes,
        recovery_latency_s,
        sdc_injected: 0,
        sdc_detected: 0,
        sdc_corrected: 0,
        net: NetCounters::default(),
        masked_overhead_pct: None,
        workload: "collective",
        violation,
    }
}

/// Run one case of the [`FaultDistribution::UnreplicatedBias`] distribution:
/// the job is built on the *partial* layout the distribution's mask
/// describes, and the verdict splits on where the sampled crash landed — a
/// replicated rank's loss must be masked, an unreplicated rank's loss must
/// abort promptly with a typed `RankLost` (never a hang or a wrong answer).
fn run_partial_bias_case(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> CaseOutcome {
    let FaultDistribution::UnreplicatedBias {
        replicated_mask, ..
    } = config.dist
    else {
        unreachable!("dispatched on UnreplicatedBias")
    };
    let plan = sample_plan(config, seed);
    let replicated: Vec<usize> = (0..config.ranks)
        .filter(|r| replicated_mask & (1u64 << r) != 0)
        .collect();
    let builder = partial_replicated_job(config.ranks, &replicated, ReplicationConfig::dual())
        .expect("campaign masks are valid layouts")
        .network(LogGpModel::fast_test_model());
    let report = apply_faults(tuning.apply(builder), &plan.faults)
        .run(move |p| collective_app(p, iterations));
    let crashes = report.crashed().len();
    // The sampler's single crash always hits endpoint `r` = the rank id;
    // coverage of that rank decides the expectation.
    let crashed_rank = plan.crashes().next().map(|(ep, _)| ep.0);
    let expect_abort = matches!(crashed_rank, Some(r) if replicated_mask & (1u64 << r) == 0);
    let not_survived =
        crash_report_survived(&report, collective_checksum(config.ranks, iterations));
    let survived = not_survived.is_none();
    let aborted = rank_loss_reported(&report);
    let violation = if expect_abort {
        if aborted {
            None
        } else {
            Some(format!(
                "unreplicated rank {crashed_rank:?} crashed but no survivor reported RankLost \
                 (survived={survived}, crashes={crashes})"
            ))
        }
    } else {
        not_survived
    };
    let recovery_latency_s = if survived && crashes > 0 {
        report
            .processes
            .iter()
            .filter_map(|p| match p.outcome {
                ProcessOutcome::Crashed { at } => Some(at),
                _ => None,
            })
            .min()
            .map(|first| (report.elapsed - first).as_secs_f64())
    } else {
        None
    };
    CaseOutcome {
        seed,
        plan,
        survived,
        aborted,
        crashes,
        recovery_latency_s,
        sdc_injected: 0,
        sdc_detected: 0,
        sdc_corrected: 0,
        net: NetCounters::default(),
        masked_overhead_pct: None,
        workload: "collective",
        violation,
    }
}

fn run_lossy_job(
    config: CampaignConfig,
    app: Arc<dyn Fn(&mut Process) -> f64 + Send + Sync>,
    tuning: RunTuning,
    faults: &[PlannedFault],
) -> JobReport<f64> {
    let builder = replicated_job(config.ranks, ReplicationConfig::with_degree(config.degree))
        .network(LogGpModel::fast_test_model());
    apply_faults(tuning.apply(builder), faults).run(move |p| (app)(p))
}

/// Per-process results as exact bit patterns (`None` for a process that did
/// not finish). "Bit-correct" in the masking judgement means these vectors —
/// every replica of every rank — are identical between the faulted run and
/// its fault-free reference.
fn result_bits(report: &JobReport<f64>) -> Vec<Option<u64>> {
    report
        .processes
        .iter()
        .map(|p| match &p.outcome {
            ProcessOutcome::Finished(v) => Some(v.to_bits()),
            _ => None,
        })
        .collect()
}

/// Run a lossy-transport case over an explicit (possibly hand-built) plan:
/// one fault-free reference run of the seed's workload, one faulted run, and
/// the masking judgement. Used by [`run_case`] for sampled plans and by the
/// bench harness's fixed-rate sweep.
pub fn run_lossy_explicit_case(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    tuning: RunTuning,
    plan: FaultPlan,
) -> CaseOutcome {
    let (workload, app) = lossy_workload(seed, iterations);
    let reference = run_lossy_job(config, Arc::clone(&app), tuning, &[]);
    assert!(
        reference.all_finished(),
        "{workload}: the fault-free reference run must finish"
    );
    let report = run_lossy_job(config, app, tuning, &plan.faults);
    let net = NetCounters::from_report(&report);
    let violation = if !report.all_finished() {
        Some(format!(
            "{workload}: lossy run did not finish cleanly: {:?}",
            report
                .processes
                .iter()
                .map(|p| (p.endpoint, &p.outcome))
                .collect::<Vec<_>>()
        ))
    } else if result_bits(&report) != result_bits(&reference) {
        Some(format!(
            "{workload}: masked run diverged from the fault-free reference \
             ({:?} vs {:?})",
            result_bits(&report),
            result_bits(&reference)
        ))
    } else if net.dups_suppressed != net.msgs_duplicated {
        Some(format!(
            "{workload}: duplicate accounting broken: {} copies injected, {} suppressed",
            net.msgs_duplicated, net.dups_suppressed
        ))
    } else if net.msgs_dropped > 0 && net.retransmits == 0 {
        Some(format!(
            "{workload}: {} frames dropped but no retransmission fired",
            net.msgs_dropped
        ))
    } else {
        None
    };
    let ref_secs = reference.elapsed.as_secs_f64();
    let masked_overhead_pct =
        (ref_secs > 0.0).then(|| (report.elapsed.as_secs_f64() - ref_secs) / ref_secs * 100.0);
    CaseOutcome {
        seed,
        survived: violation.is_none(),
        aborted: false,
        crashes: 0,
        recovery_latency_s: None,
        sdc_injected: 0,
        sdc_detected: 0,
        sdc_corrected: 0,
        net,
        masked_overhead_pct,
        workload,
        violation,
        plan,
    }
}

fn run_lossy_case(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> CaseOutcome {
    run_lossy_explicit_case(config, seed, iterations, tuning, sample_plan(config, seed))
}

fn run_sdc_case(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> CaseOutcome {
    assert!(
        config.degree >= 2,
        "the redMPI comparison needs at least two replicas"
    );
    let plan = sample_plan(config, seed);
    let report_handle = SdcReport::new();
    let builder = JobBuilder::new(config.ranks)
        .network(LogGpModel::fast_test_model())
        .protocol(Arc::new(RedMpiFactory::with_degree(
            config.degree,
            Arc::clone(&report_handle),
        )))
        .cluster(Cluster::new(config.ranks * config.degree, 1))
        .placement(Placement::ReplicaSets {
            ranks: config.ranks,
            degree: config.degree,
        });
    let report =
        apply_faults(tuning.apply(builder), &plan.faults).run(move |p| ring_app(p, iterations));
    let survived = report.all_finished();
    let injected = report.stats.sdc_flips_injected();
    let detected = report_handle.mismatches();
    let corrected = report_handle.corrected();
    let violation = if !survived {
        Some("SDC run did not finish cleanly".to_string())
    } else if detected != injected {
        Some(format!(
            "SDC detection mismatch: {injected} flips injected, {detected} detected"
        ))
    } else if config.degree >= 3 && corrected != injected {
        // A single in-flight flip is the minority of ≥ 3 hash votes, so at
        // degree ≥ 3 every detection must also be a correction.
        Some(format!(
            "SDC correction mismatch at degree {}: {injected} flips injected, \
             {corrected} outvoted",
            config.degree
        ))
    } else {
        None
    };
    CaseOutcome {
        seed,
        plan,
        survived,
        aborted: false,
        crashes: 0,
        recovery_latency_s: None,
        sdc_injected: injected,
        sdc_detected: detected,
        sdc_corrected: corrected,
        net: NetCounters::default(),
        masked_overhead_pct: None,
        workload: "ring",
        violation,
    }
}

/// Run one campaign case: sample the plan for `(config, seed)`, compile it
/// into a job, run it, and judge the outcome against the distribution's
/// expectation (see the module docs).
pub fn run_case(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    tuning: RunTuning,
) -> CaseOutcome {
    match config.dist {
        FaultDistribution::SoftErrors { .. } => run_sdc_case(config, seed, iterations, tuning),
        FaultDistribution::CorrelatedPairLoss { .. } => {
            run_crash_case(config, seed, iterations, tuning, true)
        }
        FaultDistribution::ExponentialMtbf { .. } | FaultDistribution::MidCollective { .. } => {
            run_crash_case(config, seed, iterations, tuning, false)
        }
        // Majority loss at degree ≥ 3 still leaves one replica per rank:
        // fork-election recovery must mask it like any single-replica loss.
        FaultDistribution::MajorityLoss { .. } => {
            run_crash_case(config, seed, iterations, tuning, false)
        }
        FaultDistribution::UnreplicatedBias { .. } => {
            run_partial_bias_case(config, seed, iterations, tuning)
        }
        FaultDistribution::LossyLinks { .. } | FaultDistribution::DelayedAcks { .. } => {
            run_lossy_case(config, seed, iterations, tuning)
        }
    }
}

/// Run `cases` seeded cases (`base_seed`, `base_seed + 1`, ...) under one
/// configuration.
pub fn run_campaign(
    config: CampaignConfig,
    base_seed: u64,
    cases: usize,
    iterations: u64,
    tuning: RunTuning,
) -> Vec<CaseOutcome> {
    (0..cases as u64)
        .map(|i| run_case(config, base_seed + i, iterations, tuning))
        .collect()
}

/// Order statistics of a latency sample, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub samples: usize,
    /// Minimum.
    pub min_s: f64,
    /// Median (the campaign's central tendency, per the *MPI Benchmarking
    /// Revisited* guidance: medians over means for skewed distributions).
    pub median_s: f64,
    /// 90th percentile.
    pub p90_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl LatencyStats {
    /// Summarize a sample (empty samples give all-zero stats).
    pub fn from_samples(mut secs: Vec<f64>) -> LatencyStats {
        if secs.is_empty() {
            return LatencyStats::default();
        }
        secs.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pick = |q_num: usize, q_den: usize| secs[(secs.len() - 1) * q_num / q_den];
        LatencyStats {
            samples: secs.len(),
            min_s: secs[0],
            median_s: pick(1, 2),
            p90_s: pick(9, 10),
            max_s: *secs.last().expect("non-empty"),
        }
    }
}

/// Aggregates of one configuration's campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// The configuration.
    pub config: CampaignConfig,
    /// Cases run.
    pub cases: usize,
    /// Cases fully survived.
    pub survived: usize,
    /// Cases aborted with a clear `RankLost` report.
    pub aborted: usize,
    /// Crashes that actually fired, across all cases.
    pub crashes_injected: u64,
    /// Soft-error flips injected across all cases.
    pub sdc_injected: u64,
    /// Soft-error flips detected across all cases.
    pub sdc_detected: u64,
    /// Soft-error flips outvoted by a hash majority (degree ≥ 3 cases).
    pub sdc_corrected: u64,
    /// Recovery-latency distribution over the survived-with-crash cases.
    pub recovery_latency: LatencyStats,
    /// Aggregated transport fault/masking counters (lossy configurations;
    /// all zero otherwise).
    pub net: NetCounters,
    /// Median masked-delivery overhead over the lossy cases, percent of the
    /// fault-free virtual run time.
    pub masked_overhead_median_pct: f64,
    /// 90th-percentile masked-delivery overhead, percent.
    pub masked_overhead_p90_pct: f64,
    /// `(seed, description)` of every expectation violation.
    pub violations: Vec<(u64, String)>,
}

impl CampaignSummary {
    /// Fraction of cases fully survived.
    pub fn survival_rate(&self) -> f64 {
        if self.cases == 0 {
            return 1.0;
        }
        self.survived as f64 / self.cases as f64
    }

    /// Fraction of cases aborted with a clear `RankLost` report.
    pub fn abort_rate(&self) -> f64 {
        if self.cases == 0 {
            return 0.0;
        }
        self.aborted as f64 / self.cases as f64
    }

    /// Fraction of injected flips detected (1.0 when nothing was injected).
    pub fn sdc_detection_rate(&self) -> f64 {
        if self.sdc_injected == 0 {
            return 1.0;
        }
        self.sdc_detected as f64 / self.sdc_injected as f64
    }

    /// Fraction of injected flips outvoted by a hash majority (1.0 when
    /// nothing was injected; meaningful at degree ≥ 3 only — dual
    /// replication can detect but never attribute).
    pub fn sdc_correction_rate(&self) -> f64 {
        if self.sdc_injected == 0 {
            return 1.0;
        }
        self.sdc_corrected as f64 / self.sdc_injected as f64
    }
}

/// Aggregate a configuration's case outcomes.
pub fn summarize(config: CampaignConfig, outcomes: &[CaseOutcome]) -> CampaignSummary {
    let mut net = NetCounters::default();
    for o in outcomes {
        net.accumulate(&o.net);
    }
    let overhead = LatencyStats::from_samples(
        outcomes
            .iter()
            .filter_map(|o| o.masked_overhead_pct)
            .collect(),
    );
    CampaignSummary {
        config,
        cases: outcomes.len(),
        survived: outcomes.iter().filter(|o| o.survived).count(),
        aborted: outcomes.iter().filter(|o| o.aborted).count(),
        crashes_injected: outcomes.iter().map(|o| o.crashes as u64).sum(),
        sdc_injected: outcomes.iter().map(|o| o.sdc_injected).sum(),
        sdc_detected: outcomes.iter().map(|o| o.sdc_detected).sum(),
        sdc_corrected: outcomes.iter().map(|o| o.sdc_corrected).sum(),
        recovery_latency: LatencyStats::from_samples(
            outcomes
                .iter()
                .filter_map(|o| o.recovery_latency_s)
                .collect(),
        ),
        net,
        masked_overhead_median_pct: overhead.median_s,
        masked_overhead_p90_pct: overhead.p90_s,
        violations: outcomes
            .iter()
            .filter_map(|o| o.violation.clone().map(|v| (o.seed, v)))
            .collect(),
    }
}

/// Result of shrinking a violating case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The full sampled plan the violation was found with.
    pub plan: FaultPlan,
    /// The locally minimal failing fault subset.
    pub minimal: Vec<PlannedFault>,
    /// Oracle replays the search needed.
    pub probes: usize,
    /// Ready-to-paste regression test stanza reproducing the violation from
    /// the minimal plan.
    pub stanza: String,
}

fn fault_to_source(f: &PlannedFault) -> String {
    match *f {
        PlannedFault::Crash { endpoint, schedule } => {
            let sched = match schedule {
                CrashSchedule::Never => "CrashSchedule::Never".to_string(),
                CrashSchedule::AtTime { at } => format!(
                    "CrashSchedule::AtTime {{ at: SimTime::from_nanos({}) }}",
                    at.as_nanos()
                ),
                CrashSchedule::BeforeSend { nth } => {
                    format!("CrashSchedule::BeforeSend {{ nth: {nth} }}")
                }
                CrashSchedule::AfterSend { nth } => {
                    format!("CrashSchedule::AfterSend {{ nth: {nth} }}")
                }
            };
            format!(
                "PlannedFault::Crash {{ endpoint: EndpointId({}), schedule: {sched} }}",
                endpoint.0
            )
        }
        PlannedFault::BitFlip {
            endpoint,
            nth_send,
            bit,
        } => format!(
            "PlannedFault::BitFlip {{ endpoint: EndpointId({}), nth_send: {nth_send}, bit: {bit} }}",
            endpoint.0
        ),
        PlannedFault::LossyTransport {
            config,
            policy_seed,
        } => format!(
            "PlannedFault::LossyTransport {{ config: NetFaultConfig {{ drop_per_64k: {}, \
             dup_per_64k: {}, delay_per_64k: {}, delay_ns: {}, ack_only: {} }}, \
             policy_seed: {policy_seed} }}",
            config.drop_per_64k,
            config.dup_per_64k,
            config.delay_per_64k,
            config.delay_ns,
            config.ack_only
        ),
    }
}

/// Shrink a survivability violation to a locally minimal fault subset and
/// emit a regression-test stanza. Returns `None` when the case's full fault
/// list does not actually violate survivability (nothing to shrink). The
/// oracle replays candidates under `--workers 1`, so the search is exact.
pub fn shrink_violation(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
) -> Option<ShrinkOutcome> {
    let plan = sample_plan(config, seed);
    shrink_fault_list(config, seed, iterations, &plan.faults).map(|(minimal, probes)| {
        let stanza = regression_stanza(config, seed, iterations, &plan, &minimal, probes);
        ShrinkOutcome {
            plan,
            minimal,
            probes,
            stanza,
        }
    })
}

/// Like [`shrink_violation`], but over an explicit fault list instead of a
/// sampled plan (for violations composed synthetically, e.g. a campaign-found
/// fatal pair buried in survivable noise). `seed_label` only names the
/// emitted stanza. Returns `None` when the list does not violate
/// survivability.
pub fn shrink_explicit_violation(
    config: CampaignConfig,
    seed_label: u64,
    iterations: u64,
    faults: &[PlannedFault],
) -> Option<ShrinkOutcome> {
    let plan = FaultPlan {
        config,
        seed: seed_label,
        faults: faults.to_vec(),
    };
    shrink_fault_list(config, seed_label, iterations, faults).map(|(minimal, probes)| {
        let stanza = regression_stanza(config, seed_label, iterations, &plan, &minimal, probes);
        ShrinkOutcome {
            plan,
            minimal,
            probes,
            stanza,
        }
    })
}

/// Shrink an explicit fault list (used both by [`shrink_violation`] and the
/// synthetic-violation tests). Returns the minimal failing subset and the
/// number of oracle probes, or `None` if the full list does not fail.
pub fn shrink_fault_list(
    config: CampaignConfig,
    _seed: u64,
    iterations: u64,
    faults: &[PlannedFault],
) -> Option<(Vec<PlannedFault>, usize)> {
    let mut probes = 0usize;
    let oracle =
        |candidate: &[PlannedFault]| crash_faults_violate_survival(config, iterations, candidate);
    if !oracle(faults) {
        return None;
    }
    probes += 1;
    let minimal = shrink_events(faults, |candidate| {
        probes += 1;
        oracle(candidate)
    });
    Some((minimal, probes))
}

fn regression_stanza(
    config: CampaignConfig,
    seed: u64,
    iterations: u64,
    plan: &FaultPlan,
    minimal: &[PlannedFault],
    probes: usize,
) -> String {
    let mut faults_src = String::new();
    for f in minimal {
        faults_src.push_str("        ");
        faults_src.push_str(&fault_to_source(f));
        faults_src.push_str(",\n");
    }
    // Import exactly what the minimal plan's constructors need, so the
    // emitted stanza compiles warning-free when pasted.
    let mut sim_net_items = Vec::new();
    if minimal
        .iter()
        .any(|f| matches!(f, PlannedFault::Crash { .. }))
    {
        sim_net_items.extend(["CrashSchedule", "EndpointId"]);
    } else if minimal
        .iter()
        .any(|f| matches!(f, PlannedFault::BitFlip { .. }))
    {
        sim_net_items.push("EndpointId");
    }
    if minimal
        .iter()
        .any(|f| matches!(f, PlannedFault::LossyTransport { .. }))
    {
        sim_net_items.push("NetFaultConfig");
    }
    let sim_net_use = match sim_net_items.as_slice() {
        [] => String::new(),
        [item] => format!("    use sdr_mpi::sim_net::{item};\n"),
        items => format!("    use sdr_mpi::sim_net::{{{}}};\n", items.join(", ")),
    };
    format!(
        r#"#[test]
fn campaign_{dist}_seed_{seed}_minimal_plan_is_fatal() {{
    // Auto-generated by workloads::campaign::shrink_violation.
    // config: ranks={ranks} degree={degree} dist={dist}; seed={seed};
    // shrunk {full} sampled fault(s) to {min} in {probes} oracle probe(s).
    use sdr_mpi::sim_net::campaign::{{CampaignConfig, FaultDistribution, PlannedFault}};
{sim_net_use}    use sdr_mpi::workloads::campaign::crash_faults_violate_survival;
    let config = CampaignConfig {{
        ranks: {ranks},
        degree: {degree},
        dist: FaultDistribution::MidCollective {{ max_phase: 1 }}, // shape only
    }};
    let faults = [
{faults_src}    ];
    assert!(
        crash_faults_violate_survival(config, {iterations}, &faults),
        "the shrunk plan must still violate survivability"
    );
    for drop in 0..faults.len() {{
        let without: Vec<_> = faults
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, f)| *f)
            .collect();
        assert!(
            !crash_faults_violate_survival(config, {iterations}, &without),
            "dropping fault {{drop}} should make the job survivable (minimality)"
        );
    }}
}}
"#,
        dist = config.dist.name().replace('-', "_"),
        ranks = config.ranks,
        degree = config.degree,
        full = plan.faults.len(),
        min = minimal.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn survive_cfg() -> CampaignConfig {
        CampaignConfig {
            ranks: 4,
            degree: 2,
            dist: FaultDistribution::MidCollective { max_phase: 8 },
        }
    }

    #[test]
    fn mid_collective_cases_are_survived() {
        let outcomes = run_campaign(survive_cfg(), 100, 5, 6, RunTuning::default());
        let summary = summarize(survive_cfg(), &outcomes);
        assert_eq!(summary.cases, 5);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.survival_rate(), 1.0);
        assert!(summary.crashes_injected >= 1, "some crash must have fired");
        assert!(summary.recovery_latency.samples >= 1);
        assert!(summary.recovery_latency.min_s >= 0.0);
    }

    #[test]
    fn correlated_pair_cases_abort_with_rank_lost() {
        let cfg = CampaignConfig {
            ranks: 2,
            degree: 2,
            dist: FaultDistribution::CorrelatedPairLoss {
                mean_sends: 3,
                horizon_sends: 3,
            },
        };
        let outcomes = run_campaign(cfg, 7, 4, 6, RunTuning::default());
        let summary = summarize(cfg, &outcomes);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.abort_rate(), 1.0);
        assert_eq!(summary.survival_rate(), 0.0);
    }

    #[test]
    fn sdc_cases_detect_every_injected_flip() {
        let cfg = CampaignConfig {
            ranks: 4,
            degree: 2,
            dist: FaultDistribution::SoftErrors {
                flips: 2,
                max_send: 6,
                payload_bits: 8192,
            },
        };
        let outcomes = run_campaign(cfg, 11, 4, 6, RunTuning::default());
        let summary = summarize(cfg, &outcomes);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.sdc_injected, 8, "2 flips per case, all landing");
        assert_eq!(summary.sdc_detected, 8);
        assert_eq!(summary.sdc_detection_rate(), 1.0);
    }

    #[test]
    fn degree_three_sdc_cases_correct_every_flip() {
        let cfg = CampaignConfig {
            ranks: 4,
            degree: 3,
            dist: FaultDistribution::SoftErrors {
                flips: 2,
                max_send: 6,
                payload_bits: 8192,
            },
        };
        let outcomes = run_campaign(cfg, 19, 3, 6, RunTuning::default());
        let summary = summarize(cfg, &outcomes);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.sdc_injected, 6, "2 flips per case, all landing");
        assert_eq!(summary.sdc_detected, 6);
        assert_eq!(
            summary.sdc_corrected, 6,
            "every flip is the minority of three hash votes"
        );
        assert_eq!(summary.sdc_correction_rate(), 1.0);
    }

    #[test]
    fn majority_loss_cases_survive_on_the_last_replica() {
        let cfg = CampaignConfig {
            ranks: 2,
            degree: 3,
            dist: FaultDistribution::MajorityLoss {
                mean_sends: 3,
                horizon_sends: 3,
            },
        };
        let outcomes = run_campaign(cfg, 23, 4, 6, RunTuning::default());
        let summary = summarize(cfg, &outcomes);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.survival_rate(), 1.0);
        assert_eq!(
            summary.crashes_injected, 8,
            "two of three replicas die in every case"
        );
    }

    #[test]
    fn unreplicated_bias_cases_split_by_coverage() {
        // Ranks 0 and 2 covered, 1 and 3 singletons: covered crashes must be
        // masked, singleton crashes must abort with RankLost.
        let cfg = CampaignConfig {
            ranks: 4,
            degree: 2,
            dist: FaultDistribution::UnreplicatedBias {
                replicated_mask: 0b0101,
                horizon_sends: 6,
            },
        };
        let outcomes = run_campaign(cfg, 40, 8, 6, RunTuning::default());
        let summary = summarize(cfg, &outcomes);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.cases, 8);
        assert!(
            summary.aborted >= 1,
            "the biased sampler must hit a singleton in 8 cases"
        );
        assert_eq!(
            summary.survived + summary.aborted,
            8,
            "every case either survives (covered rank) or aborts (singleton)"
        );
    }

    #[test]
    fn lossy_links_cases_are_fully_masked() {
        // Seeds 12..18 rotate through FT, MG, SP, collective, BT, CG — six
        // different traffic shapes, all of which must mask the sampled
        // drop/duplicate/delay policy bit-exactly.
        let cfg = CampaignConfig {
            ranks: 4,
            degree: 2,
            dist: FaultDistribution::LossyLinks {
                max_drop_per_64k: 3277,
                max_dup_per_64k: 3277,
                max_delay_per_64k: 3277,
            },
        };
        let outcomes = run_campaign(cfg, 12, 6, 6, RunTuning::default());
        let summary = summarize(cfg, &outcomes);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.survival_rate(), 1.0);
        assert!(
            summary.net.msgs_dropped > 0,
            "the seed range must include dropped frames: {:?}",
            summary.net
        );
        assert!(
            summary.net.retransmits > 0,
            "drops must force retransmissions: {:?}",
            summary.net
        );
        assert_eq!(summary.net.dups_suppressed, summary.net.msgs_duplicated);
        let workloads: std::collections::BTreeSet<_> =
            outcomes.iter().map(|o| o.workload).collect();
        assert_eq!(workloads.len(), 6, "six distinct workloads: {workloads:?}");
        assert!(
            outcomes.iter().all(|o| o.masked_overhead_pct.is_some()),
            "every lossy case records its masked-delivery overhead"
        );
    }

    #[test]
    fn delayed_acks_cases_are_fully_masked() {
        let cfg = CampaignConfig {
            ranks: 4,
            degree: 2,
            dist: FaultDistribution::DelayedAcks {
                max_delay_per_64k: 32_768,
                max_delay_ns: 400_000,
            },
        };
        let outcomes = run_campaign(cfg, 30, 4, 6, RunTuning::default());
        let summary = summarize(cfg, &outcomes);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.survival_rate(), 1.0);
        assert!(
            summary.net.msgs_delayed > 0,
            "the ack-delay policy must have stalled frames: {:?}",
            summary.net
        );
        assert_eq!(summary.net.msgs_dropped, 0, "delayed-acks never drops");
        assert_eq!(summary.net.dups_suppressed, summary.net.msgs_duplicated);
    }

    #[test]
    fn latency_stats_order_statistics() {
        let s = LatencyStats::from_samples(vec![3.0, 1.0, 2.0, 10.0]);
        assert_eq!(s.samples, 4);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.median_s, 2.0);
        assert_eq!(s.max_s, 10.0);
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
    }
}
