//! # workloads — the applications the paper evaluates SDR-MPI with
//!
//! The paper's evaluation (Section 4) uses:
//!
//! * **NetPipe** ping-pong for latency/throughput (Figure 7a/7b) — [`netpipe`];
//! * five **NAS Parallel Benchmarks** (BT, CG, FT, MG, SP, class D) for
//!   Table 1 — [`nas`];
//! * **HPCCG** (Mantevo conjugate gradient on a 3D chimney domain) and **CM1**
//!   (cloud model), both containing `MPI_ANY_SOURCE` receptions, for
//!   Table 2 — [`apps`].
//!
//! Since the original codes and the 64-node InfiniBand cluster are not
//! available here, each workload is re-implemented as a communication-pattern
//! faithful mini-kernel: real (small-scale) numerics produce a checksum that
//! must agree between native and replicated executions, and the per-iteration
//! computation cost is charged to the virtual clock through an explicit cost
//! model so that the compute/communication ratio is class-D-like (see
//! `DESIGN.md` §2 for the substitution argument).
//!
//! [`determinism`] provides the operational send-determinism check of
//! Definition 1: run a workload under perturbed message timing and compare the
//! per-rank send sequences. [`runner`] packages the native-vs-replicated
//! comparison used by the Table 1/2 harnesses.

pub mod apps;
pub mod campaign;
pub mod determinism;
pub mod nas;
pub mod netpipe;
pub mod runner;
pub mod serve;

pub use campaign::{
    run_campaign, run_case, shrink_violation, CampaignSummary, CaseOutcome, LatencyStats,
    ShrinkOutcome,
};
pub use determinism::{check_send_determinism, DeterminismReport, JitterModel};
pub use netpipe::{netpipe_sweep, NetpipePoint};
pub use runner::{compare_protocols, ComparisonRow, WorkloadSpec};
pub use serve::{JobRecord, JobSpec, ServeConfig, ServeEvent, SpecError};
