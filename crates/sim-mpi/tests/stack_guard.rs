//! Stack-overflow containment for coroutine carriers.
//!
//! A simulated process that recurses past its coroutine stack must hit the
//! `PROT_NONE` guard region, print an actionable diagnostic, and abort the
//! process — instead of silently scribbling over the neighbouring stack in
//! the pool's mmap'd region. Aborting is deliberate: once a guard page is
//! hit the faulting frame cannot be unwound safely, so the only sound
//! containment is "loud, immediate death with a pointer at the fix"
//! (`JobBuilder::proc_stack_size`).
//!
//! The overflow necessarily kills the whole process, so the test runs the
//! overflowing job in a child: the parent re-executes this test binary with
//! `SDR_STACK_GUARD_CHILD=1` targeting the `#[ignore]`d child test, and
//! asserts on the child's exit status and stderr.

use sim_mpi::JobBuilder;
use sim_net::{CarrierMode, LogGpModel};

/// Burn ~1 KiB of stack per level, defeating tail-call and frame-merging
/// optimisations with `black_box`, until well past any plausible stack size.
fn recurse(depth: u64) -> u64 {
    let mut frame = [depth; 128];
    std::hint::black_box(&mut frame);
    if depth >= 10_000_000 {
        return frame[0];
    }
    recurse(depth + 1).wrapping_add(std::hint::black_box(frame[127]))
}

#[test]
#[ignore = "aborts by design; run by stack_overflow_is_contained_with_a_diagnostic"]
fn overflow_child() {
    if std::env::var("SDR_STACK_GUARD_CHILD").is_err() {
        return;
    }
    // A deliberately small coroutine stack: the recursion crosses its guard
    // region after a few hundred frames.
    let report = JobBuilder::new(2)
        .network(LogGpModel::fast_test_model())
        .carrier_mode(CarrierMode::Coroutine)
        .proc_stack_size(192 * 1024)
        .run(|p| if p.rank() == 0 { recurse(0) } else { 0 });
    // Unreachable: the overflow aborts the process before the job returns.
    panic!("job survived a stack overflow: {:?}", report.all_finished());
}

#[test]
fn stack_overflow_is_contained_with_a_diagnostic() {
    if !sim_net::carrier::coro::supported() {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["--ignored", "--exact", "overflow_child", "--test-threads=1"])
        .env("SDR_STACK_GUARD_CHILD", "1")
        .output()
        .expect("spawn child test process");
    assert!(
        !out.status.success(),
        "the overflowing child must die, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("stack overflow"),
        "child stderr must carry the guard-page diagnostic, got:\n{stderr}"
    );
    assert!(
        stderr.contains("proc_stack_size"),
        "the diagnostic must point at the fix, got:\n{stderr}"
    );
}
