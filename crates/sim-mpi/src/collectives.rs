//! Collective operations, implemented on top of the point-to-point layer.
//!
//! The paper assumes (Section 2.2, footnote 2) that collectives are built on
//! the point-to-point functions, which is why intercepting at the PML boundary
//! makes SDR-MPI support every collective "for free". We follow the same
//! structure: every collective below is written purely in terms of
//! `isend_bytes` / `irecv_bytes` / `wait`, so whichever protocol is active
//! (native, SDR-MPI, mirror, leader-based, redMPI) transparently applies to
//! collective traffic too.
//!
//! Algorithms are the textbook ones used by MPICH/Open MPI for medium-size
//! messages: binomial trees for bcast/reduce, recursive doubling for
//! allreduce (power-of-two), ring allgather, pairwise alltoall and a
//! dissemination barrier.

use crate::datatype;
use crate::process::{Comm, Process, Request};
use crate::types::Rank;
use bytes::Bytes;

/// Element-wise reduction operators over `f64`/`u64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Element-wise product.
    Prod,
}

impl ReduceOp {
    /// Apply the operator to two `f64` operands.
    pub fn apply_f64(&self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Prod => a * b,
        }
    }

    /// Apply the operator to two `u64` operands.
    pub fn apply_u64(&self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Prod => a.wrapping_mul(b),
        }
    }

    fn combine_f64s(&self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(
            acc.len(),
            other.len(),
            "reduction operands must have equal length"
        );
        for (a, b) in acc.iter_mut().zip(other.iter()) {
            *a = self.apply_f64(*a, *b);
        }
    }

    fn combine_u64s(&self, acc: &mut [u64], other: &[u64]) {
        assert_eq!(
            acc.len(),
            other.len(),
            "reduction operands must have equal length"
        );
        for (a, b) in acc.iter_mut().zip(other.iter()) {
            *a = self.apply_u64(*a, *b);
        }
    }
}

mod op_code {
    pub const BARRIER: i64 = 1;
    pub const BCAST: i64 = 2;
    pub const REDUCE: i64 = 3;
    pub const ALLREDUCE: i64 = 4;
    pub const GATHER: i64 = 5;
    pub const ALLGATHER: i64 = 6;
    pub const SCATTER: i64 = 7;
    pub const ALLTOALL: i64 = 8;
    pub const SCAN: i64 = 9;
}

impl Process {
    /// `MPI_Barrier`: dissemination barrier, `⌈log2 p⌉` rounds.
    pub fn barrier(&mut self, comm: Comm) {
        let size = self.comm_size(comm);
        if size <= 1 {
            return;
        }
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::BARRIER);
        let mut dist = 1usize;
        while dist < size {
            let to = (rank + dist) % size;
            let from = (rank + size - dist) % size;
            self.sendrecv_bytes(comm, to, tag, Bytes::new(), from as i64, tag);
            dist *= 2;
        }
    }

    /// `MPI_Bcast` of raw bytes using a binomial tree. The root passes
    /// `Some(data)`; every process (including the root) gets the data back.
    pub fn bcast_bytes(&mut self, comm: Comm, root: Rank, data: Option<Bytes>) -> Bytes {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::BCAST);
        let mut buf = if rank == root {
            data.expect("root must provide the broadcast payload")
        } else {
            Bytes::new()
        };
        if size <= 1 {
            return buf;
        }
        let rel = (rank + size - root) % size;
        // Receive phase: find the lowest set bit of the relative rank.
        let mut mask = 1usize;
        while mask < size {
            if rel & mask != 0 {
                let src = (rank + size - mask) % size;
                let (_, payload) = self.recv_bytes(comm, src as i64, tag);
                buf = payload;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children.
        mask >>= 1;
        while mask > 0 {
            if rel + mask < size {
                let dst = (rank + mask) % size;
                self.send_bytes(comm, dst, tag, buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// `MPI_Bcast` of an `f64` vector.
    pub fn bcast_f64s(&mut self, comm: Comm, root: Rank, data: Option<&[f64]>) -> Vec<f64> {
        let bytes = self.bcast_bytes(comm, root, data.map(datatype::f64s_to_bytes));
        datatype::bytes_to_f64s(&bytes)
    }

    /// `MPI_Reduce` of an `f64` vector to `root` using a binomial tree.
    /// Returns `Some(result)` on the root, `None` elsewhere.
    pub fn reduce_f64s(
        &mut self,
        comm: Comm,
        root: Rank,
        op: ReduceOp,
        contribution: &[f64],
    ) -> Option<Vec<f64>> {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::REDUCE);
        let mut acc = contribution.to_vec();
        if size > 1 {
            let rel = (rank + size - root) % size;
            let mut mask = 1usize;
            while mask < size {
                if rel & mask == 0 {
                    let src_rel = rel | mask;
                    if src_rel < size {
                        let src = (src_rel + root) % size;
                        let (_, other) = self.recv_f64s(comm, src as i64, tag);
                        op.combine_f64s(&mut acc, &other);
                    }
                } else {
                    let dst_rel = rel & !mask;
                    let dst = (dst_rel + root) % size;
                    self.send_f64s(comm, dst, tag, &acc);
                    break;
                }
                mask <<= 1;
            }
        }
        if rank == root {
            Some(acc)
        } else {
            None
        }
    }

    /// `MPI_Allreduce` of an `f64` vector: recursive doubling when the
    /// communicator size is a power of two, reduce-then-broadcast otherwise.
    pub fn allreduce_f64s(&mut self, comm: Comm, op: ReduceOp, contribution: &[f64]) -> Vec<f64> {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        if size <= 1 {
            return contribution.to_vec();
        }
        if size.is_power_of_two() {
            let tag = self.next_coll_tag(comm, op_code::ALLREDUCE);
            let mut acc = contribution.to_vec();
            let mut mask = 1usize;
            while mask < size {
                let partner = rank ^ mask;
                let (_, other) = self.sendrecv_bytes(
                    comm,
                    partner,
                    tag,
                    datatype::f64s_to_bytes(&acc),
                    partner as i64,
                    tag,
                );
                op.combine_f64s(&mut acc, &datatype::bytes_to_f64s(&other));
                mask <<= 1;
            }
            acc
        } else {
            let reduced = self.reduce_f64s(comm, 0, op, contribution);
            let bytes = self.bcast_bytes(comm, 0, reduced.map(|v| datatype::f64s_to_bytes(&v)));
            datatype::bytes_to_f64s(&bytes)
        }
    }

    /// Scalar `MPI_Allreduce` over `f64`.
    pub fn allreduce_f64(&mut self, comm: Comm, op: ReduceOp, value: f64) -> f64 {
        self.allreduce_f64s(comm, op, &[value])[0]
    }

    /// Scalar `MPI_Allreduce` over `u64`.
    pub fn allreduce_u64(&mut self, comm: Comm, op: ReduceOp, value: u64) -> u64 {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        if size <= 1 {
            return value;
        }
        let tag = self.next_coll_tag(comm, op_code::ALLREDUCE);
        // Reduce to rank 0 linearly then broadcast: simple and correct for the
        // small scalar control values this is used for (iteration counts,
        // convergence flags).
        let mut acc = value;
        if rank == 0 {
            for src in 1..size {
                let (_, vals) = self.recv_u64s(comm, src as i64, tag);
                acc = op.apply_u64(acc, vals[0]);
            }
        } else {
            self.send_u64s(comm, 0, tag, &[value]);
        }
        let bytes = self.bcast_bytes(
            comm,
            0,
            if rank == 0 {
                Some(datatype::u64s_to_bytes(&[acc]))
            } else {
                None
            },
        );
        datatype::bytes_to_u64s(&bytes)[0]
    }

    /// `MPI_Gather` of raw byte blocks to `root`. Returns `Some(blocks)` in
    /// communicator-rank order on the root, `None` elsewhere.
    pub fn gather_bytes(
        &mut self,
        comm: Comm,
        root: Rank,
        contribution: Bytes,
    ) -> Option<Vec<Bytes>> {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::GATHER);
        if rank == root {
            // Post all receives first, then collect.
            let mut reqs: Vec<Option<Request>> = Vec::with_capacity(size);
            for src in 0..size {
                if src == rank {
                    reqs.push(None);
                } else {
                    reqs.push(Some(self.irecv_bytes(comm, src as i64, tag)));
                }
            }
            let mut out = vec![Bytes::new(); size];
            out[rank] = contribution;
            for (src, req) in reqs.into_iter().enumerate() {
                if let Some(req) = req {
                    let (_, payload) = self.wait(comm, req);
                    out[src] = payload.expect("gather receive yields payload");
                }
            }
            Some(out)
        } else {
            self.send_bytes(comm, root, tag, contribution);
            None
        }
    }

    /// `MPI_Allgather` of raw byte blocks using the ring algorithm. Returns
    /// the blocks of every rank in communicator-rank order.
    pub fn allgather_bytes(&mut self, comm: Comm, contribution: Bytes) -> Vec<Bytes> {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::ALLGATHER);
        let mut blocks: Vec<Option<Bytes>> = vec![None; size];
        blocks[rank] = Some(contribution);
        if size == 1 {
            return blocks.into_iter().map(|b| b.unwrap()).collect();
        }
        let right = (rank + 1) % size;
        let left = (rank + size - 1) % size;
        for step in 0..size - 1 {
            let send_idx = (rank + size - step) % size;
            let recv_idx = (rank + size - step - 1) % size;
            let payload = blocks[send_idx]
                .clone()
                .expect("block to forward is present");
            let (_, received) = self.sendrecv_bytes(comm, right, tag, payload, left as i64, tag);
            blocks[recv_idx] = Some(received);
        }
        blocks
            .into_iter()
            .map(|b| b.expect("ring completed"))
            .collect()
    }

    /// `MPI_Scatter` of per-rank byte blocks from `root`. The root passes
    /// `Some(blocks)` (one per rank, in communicator-rank order).
    pub fn scatter_bytes(&mut self, comm: Comm, root: Rank, blocks: Option<Vec<Bytes>>) -> Bytes {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::SCATTER);
        if rank == root {
            let blocks = blocks.expect("root must provide the blocks to scatter");
            assert_eq!(blocks.len(), size, "scatter needs one block per rank");
            let mut mine = Bytes::new();
            for (dst, block) in blocks.into_iter().enumerate() {
                if dst == rank {
                    mine = block;
                } else {
                    self.send_bytes(comm, dst, tag, block);
                }
            }
            mine
        } else {
            let (_, payload) = self.recv_bytes(comm, root as i64, tag);
            payload
        }
    }

    /// `MPI_Alltoall` of per-destination byte blocks (one block per rank).
    /// Returns one block per source rank.
    pub fn alltoall_bytes(&mut self, comm: Comm, blocks: Vec<Bytes>) -> Vec<Bytes> {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        assert_eq!(blocks.len(), size, "alltoall needs one block per rank");
        let tag = self.next_coll_tag(comm, op_code::ALLTOALL);
        let mut out = vec![Bytes::new(); size];
        out[rank] = blocks[rank].clone();
        for step in 1..size {
            let send_to = (rank + step) % size;
            let recv_from = (rank + size - step) % size;
            let (_, received) = self.sendrecv_bytes(
                comm,
                send_to,
                tag,
                blocks[send_to].clone(),
                recv_from as i64,
                tag,
            );
            out[recv_from] = received;
        }
        out
    }

    /// Inclusive `MPI_Scan` over `f64` vectors (linear pipeline).
    pub fn scan_f64s(&mut self, comm: Comm, op: ReduceOp, contribution: &[f64]) -> Vec<f64> {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::SCAN);
        let mut acc = contribution.to_vec();
        if rank > 0 {
            let (_, prefix) = self.recv_f64s(comm, (rank - 1) as i64, tag);
            let mut combined = prefix;
            op.combine_f64s(&mut combined, &acc);
            acc = combined;
        }
        if rank + 1 < size {
            self.send_f64s(comm, rank + 1, tag, &acc);
        }
        acc
    }

    /// `MPI_Reduce` for `u64` vectors (linear gather at root, mirroring the
    /// scalar allreduce implementation).
    pub fn reduce_u64s(
        &mut self,
        comm: Comm,
        root: Rank,
        op: ReduceOp,
        contribution: &[u64],
    ) -> Option<Vec<u64>> {
        let size = self.comm_size(comm);
        let rank = self.comm_rank(comm);
        let tag = self.next_coll_tag(comm, op_code::REDUCE);
        if rank == root {
            let mut acc = contribution.to_vec();
            for src in 0..size {
                if src == rank {
                    continue;
                }
                let (_, other) = self.recv_u64s(comm, src as i64, tag);
                op.combine_u64s(&mut acc, &other);
            }
            Some(acc)
        } else {
            self.send_u64s(comm, root, tag, contribution);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_f64_semantics() {
        assert_eq!(ReduceOp::Sum.apply_f64(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.apply_f64(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply_f64(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Prod.apply_f64(2.0, 3.0), 6.0);
    }

    #[test]
    fn reduce_op_u64_semantics_wrapping() {
        assert_eq!(ReduceOp::Sum.apply_u64(u64::MAX, 1), 0);
        assert_eq!(ReduceOp::Min.apply_u64(7, 9), 7);
        assert_eq!(ReduceOp::Max.apply_u64(7, 9), 9);
        assert_eq!(ReduceOp::Prod.apply_u64(3, 5), 15);
    }

    #[test]
    fn combine_vectors_elementwise() {
        let mut acc = vec![1.0, 5.0, 2.0];
        ReduceOp::Max.combine_f64s(&mut acc, &[0.0, 9.0, 2.5]);
        assert_eq!(acc, vec![1.0, 9.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn combine_length_mismatch_panics() {
        let mut acc = vec![1.0];
        ReduceOp::Sum.combine_f64s(&mut acc, &[1.0, 2.0]);
    }
}
