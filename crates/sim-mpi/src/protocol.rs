//! The protocol interception layer (the vProtocol-framework equivalent).
//!
//! A [`Protocol`] sits between the application-facing [`crate::process::Process`]
//! API and the [`Pml`]: every application send/receive goes through it, and it
//! observes every PML event. SDR-MPI, the mirror protocol, the leader-based
//! protocol and the redMPI-style SDC detector are all implementations of this
//! trait (in the `sdr-core` and `repl-baselines` crates); the
//! [`NativeProtocol`] defined here is the pass-through used for non-replicated
//! (native) executions.
//!
//! The trait is deliberately shaped like the interception points the paper
//! uses inside Open MPI: pre/post-treatment of `pml_send` / `pml_recv`,
//! plus the `pml_recv_complete` (irecvComplete) callback delivered through
//! [`Protocol::handle_event`].

use crate::pml::{Pml, PmlEvent};
use crate::types::{Rank, Status, Tag, TagSel};
use bytes::Bytes;
use sim_net::EndpointId;

/// Handle for a protocol-level send request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtoSendReq(pub u64);

/// Handle for a protocol-level receive request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtoRecvReq(pub u64);

/// A replication (or pass-through) protocol. One instance lives inside each
/// physical process. All ranks passed across this interface are
/// *application-world* ranks; all communicator ids are application-level
/// context ids.
pub trait Protocol: Send {
    /// The application-world rank this physical process plays.
    fn app_rank(&self) -> Rank;

    /// Number of ranks in the application world.
    fn app_size(&self) -> usize;

    /// Replica id of this physical process (0 for native executions).
    fn replica_id(&self) -> usize {
        0
    }

    /// Whether this process's application results should be reported as the
    /// job's output (for replicated runs, typically replica set 0).
    fn is_primary(&self) -> bool {
        true
    }

    /// Initialize protocol state. Called once before the application runs.
    fn init(&mut self, _pml: &mut Pml) {}

    /// Post an application send of `payload` to `dst` (app-world rank) on
    /// communicator `comm` with `tag`.
    fn isend(
        &mut self,
        pml: &mut Pml,
        dst: Rank,
        comm: crate::types::CommId,
        tag: Tag,
        payload: Bytes,
    ) -> ProtoSendReq;

    /// Post an application receive from `src` (app-world rank, `None` for
    /// `MPI_ANY_SOURCE`) on communicator `comm` with tag filter `tag`.
    fn irecv(
        &mut self,
        pml: &mut Pml,
        src: Option<Rank>,
        comm: crate::types::CommId,
        tag: TagSel,
    ) -> ProtoRecvReq;

    /// Is the protocol-level send request complete? For SDR-MPI this includes
    /// having collected the acknowledgements from the other replicas of the
    /// destination rank (Algorithm 1, `MPI_Wait`).
    fn send_complete(&mut self, pml: &mut Pml, req: ProtoSendReq) -> bool;

    /// Is the protocol-level receive request complete (payload available)?
    fn recv_complete(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> bool;

    /// Take the result of a completed receive. Returns `None` if the request
    /// is not yet complete. The status's `source` is an app-world rank.
    fn take_recv(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> Option<(Status, Bytes)>;

    /// Release a completed send request.
    fn free_send(&mut self, pml: &mut Pml, req: ProtoSendReq);

    /// Observe one PML event (receive completions, control traffic, failure
    /// notifications). Called by the process layer for every event, in order.
    fn handle_event(&mut self, pml: &mut Pml, ev: PmlEvent);

    /// Flush/cleanup at `MPI_Finalize` time.
    fn finalize(&mut self, _pml: &mut Pml) {}

    /// One-line description of what the caller is blocked on, for deadlock
    /// diagnostics.
    fn describe_pending(&self) -> String {
        String::new()
    }

    /// Number of send-log entries the protocol currently retains (payloads
    /// kept for post-failure re-sends). Protocols without a send log report 0.
    /// Exposed so experiments can assert the log stays bounded under
    /// ack-driven garbage collection.
    fn send_log_len(&self) -> usize {
        0
    }
}

/// Builds one [`Protocol`] instance per physical process. The factory also
/// decides how many physical processes an application of `n` ranks needs
/// (`n` for native, `r·n` for replication degree `r`).
pub trait ProtocolFactory: Send + Sync {
    /// Number of physical processes required for `app_ranks` application ranks.
    fn physical_processes(&self, app_ranks: usize) -> usize;

    /// Build the protocol for physical process `endpoint`.
    fn build(&self, endpoint: EndpointId, app_ranks: usize) -> Box<dyn Protocol>;

    /// Human-readable protocol name (for reports).
    fn name(&self) -> &str;
}

// ---------------------------------------------------------------------------
// Native (non-replicated) pass-through protocol
// ---------------------------------------------------------------------------

/// Pass-through protocol: rank `i` is physical process `i`; every operation
/// maps 1:1 onto the PML. This is the "native Open MPI" configuration of the
/// paper's evaluation.
#[derive(Debug)]
pub struct NativeProtocol {
    rank: Rank,
    size: usize,
}

impl NativeProtocol {
    /// Protocol instance for physical process `endpoint` in a world of `size`.
    pub fn new(endpoint: EndpointId, size: usize) -> Self {
        NativeProtocol {
            rank: endpoint.0,
            size,
        }
    }
}

impl Protocol for NativeProtocol {
    fn app_rank(&self) -> Rank {
        self.rank
    }

    fn app_size(&self) -> usize {
        self.size
    }

    fn isend(
        &mut self,
        pml: &mut Pml,
        dst: Rank,
        comm: crate::types::CommId,
        tag: Tag,
        payload: Bytes,
    ) -> ProtoSendReq {
        assert!(dst < self.size, "destination rank {dst} out of range");
        let req = pml.isend(EndpointId(dst), comm, tag, 0, payload);
        ProtoSendReq(req.0)
    }

    fn irecv(
        &mut self,
        pml: &mut Pml,
        src: Option<Rank>,
        comm: crate::types::CommId,
        tag: TagSel,
    ) -> ProtoRecvReq {
        if let Some(s) = src {
            assert!(s < self.size, "source rank {s} out of range");
        }
        let req = pml.irecv(src.map(EndpointId), comm, tag);
        ProtoRecvReq(req.0)
    }

    fn send_complete(&mut self, pml: &mut Pml, req: ProtoSendReq) -> bool {
        pml.is_complete(crate::matching::PmlReqId(req.0))
    }

    fn recv_complete(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> bool {
        pml.is_complete(crate::matching::PmlReqId(req.0))
    }

    fn take_recv(&mut self, pml: &mut Pml, req: ProtoRecvReq) -> Option<(Status, Bytes)> {
        let (meta, payload) = pml.take_recv(crate::matching::PmlReqId(req.0))?;
        Some((
            Status {
                source: meta.src.0,
                tag: meta.tag,
                len: meta.len,
            },
            payload,
        ))
    }

    fn free_send(&mut self, pml: &mut Pml, req: ProtoSendReq) {
        pml.free(crate::matching::PmlReqId(req.0));
    }

    fn handle_event(&mut self, _pml: &mut Pml, _ev: PmlEvent) {
        // Native executions have no protocol traffic and no fault tolerance:
        // control messages and failure notifications are ignored (a failed
        // peer simply leads to a deadlock, as with a plain MPI library).
    }

    fn describe_pending(&self) -> String {
        format!("native rank {} point-to-point completion", self.rank)
    }
}

/// Factory for [`NativeProtocol`].
#[derive(Debug, Clone, Default)]
pub struct NativeFactory;

impl ProtocolFactory for NativeFactory {
    fn physical_processes(&self, app_ranks: usize) -> usize {
        app_ranks
    }

    fn build(&self, endpoint: EndpointId, app_ranks: usize) -> Box<dyn Protocol> {
        Box::new(NativeProtocol::new(endpoint, app_ranks))
    }

    fn name(&self) -> &str {
        "native"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::CommId;
    use sim_net::{Cluster, Fabric, LogGpModel, Placement};

    fn pml_pair() -> (Pml, Pml) {
        let f = Fabric::new(
            2,
            LogGpModel::fast_test_model(),
            Cluster::new(2, 1),
            Placement::Packed,
        );
        (
            Pml::new(f.endpoint(EndpointId(0))),
            Pml::new(f.endpoint(EndpointId(1))),
        )
    }

    #[test]
    fn native_roundtrip_send_recv() {
        let (mut pml0, mut pml1) = pml_pair();
        let mut proto0 = NativeProtocol::new(EndpointId(0), 2);
        let mut proto1 = NativeProtocol::new(EndpointId(1), 2);

        let sreq = proto0.isend(&mut pml0, 1, CommId::WORLD, 5, Bytes::from_static(b"data"));
        assert!(proto0.send_complete(&mut pml0, sreq));
        proto0.free_send(&mut pml0, sreq);

        let rreq = proto1.irecv(&mut pml1, Some(0), CommId::WORLD, TagSel::Tag(5));
        while !proto1.recv_complete(&mut pml1, rreq) {
            for ev in pml1.progress_blocking("native recv").unwrap() {
                proto1.handle_event(&mut pml1, ev);
            }
        }
        let (status, payload) = proto1.take_recv(&mut pml1, rreq).unwrap();
        assert_eq!(status.source, 0);
        assert_eq!(status.tag, 5);
        assert_eq!(&payload[..], b"data");
    }

    #[test]
    fn native_any_source_reports_actual_sender() {
        let (mut pml0, mut pml1) = pml_pair();
        let mut proto0 = NativeProtocol::new(EndpointId(0), 2);
        let mut proto1 = NativeProtocol::new(EndpointId(1), 2);
        proto0.isend(&mut pml0, 1, CommId::WORLD, 9, Bytes::from_static(b"anon"));
        let rreq = proto1.irecv(&mut pml1, None, CommId::WORLD, TagSel::Any);
        while !proto1.recv_complete(&mut pml1, rreq) {
            for ev in pml1.progress_blocking("any-source recv").unwrap() {
                proto1.handle_event(&mut pml1, ev);
            }
        }
        let (status, _) = proto1.take_recv(&mut pml1, rreq).unwrap();
        assert_eq!(status.source, 0);
        assert_eq!(status.tag, 9);
    }

    #[test]
    fn native_factory_sizes() {
        let f = NativeFactory;
        assert_eq!(f.physical_processes(16), 16);
        assert_eq!(f.name(), "native");
        let p = f.build(EndpointId(3), 16);
        assert_eq!(p.app_rank(), 3);
        assert_eq!(p.app_size(), 16);
        assert_eq!(p.replica_id(), 0);
        assert!(p.is_primary());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn native_rejects_out_of_range_destination() {
        let (mut pml0, _pml1) = pml_pair();
        let mut proto0 = NativeProtocol::new(EndpointId(0), 2);
        proto0.isend(&mut pml0, 5, CommId::WORLD, 0, Bytes::new());
    }
}
