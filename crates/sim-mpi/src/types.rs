//! Basic MPI-like identifiers, wildcards, statuses and errors.

use sim_net::EndpointId;
use std::fmt;

/// A logical MPI rank within a communicator (the application-level identity).
pub type Rank = usize;

/// A message tag.
pub type Tag = i64;

/// Wildcard source: receive from any rank (the paper's `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i64 = -1;

/// Wildcard tag: match any tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Tag = -1;

/// Source specification for a receive request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Receive only from this rank.
    Rank(Rank),
    /// Receive from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl Source {
    /// Convert an `i64`-style source (`>=0` rank or [`ANY_SOURCE`]).
    pub fn from_i64(v: i64) -> Source {
        if v == ANY_SOURCE {
            Source::Any
        } else {
            Source::Rank(v as usize)
        }
    }

    /// Is this the wildcard?
    pub fn is_any(&self) -> bool {
        matches!(self, Source::Any)
    }
}

/// Tag specification for a receive request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagSel {
    /// Match only this tag.
    Tag(Tag),
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
}

impl TagSel {
    /// Convert an `i64`-style tag (`>=0` tag or [`ANY_TAG`]).
    pub fn from_i64(v: i64) -> TagSel {
        if v == ANY_TAG {
            TagSel::Any
        } else {
            TagSel::Tag(v)
        }
    }

    /// Does `tag` satisfy this selector?
    pub fn matches(&self, tag: Tag) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Tag(t) => *t == tag,
        }
    }
}

/// Identifier of a communicator context. All members of a communicator agree
/// on this value; the matching engine uses it to separate message streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u64);

impl CommId {
    /// The application-visible world communicator id.
    pub const WORLD: CommId = CommId(1);
    /// The internal (cross-replica) world used by replication protocols for
    /// protocol traffic. Mirrors the paper's duplicated `MPI_COMM_WORLD` kept
    /// internal to SDR-MPI (Figure 6).
    pub const INTERNAL: CommId = CommId(0);
}

/// Completion status of a receive, as reported to the application
/// (the `MPI_Status` equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank of the sender within the communicator of the receive.
    pub source: Rank,
    /// Tag of the received message.
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
}

/// Errors surfaced by the runtime. Most misuse is reported by panicking (like
/// an MPI implementation aborting the job); errors are reserved for conditions
/// an application or protocol might want to observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A blocking operation made no progress within the fabric's real-time
    /// timeout: the simulated application is deadlocked.
    Deadlock {
        /// Physical process that detected the deadlock.
        endpoint: EndpointId,
        /// Human-readable description of what the process was waiting for.
        waiting_for: String,
    },
    /// Operation on an unknown or already-freed request handle.
    InvalidRequest,
    /// Operation on a rank outside the communicator.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Size of the communicator.
        size: usize,
    },
    /// The peer process failed and the operation cannot complete under the
    /// active protocol (e.g. no replica left to substitute).
    PeerFailed {
        /// The failed physical process.
        endpoint: EndpointId,
    },
    /// Every replica of an application rank has failed: no substitute can be
    /// elected and the job cannot make progress (the paper would fall back to
    /// checkpoint/restart here). Surfaced as a clear job failure instead of a
    /// hang.
    RankLost {
        /// The application rank whose replicas are all gone.
        rank: usize,
        /// The job's replication degree.
        degree: usize,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Deadlock {
                endpoint,
                waiting_for,
            } => {
                write!(
                    f,
                    "deadlock detected on process {}: waiting for {waiting_for}",
                    endpoint.0
                )
            }
            MpiError::InvalidRequest => write!(f, "invalid request handle"),
            MpiError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::PeerFailed { endpoint } => {
                write!(f, "peer process {} failed", endpoint.0)
            }
            MpiError::RankLost { rank, degree } => {
                write!(
                    f,
                    "rank {rank} lost all {degree} replicas; no substitute available \
                     (the job cannot continue without checkpoint/restart)"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience result type.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_wildcard_roundtrip() {
        assert_eq!(Source::from_i64(ANY_SOURCE), Source::Any);
        assert_eq!(Source::from_i64(3), Source::Rank(3));
        assert!(Source::Any.is_any());
        assert!(!Source::Rank(0).is_any());
    }

    #[test]
    fn tag_selector_matching() {
        assert!(TagSel::Any.matches(0));
        assert!(TagSel::Any.matches(12345));
        assert!(TagSel::Tag(7).matches(7));
        assert!(!TagSel::Tag(7).matches(8));
        assert_eq!(TagSel::from_i64(ANY_TAG), TagSel::Any);
        assert_eq!(TagSel::from_i64(9), TagSel::Tag(9));
    }

    #[test]
    fn comm_ids_reserved() {
        assert_ne!(CommId::WORLD, CommId::INTERNAL);
    }

    #[test]
    fn error_display_is_informative() {
        let e = MpiError::Deadlock {
            endpoint: EndpointId(3),
            waiting_for: "ack from replica 1".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("process 3"));
        assert!(s.contains("ack from replica 1"));
        assert!(format!("{}", MpiError::InvalidRank { rank: 9, size: 4 }).contains("9"));
    }
}
