//! Minimal datatype support: converting typed slices to and from the byte
//! payloads carried by the fabric.
//!
//! The real MPI datatype engine (derived types, packing) is far larger than
//! anything the replication protocol interacts with; SDR-MPI treats payloads
//! as opaque bytes. We therefore only provide the conversions the workloads
//! need: `f64`, `i64`, `u64`, `u32` and raw bytes, all little-endian.

use bytes::Bytes;

/// Encode a slice of `f64` values.
pub fn f64s_to_bytes(values: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Decode a payload produced by [`f64s_to_bytes`].
///
/// Panics if the payload length is not a multiple of 8.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len() % 8 == 0,
        "payload length {} not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Encode a slice of `i64` values.
pub fn i64s_to_bytes(values: &[i64]) -> Bytes {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Decode a payload produced by [`i64s_to_bytes`].
pub fn bytes_to_i64s(bytes: &[u8]) -> Vec<i64> {
    assert!(
        bytes.len() % 8 == 0,
        "payload length {} not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Encode a slice of `u64` values.
pub fn u64s_to_bytes(values: &[u64]) -> Bytes {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Decode a payload produced by [`u64s_to_bytes`].
pub fn bytes_to_u64s(bytes: &[u8]) -> Vec<u64> {
    assert!(
        bytes.len() % 8 == 0,
        "payload length {} not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Encode a single `f64`.
pub fn f64_to_bytes(v: f64) -> Bytes {
    Bytes::copy_from_slice(&v.to_le_bytes())
}

/// Decode a single `f64` (panics on wrong length).
pub fn bytes_to_f64(bytes: &[u8]) -> f64 {
    assert_eq!(bytes.len(), 8, "expected 8 bytes for an f64");
    f64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

/// Encode a single `u64`.
pub fn u64_to_bytes(v: u64) -> Bytes {
    Bytes::copy_from_slice(&v.to_le_bytes())
}

/// Decode a single `u64` (panics on wrong length).
pub fn bytes_to_u64(bytes: &[u8]) -> u64 {
    assert_eq!(bytes.len(), 8, "expected 8 bytes for a u64");
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    fn i64_roundtrip() {
        let v = vec![0, -1, i64::MAX, i64::MIN, 42];
        assert_eq!(bytes_to_i64s(&i64s_to_bytes(&v)), v);
    }

    #[test]
    fn u64_roundtrip() {
        let v = vec![0, 1, u64::MAX, 0xdead_beef];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&v)), v);
    }

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(bytes_to_f64(&f64_to_bytes(2.75)), 2.75);
        assert_eq!(bytes_to_u64(&u64_to_bytes(77)), 77);
    }

    #[test]
    fn empty_slices() {
        assert!(bytes_to_f64s(&f64s_to_bytes(&[])).is_empty());
        assert!(bytes_to_i64s(&i64s_to_bytes(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn misaligned_payload_panics() {
        bytes_to_f64s(&[1, 2, 3]);
    }
}
