//! Groups and communicators.
//!
//! The application-visible communicator machinery lives above the protocol
//! layer: a communicator is a set of application-world ranks plus a context id
//! used by the matching engine to separate message streams. Because SDR-MPI
//! gives every replica set its own transparent `MPI_COMM_WORLD` (Figure 6 of
//! the paper), the same context-id derivation runs identically inside every
//! replica, so all replicas agree on the ids of derived communicators without
//! any extra communication.

use crate::types::{CommId, Rank};

/// An ordered set of application-world ranks (the `MPI_Group` equivalent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<Rank>,
}

impl Group {
    /// Group containing world ranks `0..n`.
    pub fn world(n: usize) -> Self {
        Group {
            members: (0..n).collect(),
        }
    }

    /// Group from an explicit member list (must not contain duplicates).
    pub fn from_members(members: Vec<Rank>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for m in &members {
            assert!(seen.insert(*m), "duplicate rank {m} in group");
        }
        Group { members }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Is the group empty?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The world rank of group member `group_rank`.
    pub fn world_rank(&self, group_rank: Rank) -> Rank {
        self.members[group_rank]
    }

    /// The group rank of `world_rank`, if it is a member.
    pub fn rank_of(&self, world_rank: Rank) -> Option<Rank> {
        self.members.iter().position(|&m| m == world_rank)
    }

    /// Does the group contain `world_rank`?
    pub fn contains(&self, world_rank: Rank) -> bool {
        self.rank_of(world_rank).is_some()
    }

    /// Members in group-rank order.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// `MPI_Group_incl`: sub-group of the listed group ranks, in that order.
    pub fn incl(&self, group_ranks: &[Rank]) -> Group {
        Group::from_members(group_ranks.iter().map(|&r| self.members[r]).collect())
    }

    /// `MPI_Group_excl`: group without the listed group ranks.
    pub fn excl(&self, group_ranks: &[Rank]) -> Group {
        let excluded: std::collections::BTreeSet<_> = group_ranks.iter().copied().collect();
        Group {
            members: self
                .members
                .iter()
                .enumerate()
                .filter(|(i, _)| !excluded.contains(i))
                .map(|(_, &m)| m)
                .collect(),
        }
    }

    /// `MPI_Group_union`: members of `self` followed by members of `other`
    /// not already present.
    pub fn union(&self, other: &Group) -> Group {
        let mut members = self.members.clone();
        for &m in &other.members {
            if !members.contains(&m) {
                members.push(m);
            }
        }
        Group { members }
    }

    /// `MPI_Group_intersection`: members of `self` also present in `other`,
    /// in `self` order.
    pub fn intersection(&self, other: &Group) -> Group {
        Group {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| other.contains(*m))
                .collect(),
        }
    }

    /// `MPI_Group_difference`: members of `self` not present in `other`.
    pub fn difference(&self, other: &Group) -> Group {
        Group {
            members: self
                .members
                .iter()
                .copied()
                .filter(|m| !other.contains(*m))
                .collect(),
        }
    }

    /// `MPI_Group_translate_ranks`: for each group rank in `ranks` (relative
    /// to `self`), the corresponding group rank in `other`, or `None` if the
    /// member is absent there.
    pub fn translate_ranks(&self, ranks: &[Rank], other: &Group) -> Vec<Option<Rank>> {
        ranks
            .iter()
            .map(|&r| other.rank_of(self.members[r]))
            .collect()
    }
}

/// A communicator as seen by one process: context id, member group, and this
/// process's rank within it.
#[derive(Debug, Clone)]
pub struct CommInfo {
    /// Matching-engine context id (agreed by all members).
    pub id: CommId,
    /// Member group (application-world ranks).
    pub group: Group,
    /// This process's rank within the communicator.
    pub my_rank: Rank,
    /// Per-communicator collective sequence number (used to build collision-
    /// free internal tags for successive collective operations).
    pub coll_seq: u64,
    /// Counter of contexts derived from this communicator (dup/split), used
    /// to derive agreed child context ids without communication.
    pub derived: u64,
}

impl CommInfo {
    /// The world communicator for an application of `n` ranks, seen from
    /// `my_rank`.
    pub fn world(n: usize, my_rank: Rank) -> Self {
        CommInfo {
            id: CommId::WORLD,
            group: Group::world(n),
            my_rank,
            coll_seq: 0,
            derived: 0,
        }
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// Translate a communicator rank to an application-world rank.
    pub fn world_rank(&self, comm_rank: Rank) -> Rank {
        self.group.world_rank(comm_rank)
    }

    /// Translate an application-world rank to a communicator rank.
    pub fn comm_rank_of(&self, world_rank: Rank) -> Option<Rank> {
        self.group.rank_of(world_rank)
    }
}

/// Derive a child context id from a parent context. All members of the parent
/// call this with the same `derivation_index`; members that end up in the same
/// child (same `color`) therefore agree on the id, and different colors get
/// different ids. The hash is a simple 64-bit mix (SplitMix64-style), stable
/// across platforms.
pub fn derive_comm_id(parent: CommId, derivation_index: u64, color: i64) -> CommId {
    let mut z = parent
        .0
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(derivation_index)
        .wrapping_add((color as u64).wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    // Avoid colliding with the reserved ids.
    CommId(z | 0x1_0000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group_identity_mapping() {
        let g = Group::world(4);
        assert_eq!(g.size(), 4);
        for r in 0..4 {
            assert_eq!(g.world_rank(r), r);
            assert_eq!(g.rank_of(r), Some(r));
        }
        assert_eq!(g.rank_of(4), None);
    }

    #[test]
    fn incl_excl() {
        let g = Group::world(6);
        let sub = g.incl(&[4, 1, 3]);
        assert_eq!(sub.members(), &[4, 1, 3]);
        assert_eq!(sub.rank_of(4), Some(0));
        let rest = g.excl(&[0, 2]);
        assert_eq!(rest.members(), &[1, 3, 4, 5]);
    }

    #[test]
    fn set_operations() {
        let a = Group::from_members(vec![0, 1, 2, 3]);
        let b = Group::from_members(vec![2, 3, 4, 5]);
        assert_eq!(a.union(&b).members(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).members(), &[2, 3]);
        assert_eq!(a.difference(&b).members(), &[0, 1]);
        assert_eq!(b.difference(&a).members(), &[4, 5]);
    }

    #[test]
    fn translate_ranks_between_groups() {
        let a = Group::from_members(vec![0, 1, 2, 3]);
        let b = Group::from_members(vec![3, 1]);
        assert_eq!(
            a.translate_ranks(&[0, 1, 3], &b),
            vec![None, Some(1), Some(0)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn duplicate_members_rejected() {
        Group::from_members(vec![0, 1, 1]);
    }

    #[test]
    fn comm_info_rank_translation() {
        let mut info = CommInfo::world(8, 5);
        info.group = Group::from_members(vec![1, 3, 5, 7]);
        info.my_rank = 2;
        assert_eq!(info.size(), 4);
        assert_eq!(info.world_rank(2), 5);
        assert_eq!(info.comm_rank_of(7), Some(3));
        assert_eq!(info.comm_rank_of(0), None);
    }

    #[test]
    fn derived_ids_agree_for_same_inputs_and_differ_otherwise() {
        let a = derive_comm_id(CommId::WORLD, 0, 0);
        let b = derive_comm_id(CommId::WORLD, 0, 0);
        assert_eq!(a, b, "same derivation must agree across processes");
        assert_ne!(
            derive_comm_id(CommId::WORLD, 1, 0),
            a,
            "different index differs"
        );
        assert_ne!(
            derive_comm_id(CommId::WORLD, 0, 1),
            a,
            "different color differs"
        );
        assert_ne!(a, CommId::WORLD);
        assert_ne!(a, CommId::INTERNAL);
    }
}
