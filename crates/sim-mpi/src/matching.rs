//! The message matching engine: posted-receive queue and unexpected-message
//! queue.
//!
//! This is the part of the PML where the paper's `match` event happens: an
//! incoming message is matched against posted receive requests on
//! (communicator, source, tag), honouring the `MPI_ANY_SOURCE` and
//! `MPI_ANY_TAG` wildcards. Messages that arrive before a matching receive has
//! been posted go to the *unexpected queue*; delivering from the unexpected
//! queue later costs an extra copy, which is exactly the cost the paper says
//! leader-based protocols inflate by delaying receive posting (Section 3.1).
//!
//! Both queues are **indexed**, not linear:
//!
//! * Posted receives live in buckets keyed by `(comm, source filter, tag
//!   filter)` — wildcard filters get their own buckets — and carry a global
//!   posting-order sequence number. An incoming message can only be claimed by
//!   one of the four buckets its `(comm, src, tag)` projects onto
//!   (specific/specific, specific/any, any/specific, any/any); taking the
//!   bucket head with the smallest posting sequence reproduces MPI's
//!   posting-order semantics exactly, in O(1) hash lookups instead of a scan.
//! * Unexpected messages live in buckets keyed by the concrete `(comm, src,
//!   tag)` and carry an arrival sequence number. A specific receive pops its
//!   bucket head directly; a wildcard receive takes the minimum arrival
//!   sequence over the communicator's matching bucket heads (bounded by the
//!   number of distinct live `(src, tag)` pairs, not by queue length).

use crate::types::{CommId, Tag, TagSel};
use bytes::Bytes;
use sim_net::{EndpointId, SimTime};
use std::collections::VecDeque;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiplicative hasher for the engine's small integer-tuple keys.
/// The default SipHash is DoS-resistant but costs more than the matching
/// logic itself at this granularity; bucket keys are derived from trusted
/// in-process state, so the cheap mix is safe.
#[derive(Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        // Fibonacci-style multiplicative mixing; plenty for integer keys.
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type HashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<KeyHasher>>;

/// One communicator's unexpected-message buckets: concrete (src, tag) →
/// FIFO of (arrival seq, message).
type UnexpectedBuckets = HashMap<(EndpointId, Tag), VecDeque<(u64, IncomingMsg)>>;

/// Identifier of a PML-level request (send or receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PmlReqId(pub u64);

/// An application-class message delivered by the fabric, after the wire
/// header has been decoded.
#[derive(Debug, Clone)]
pub struct IncomingMsg {
    /// Sending physical process.
    pub src: EndpointId,
    /// Communicator context.
    pub comm: CommId,
    /// Message tag.
    pub tag: Tag,
    /// PML-level sequence number for the (src, dst, comm) stream.
    pub seq: u64,
    /// Protocol-defined auxiliary word (SDR-MPI stores its application-level
    /// per-rank-pair sequence number here).
    pub aux: i64,
    /// Payload.
    pub payload: Bytes,
    /// Virtual arrival time at the receiver.
    pub arrival: SimTime,
}

/// A receive request posted to the matching engine.
#[derive(Debug, Clone)]
pub struct PostedRecv {
    /// The request this posting belongs to.
    pub req: PmlReqId,
    /// Source filter: `None` means `MPI_ANY_SOURCE`.
    pub src: Option<EndpointId>,
    /// Communicator context.
    pub comm: CommId,
    /// Tag filter.
    pub tag: TagSel,
}

impl PostedRecv {
    fn matches(&self, m: &IncomingMsg) -> bool {
        self.comm == m.comm
            && self.tag.matches(m.tag)
            && self.src.map(|s| s == m.src).unwrap_or(true)
    }
}

/// Result of delivering a message from the unexpected queue: the engine also
/// reports that an extra copy is required so the PML can charge its cost.
#[derive(Debug, Clone)]
pub struct UnexpectedDelivery {
    /// The matched message.
    pub msg: IncomingMsg,
    /// Always true; kept explicit for readability at call sites.
    pub extra_copy: bool,
}

/// Bucket key for posted receives: the filter triple, with `None` standing
/// for the `MPI_ANY_SOURCE` / `MPI_ANY_TAG` wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PostKey {
    comm: CommId,
    src: Option<EndpointId>,
    tag: Option<Tag>,
}

impl PostKey {
    fn of(posting: &PostedRecv) -> PostKey {
        PostKey {
            comm: posting.comm,
            src: posting.src,
            tag: match posting.tag {
                TagSel::Tag(t) => Some(t),
                TagSel::Any => None,
            },
        }
    }

    /// Which of the four filter kinds this key belongs to; see
    /// [`MatchingEngine::posted_kinds`].
    fn kind(&self) -> usize {
        (self.src.is_none() as usize) | ((self.tag.is_none() as usize) << 1)
    }
}

/// Matching engine state.
#[derive(Debug, Default)]
pub struct MatchingEngine {
    /// Posted receives, bucketed by filter triple. Entries carry the global
    /// posting sequence; each bucket is sorted by it. Cancelled/redirected
    /// entries are tombstoned via `posted_where` and skipped lazily.
    posted: HashMap<PostKey, VecDeque<(u64, PostedRecv)>>,
    /// Live postings: request id → bucket it currently lives in.
    posted_where: HashMap<PmlReqId, PostKey>,
    /// Live posting count per filter kind (specific/specific, any-source,
    /// any-tag, any/any). Lets [`MatchingEngine::incoming`] probe only bucket
    /// kinds that can exist — applications that never post wildcards pay for
    /// exactly one lookup per message.
    posted_kinds: [usize; 4],
    posted_seq: u64,
    /// Unexpected messages, bucketed per communicator by concrete (src, tag).
    /// Entries carry the global arrival sequence; buckets are FIFO in it.
    unexpected: HashMap<CommId, UnexpectedBuckets>,
    unexpected_live: usize,
    arrival_seq: u64,
    /// Highest number of simultaneously queued unexpected messages (a useful
    /// experiment statistic: leader-based protocols grow this).
    peak_unexpected: usize,
    total_unexpected: u64,
}

impl MatchingEngine {
    /// New empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the posting at the head of `bucket` still live (not cancelled, not
    /// redirected into another bucket)?
    fn head_is_live(
        posted_where: &HashMap<PmlReqId, PostKey>,
        key: &PostKey,
        req: PmlReqId,
    ) -> bool {
        posted_where.get(&req) == Some(key)
    }

    /// The bucket of `comm_map` holding the earliest-arriving message that
    /// matches the (src, tag) filter pair, honouring wildcards. Shared by
    /// [`MatchingEngine::take_unexpected`] (which pops it) and
    /// [`MatchingEngine::probe`] (which peeks), so the two can never disagree
    /// about which message matches first.
    fn earliest_unexpected_bucket(
        comm_map: &UnexpectedBuckets,
        src: Option<EndpointId>,
        tag: TagSel,
    ) -> Option<(EndpointId, Tag)> {
        if let (Some(s), TagSel::Tag(t)) = (src, tag) {
            let k = (s, t);
            return comm_map.contains_key(&k).then_some(k);
        }
        // Wildcard on source and/or tag: minimum arrival sequence over the
        // communicator's matching bucket heads.
        let mut best: Option<(u64, (EndpointId, Tag))> = None;
        for (&(msrc, mtag), q) in comm_map.iter() {
            if let Some(want) = src {
                if want != msrc {
                    continue;
                }
            }
            if !tag.matches(mtag) {
                continue;
            }
            if let Some(&(seq, _)) = q.front() {
                if best.map(|(s, _)| seq < s).unwrap_or(true) {
                    best = Some((seq, (msrc, mtag)));
                }
            }
        }
        best.map(|(_, bucket)| bucket)
    }

    /// Pop the earliest unexpected message matching `posting`, if any.
    fn take_unexpected(&mut self, posting: &PostedRecv) -> Option<IncomingMsg> {
        let comm_map = self.unexpected.get_mut(&posting.comm)?;
        let bucket = Self::earliest_unexpected_bucket(comm_map, posting.src, posting.tag)?;
        let q = comm_map.get_mut(&bucket).expect("bucket exists");
        let (_, msg) = q.pop_front().expect("bucket non-empty");
        if q.is_empty() {
            comm_map.remove(&bucket);
        }
        if comm_map.is_empty() {
            self.unexpected.remove(&posting.comm);
        }
        self.unexpected_live -= 1;
        Some(msg)
    }

    /// Post a receive request. If a message in the unexpected queue already
    /// matches it, the earliest such message is removed and returned (the
    /// request completes immediately, at the cost of an extra copy).
    pub fn post_recv(&mut self, posting: PostedRecv) -> Option<UnexpectedDelivery> {
        if let Some(msg) = self.take_unexpected(&posting) {
            return Some(UnexpectedDelivery {
                msg,
                extra_copy: true,
            });
        }
        let key = PostKey::of(&posting);
        let seq = self.posted_seq;
        self.posted_seq += 1;
        self.posted_where.insert(posting.req, key);
        self.posted_kinds[key.kind()] += 1;
        self.posted
            .entry(key)
            .or_default()
            .push_back((seq, posting));
        None
    }

    /// Handle an incoming message. If a posted receive matches (first match in
    /// posting order, per MPI semantics), that posting is removed and its
    /// request id returned together with the message. Otherwise the message is
    /// stored in the unexpected queue.
    pub fn incoming(&mut self, msg: IncomingMsg) -> Option<(PmlReqId, IncomingMsg)> {
        // The only buckets whose filters can match this message.
        let candidates = [
            PostKey {
                comm: msg.comm,
                src: Some(msg.src),
                tag: Some(msg.tag),
            },
            PostKey {
                comm: msg.comm,
                src: Some(msg.src),
                tag: None,
            },
            PostKey {
                comm: msg.comm,
                src: None,
                tag: Some(msg.tag),
            },
            PostKey {
                comm: msg.comm,
                src: None,
                tag: None,
            },
        ];
        let mut best: Option<(u64, PostKey)> = None;
        for key in candidates {
            if self.posted_kinds[key.kind()] == 0 {
                continue; // no live posting of this filter kind exists at all
            }
            if let Some(q) = self.posted.get_mut(&key) {
                // Drop tombstoned heads (cancelled or redirected elsewhere).
                while let Some(&(_, ref p)) = q.front() {
                    if Self::head_is_live(&self.posted_where, &key, p.req) {
                        break;
                    }
                    q.pop_front();
                }
                match q.front() {
                    Some(&(seq, _)) => {
                        if best.map(|(s, _)| seq < s).unwrap_or(true) {
                            best = Some((seq, key));
                        }
                    }
                    None => {
                        self.posted.remove(&key);
                    }
                }
            }
        }
        if let Some((_, key)) = best {
            let q = self.posted.get_mut(&key).expect("bucket exists");
            let (_, posting) = q.pop_front().expect("bucket non-empty");
            if q.is_empty() {
                self.posted.remove(&key);
            }
            self.posted_where.remove(&posting.req);
            self.posted_kinds[key.kind()] -= 1;
            debug_assert!(posting.matches(&msg));
            Some((posting.req, msg))
        } else {
            let seq = self.arrival_seq;
            self.arrival_seq += 1;
            self.unexpected
                .entry(msg.comm)
                .or_default()
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back((seq, msg));
            self.unexpected_live += 1;
            self.total_unexpected += 1;
            self.peak_unexpected = self.peak_unexpected.max(self.unexpected_live);
            None
        }
    }

    /// Remove a posted receive. Returns true if it was still posted. The
    /// bucket entry is tombstoned and reclaimed lazily.
    pub fn cancel(&mut self, req: PmlReqId) -> bool {
        match self.posted_where.remove(&req) {
            Some(key) => {
                self.posted_kinds[key.kind()] -= 1;
                true
            }
            None => false,
        }
    }

    /// Change the source filter of a posted receive (Algorithm 1, line 35:
    /// receive requests from a failed replica are redirected to its
    /// substitute). If the new filter matches an unexpected message, that
    /// message is delivered immediately; otherwise the posting moves to its
    /// new bucket, keeping its original posting-order priority.
    pub fn redirect(
        &mut self,
        req: PmlReqId,
        new_src: Option<EndpointId>,
    ) -> Option<UnexpectedDelivery> {
        let old_key = *self.posted_where.get(&req)?;
        let old_bucket = self.posted.get_mut(&old_key).expect("live posting bucket");
        let pos = old_bucket
            .iter()
            .position(|(_, p)| p.req == req)
            .expect("live posting present in its bucket");
        let (seq, mut posting) = old_bucket.remove(pos).expect("position valid");
        if old_bucket.is_empty() {
            self.posted.remove(&old_key);
        }
        posting.src = new_src;
        self.posted_kinds[old_key.kind()] -= 1;
        if let Some(msg) = self.take_unexpected(&posting) {
            self.posted_where.remove(&req);
            return Some(UnexpectedDelivery {
                msg,
                extra_copy: true,
            });
        }
        let new_key = PostKey::of(&posting);
        self.posted_where.insert(req, new_key);
        self.posted_kinds[new_key.kind()] += 1;
        let bucket = self.posted.entry(new_key).or_default();
        // Keep the bucket sorted by posting sequence: the redirected request
        // retains its original matching priority.
        let at = bucket.partition_point(|&(s, _)| s < seq);
        bucket.insert(at, (seq, posting));
        None
    }

    /// Is there an unexpected message matching (comm, src, tag)? Used by
    /// `MPI_Iprobe`-style calls.
    pub fn probe(
        &self,
        comm: CommId,
        src: Option<EndpointId>,
        tag: TagSel,
    ) -> Option<&IncomingMsg> {
        let comm_map = self.unexpected.get(&comm)?;
        let bucket = Self::earliest_unexpected_bucket(comm_map, src, tag)?;
        comm_map
            .get(&bucket)
            .and_then(|q| q.front())
            .map(|(_, m)| m)
    }

    /// Number of currently posted receives.
    pub fn posted_len(&self) -> usize {
        self.posted_where.len()
    }

    /// Number of currently queued unexpected messages.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_live
    }

    /// Peak length of the unexpected queue over the lifetime of the engine.
    pub fn peak_unexpected(&self) -> usize {
        self.peak_unexpected
    }

    /// Total number of messages that ever went through the unexpected queue.
    pub fn total_unexpected(&self) -> u64 {
        self.total_unexpected
    }

    /// The source filters of all currently posted receives, **in posting
    /// order** (used by failure handling to find requests that need
    /// redirecting — redirects deliver queued unexpected messages
    /// immediately, so the iteration order decides which posting matches
    /// first and must follow MPI's posting-order rule).
    pub fn posted_requests(&self) -> impl Iterator<Item = &PostedRecv> {
        let posted_where = &self.posted_where;
        let mut live: Vec<&(u64, PostedRecv)> = self
            .posted
            .iter()
            .flat_map(move |(key, q)| {
                q.iter()
                    .filter(move |(_, p)| posted_where.get(&p.req) == Some(key))
            })
            .collect();
        live.sort_unstable_by_key(|(seq, _)| *seq);
        live.into_iter().map(|(_, p)| p)
    }

    /// Drop every unexpected message for which `discard` returns true.
    /// Returns how many were dropped. Used by protocols that deliberately
    /// over-send (the mirror protocol's redundant copies) to keep the
    /// unexpected queue bounded.
    pub fn purge_unexpected<F: FnMut(&IncomingMsg) -> bool>(&mut self, mut discard: F) -> usize {
        let mut dropped = 0;
        self.unexpected.retain(|_, comm_map| {
            comm_map.retain(|_, q| {
                let before = q.len();
                q.retain(|(_, m)| !discard(m));
                dropped += before - q.len();
                !q.is_empty()
            });
            !comm_map.is_empty()
        });
        self.unexpected_live -= dropped;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, comm: u64, tag: Tag, seq: u64) -> IncomingMsg {
        IncomingMsg {
            src: EndpointId(src),
            comm: CommId(comm),
            tag,
            seq,
            aux: 0,
            payload: Bytes::from(vec![seq as u8]),
            arrival: SimTime::from_nanos(seq),
        }
    }

    fn posting(req: u64, src: Option<usize>, comm: u64, tag: TagSel) -> PostedRecv {
        PostedRecv {
            req: PmlReqId(req),
            src: src.map(EndpointId),
            comm: CommId(comm),
            tag,
        }
    }

    #[test]
    fn exact_match_on_posted_recv() {
        let mut eng = MatchingEngine::new();
        assert!(eng
            .post_recv(posting(1, Some(0), 1, TagSel::Tag(5)))
            .is_none());
        let matched = eng.incoming(msg(0, 1, 5, 0));
        assert_eq!(matched.map(|(r, _)| r), Some(PmlReqId(1)));
        assert_eq!(eng.posted_len(), 0);
        assert_eq!(eng.unexpected_len(), 0);
    }

    #[test]
    fn mismatched_message_goes_unexpected() {
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(0), 1, TagSel::Tag(5)));
        // Wrong tag.
        assert!(eng.incoming(msg(0, 1, 6, 0)).is_none());
        // Wrong source.
        assert!(eng.incoming(msg(2, 1, 5, 1)).is_none());
        // Wrong communicator.
        assert!(eng.incoming(msg(0, 2, 5, 2)).is_none());
        assert_eq!(eng.unexpected_len(), 3);
        assert_eq!(eng.posted_len(), 1);
        assert_eq!(eng.total_unexpected(), 3);
    }

    #[test]
    fn any_source_matches_any_sender() {
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, None, 1, TagSel::Tag(5)));
        let matched = eng.incoming(msg(17, 1, 5, 0));
        assert_eq!(
            matched.map(|(r, m)| (r, m.src)),
            Some((PmlReqId(1), EndpointId(17)))
        );
    }

    #[test]
    fn any_tag_matches_any_tag() {
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(0), 1, TagSel::Any));
        assert!(eng.incoming(msg(0, 1, 999, 0)).is_some());
    }

    #[test]
    fn unexpected_message_delivered_on_later_post() {
        let mut eng = MatchingEngine::new();
        assert!(eng.incoming(msg(0, 1, 5, 0)).is_none());
        let delivery = eng.post_recv(posting(1, Some(0), 1, TagSel::Tag(5)));
        let d = delivery.expect("unexpected message should be delivered");
        assert!(d.extra_copy);
        assert_eq!(d.msg.seq, 0);
        assert_eq!(eng.unexpected_len(), 0);
        assert_eq!(eng.posted_len(), 0);
    }

    #[test]
    fn posting_order_respected_for_matching() {
        // Two identical postings: the first posted must match the first message.
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(0), 1, TagSel::Tag(5)));
        eng.post_recv(posting(2, Some(0), 1, TagSel::Tag(5)));
        let first = eng.incoming(msg(0, 1, 5, 0)).unwrap();
        let second = eng.incoming(msg(0, 1, 5, 1)).unwrap();
        assert_eq!(first.0, PmlReqId(1));
        assert_eq!(second.0, PmlReqId(2));
    }

    #[test]
    fn arrival_order_respected_in_unexpected_queue() {
        let mut eng = MatchingEngine::new();
        eng.incoming(msg(0, 1, 5, 0));
        eng.incoming(msg(0, 1, 5, 1));
        let d1 = eng
            .post_recv(posting(1, Some(0), 1, TagSel::Tag(5)))
            .unwrap();
        let d2 = eng
            .post_recv(posting(2, Some(0), 1, TagSel::Tag(5)))
            .unwrap();
        assert_eq!(d1.msg.seq, 0, "earliest unexpected message first");
        assert_eq!(d2.msg.seq, 1);
    }

    #[test]
    fn wildcard_posting_does_not_steal_from_specific_older_posting() {
        // MPI semantics: matching is in posting order. A specific posting made
        // earlier must match before a wildcard posted later.
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(0), 1, TagSel::Tag(5)));
        eng.post_recv(posting(2, None, 1, TagSel::Any));
        let (req, _) = eng.incoming(msg(0, 1, 5, 0)).unwrap();
        assert_eq!(req, PmlReqId(1));
    }

    #[test]
    fn cancel_removes_posting() {
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(0), 1, TagSel::Tag(5)));
        assert!(eng.cancel(PmlReqId(1)));
        assert!(!eng.cancel(PmlReqId(1)), "cancel is not idempotent-true");
        assert!(
            eng.incoming(msg(0, 1, 5, 0)).is_none(),
            "cancelled posting no longer matches"
        );
    }

    #[test]
    fn redirect_changes_source_and_may_deliver_unexpected() {
        let mut eng = MatchingEngine::new();
        // Message from endpoint 9 arrives; posted recv expects endpoint 3.
        eng.incoming(msg(9, 1, 5, 0));
        eng.post_recv(posting(1, Some(3), 1, TagSel::Tag(5)));
        assert_eq!(eng.unexpected_len(), 1);
        // Failure handling redirects the posting to endpoint 9 (the substitute):
        // the queued message is delivered immediately.
        let d = eng
            .redirect(PmlReqId(1), Some(EndpointId(9)))
            .expect("delivered");
        assert_eq!(d.msg.src, EndpointId(9));
        assert_eq!(eng.posted_len(), 0);
    }

    #[test]
    fn redirect_without_queued_message_just_updates_filter() {
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(3), 1, TagSel::Tag(5)));
        assert!(eng.redirect(PmlReqId(1), Some(EndpointId(9))).is_none());
        // Now a message from 9 matches, one from 3 does not.
        assert!(eng.incoming(msg(3, 1, 5, 0)).is_none());
        assert!(eng.incoming(msg(9, 1, 5, 1)).is_some());
    }

    #[test]
    fn probe_finds_unexpected_without_removing() {
        let mut eng = MatchingEngine::new();
        eng.incoming(msg(2, 1, 7, 0));
        assert!(eng.probe(CommId(1), None, TagSel::Any).is_some());
        assert!(eng
            .probe(CommId(1), Some(EndpointId(2)), TagSel::Tag(7))
            .is_some());
        assert!(eng
            .probe(CommId(1), Some(EndpointId(3)), TagSel::Tag(7))
            .is_none());
        assert!(eng.probe(CommId(2), None, TagSel::Any).is_none());
        assert_eq!(eng.unexpected_len(), 1, "probe must not consume");
    }

    #[test]
    fn wildcard_post_takes_earliest_arrival_across_source_buckets() {
        // Messages land in distinct (src, tag) buckets; an any-source/any-tag
        // posting must still drain them in global arrival order.
        let mut eng = MatchingEngine::new();
        eng.incoming(msg(4, 1, 8, 0));
        eng.incoming(msg(2, 1, 5, 1));
        eng.incoming(msg(4, 1, 5, 2));
        eng.incoming(msg(7, 1, 9, 3));
        for expect in 0..4u64 {
            let d = eng
                .post_recv(posting(expect, None, 1, TagSel::Any))
                .expect("delivered");
            assert_eq!(d.msg.seq, expect, "arrival order across buckets");
        }
        assert_eq!(eng.unexpected_len(), 0);
    }

    #[test]
    fn redirect_preserves_posting_order_priority_in_new_bucket() {
        // Posting 1 (earlier) expects src 5; posting 2 (later) expects src 9.
        // Redirecting posting 1 to src 9 moves it into posting 2's bucket but
        // must keep its earlier posting-order priority.
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(5), 1, TagSel::Tag(3)));
        eng.post_recv(posting(2, Some(9), 1, TagSel::Tag(3)));
        assert!(eng.redirect(PmlReqId(1), Some(EndpointId(9))).is_none());
        let (first, _) = eng.incoming(msg(9, 1, 3, 0)).unwrap();
        let (second, _) = eng.incoming(msg(9, 1, 3, 1)).unwrap();
        assert_eq!(first, PmlReqId(1), "redirected posting keeps its priority");
        assert_eq!(second, PmlReqId(2));
    }

    #[test]
    fn cancelled_posting_tombstone_does_not_block_bucket() {
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(0), 1, TagSel::Tag(5)));
        eng.post_recv(posting(2, Some(0), 1, TagSel::Tag(5)));
        eng.post_recv(posting(3, Some(0), 1, TagSel::Tag(5)));
        assert!(eng.cancel(PmlReqId(1)));
        assert!(eng.cancel(PmlReqId(2)));
        assert_eq!(eng.posted_len(), 1);
        let (req, _) = eng.incoming(msg(0, 1, 5, 0)).unwrap();
        assert_eq!(req, PmlReqId(3), "tombstones skipped to the live posting");
    }

    #[test]
    fn specific_posting_beats_later_wildcard_across_buckets() {
        let mut eng = MatchingEngine::new();
        // Wildcard posted FIRST must win over a specific posting made later.
        eng.post_recv(posting(1, None, 1, TagSel::Any));
        eng.post_recv(posting(2, Some(0), 1, TagSel::Tag(5)));
        let (req, _) = eng.incoming(msg(0, 1, 5, 0)).unwrap();
        assert_eq!(req, PmlReqId(1), "posting order wins across bucket kinds");
    }

    #[test]
    fn posted_requests_iterates_in_posting_order_across_buckets() {
        // Failure handling redirects pending receives in the order this
        // iterator yields them, and a redirect can consume a queued
        // unexpected message immediately — so the order must be posting
        // order even though the postings live in different hash buckets.
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(5, Some(0), 1, TagSel::Any));
        eng.post_recv(posting(3, Some(0), 1, TagSel::Tag(7)));
        eng.post_recv(posting(9, None, 2, TagSel::Any));
        eng.post_recv(posting(1, Some(4), 1, TagSel::Tag(7)));
        let order: Vec<u64> = eng.posted_requests().map(|p| p.req.0).collect();
        assert_eq!(order, vec![5, 3, 9, 1]);
    }

    #[test]
    fn redirecting_in_posted_requests_order_matches_earliest_posting_first() {
        // The failover scenario: two receives posted for a (now dead)
        // source — the earlier one a wildcard-tag receive, the later one
        // tag-specific — and the substitute's tag-7 message already queued
        // unexpected. Redirecting in posted_requests() order must hand the
        // message to the *earlier* posting (MPI posting-order rule).
        let mut eng = MatchingEngine::new();
        eng.post_recv(posting(1, Some(0), 1, TagSel::Any));
        eng.post_recv(posting(2, Some(0), 1, TagSel::Tag(7)));
        eng.incoming(msg(9, 1, 7, 0));
        let pending: Vec<PmlReqId> = eng
            .posted_requests()
            .filter(|p| p.src == Some(EndpointId(0)))
            .map(|p| p.req)
            .collect();
        let mut delivered_to = None;
        for req in pending {
            if eng.redirect(req, Some(EndpointId(9))).is_some() {
                delivered_to = Some(req);
                break;
            }
        }
        assert_eq!(
            delivered_to,
            Some(PmlReqId(1)),
            "queued message must match the earliest posting"
        );
    }

    #[test]
    fn peak_unexpected_tracks_high_water_mark() {
        let mut eng = MatchingEngine::new();
        for i in 0..5 {
            eng.incoming(msg(0, 1, 5, i));
        }
        for _ in 0..5 {
            eng.post_recv(posting(1, Some(0), 1, TagSel::Tag(5)));
        }
        assert_eq!(eng.unexpected_len(), 0);
        assert_eq!(eng.peak_unexpected(), 5);
    }
}
